"""repro — reproduction of "Optimizing Communication in Deep Reinforcement
Learning with XingTian" (Middleware '22).

Public entry points:

* :class:`repro.runtime.XingTianSession` / :func:`repro.runtime.run_config`
  — run a full DRL algorithm under XingTian from a configuration;
* :mod:`repro.core` — the framework itself (brokers, communicators,
  routers, explorer/learner processes);
* :mod:`repro.api` — the researcher-facing Environment / Model /
  Algorithm / Agent classes;
* :mod:`repro.algorithms` — the algorithm zoo (DQN, PPO, IMPALA, DDPG);
* :mod:`repro.baselines` — models of the comparison frameworks (RLLib-like
  pull, Launchpad/Reverb-like central buffer);
* :mod:`repro.bench` — the experiment harness regenerating the paper's
  tables and figures.
"""

__version__ = "1.0.0"

from .core.config import (
    MachineSpec,
    StopCondition,
    SupervisionSpec,
    XingTianConfig,
    single_machine_config,
)
from .core.errors import TrainingFailedError, WorkerCrashedError
from .core.supervision import ProcessState, RestartPolicy, Supervisor
from .runtime import RunResult, XingTianSession, run_config

__all__ = [
    "__version__",
    "MachineSpec",
    "StopCondition",
    "SupervisionSpec",
    "XingTianConfig",
    "single_machine_config",
    "TrainingFailedError",
    "WorkerCrashedError",
    "ProcessState",
    "RestartPolicy",
    "Supervisor",
    "RunResult",
    "XingTianSession",
    "run_config",
]
