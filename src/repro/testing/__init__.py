"""Test-support utilities: fault injection for the supervision layer."""

from .faults import (
    CrashingAgent,
    FaultSpec,
    FaultyFabric,
    FaultyLink,
    FaultySocketLink,
    Fuse,
    HangingAgent,
    SocketFaultSpec,
)

__all__ = [
    "CrashingAgent",
    "FaultSpec",
    "FaultyFabric",
    "FaultyLink",
    "FaultySocketLink",
    "Fuse",
    "HangingAgent",
    "SocketFaultSpec",
]
