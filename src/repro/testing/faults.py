"""Fault-injection harness for exercising the supervision layer.

Everything here is deterministic under a seed so fault-tolerance tests can
be replayed exactly:

* :class:`FaultyFabric` / :class:`FaultyLink` — wrap every link a fabric
  creates and drop / delay / duplicate / reorder items according to a
  :class:`FaultSpec` driven by a seeded ``random.Random``.
* :class:`FaultySocketLink` / :class:`SocketFaultSpec` — wrap a real
  :class:`~repro.transport.tcp.SocketLink` and exercise the *wire* failure
  modes the in-proc faults cannot: send delay, short (partial) writes, and
  a mid-message connection reset.
* :class:`CrashingAgent` / :class:`HangingAgent` — agent wrappers that blow
  up (or stall) inside ``run_fragment`` after a configured number of calls,
  simulating an explorer workhorse dying mid-run.
* :class:`Fuse` — a shared one-shot trigger, so a restarted worker built
  from the same factory does not crash again.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from ..transport.fabric import Fabric
from ..core.concurrency import make_lock
from ..transport.link import Link


class Fuse:
    """A thread-safe one-shot trigger.

    ``pop()`` returns True exactly once across all sharers.  Inject one into
    a :class:`CrashingAgent` so the *first* worker to reach the trigger
    crashes and every later (restarted) worker runs clean.
    """

    def __init__(self, armed: bool = True):
        self._armed = armed
        self._lock = make_lock("testing.fuse")
        self.blown = False

    def pop(self) -> bool:
        with self._lock:
            if not self._armed:
                return False
            self._armed = False
            self.blown = True
            return True


@dataclass
class FaultSpec:
    """Per-link fault probabilities and magnitudes.

    Probabilities are evaluated per item, in order drop → duplicate →
    reorder → delay; an item can be both duplicated and delayed.  ``reorder``
    holds an item back until the next send, emitting the pair swapped.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    delay: float = 0.0  #: probability of delaying an item
    delay_s: float = 0.01  #: sleep applied when a delay fires

    def validate(self) -> None:
        for name in ("drop", "duplicate", "reorder", "delay"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")
        if self.delay_s < 0:
            raise ValueError("delay_s must be non-negative")


class FaultyLink(Link):
    """Wraps a real link, injecting faults on the send path.

    The wrapped link still does the actual delivery (including any NIC
    throttling), so faults compose with bandwidth modelling.  Counters
    record every injected fault for assertions.
    """

    def __init__(self, inner: Link, spec: FaultSpec, rng: random.Random):
        spec.validate()
        self.inner = inner
        self.spec = spec
        self._rng = rng
        self._lock = make_lock("testing.faulty_link")
        self._held: Optional[Tuple[Any, int]] = None
        self.sent = 0
        self.dropped = 0
        self.duplicated = 0
        self.reordered = 0
        self.delayed = 0

    def send(self, item: Any, nbytes: int = 0) -> None:
        with self._lock:
            self.sent += 1
            if self._rng.random() < self.spec.drop:
                self.dropped += 1
                return
            emit: List[Tuple[Any, int]] = [(item, nbytes)]
            if self._rng.random() < self.spec.duplicate:
                self.duplicated += 1
                emit.append((item, nbytes))
            if self._rng.random() < self.spec.reorder:
                if self._held is None:
                    # Hold this item back; it leaves before the next one.
                    self._held = emit.pop(0)
                    self.reordered += 1
                else:
                    held, self._held = self._held, None
                    emit.append(held)
            delay = self._rng.random() < self.spec.delay
            if delay:
                self.delayed += 1
        if delay and self.spec.delay_s > 0:
            time.sleep(self.spec.delay_s)
        for entry in emit:
            self.inner.send(*entry)

    def flush(self) -> None:
        """Release an item held back by reordering (call before close)."""
        with self._lock:
            held, self._held = self._held, None
        if held is not None:
            self.inner.send(*held)

    def close(self) -> None:
        self.flush()
        self.inner.close()


class FaultyFabric(Fabric):
    """A :class:`Fabric` whose every link misbehaves per a :class:`FaultSpec`.

    Pass as ``data_fabric=``/``control_fabric=`` to
    :func:`repro.cluster.build_cluster` to subject all inter-broker (or
    inter-controller) traffic to the faults.  Deterministic under ``seed``.
    """

    def __init__(
        self,
        name: str = "faulty-fabric",
        *,
        spec: Optional[FaultSpec] = None,
        seed: Optional[int] = None,
    ):
        super().__init__(name)
        self.spec = spec if spec is not None else FaultSpec()
        self.spec.validate()
        self._rng = random.Random(seed)
        self.faulty_links: List[FaultyLink] = []

    def _decorate_link(self, link: Link, src: str, dst: str) -> Link:
        # Per-link RNG split from the fabric seed keeps each link's fault
        # sequence independent of link-creation order racing across threads.
        wrapped = FaultyLink(
            link, self.spec, random.Random(self._rng.getrandbits(64))
        )
        self.faulty_links.append(wrapped)
        return wrapped

    def fault_counts(self) -> dict:
        totals = {"sent": 0, "dropped": 0, "duplicated": 0, "reordered": 0, "delayed": 0}
        for link in self.faulty_links:
            totals["sent"] += link.sent
            totals["dropped"] += link.dropped
            totals["duplicated"] += link.duplicated
            totals["reordered"] += link.reordered
            totals["delayed"] += link.delayed
        return totals


@dataclass
class SocketFaultSpec:
    """Wire-level fault knobs for :class:`FaultySocketLink`.

    These are deterministic (no probabilities): wire tests assert exact
    protocol behaviour — a partial write *must* happen, a reset *must*
    land mid-message — so the faults fire on every send.
    """

    #: sleep before every send (slow peer / congested path)
    delay_s: float = 0.0
    #: cap bytes accepted per sendmsg syscall, forcing partial writes the
    #: link must recover from by advancing its gather list
    max_send_bytes: Optional[int] = None
    #: hard-close the underlying socket after this many sendmsg calls —
    #: with ``max_send_bytes`` small enough the reset lands *mid-message*
    reset_after_syscalls: Optional[int] = None

    def validate(self) -> None:
        if self.delay_s < 0:
            raise ValueError("delay_s must be non-negative")
        if self.max_send_bytes is not None and self.max_send_bytes < 1:
            raise ValueError("max_send_bytes must be >= 1")
        if self.reset_after_syscalls is not None and self.reset_after_syscalls < 1:
            raise ValueError("reset_after_syscalls must be >= 1")


class _ResettingSocket:
    """Socket proxy that kills the connection after N sendmsg calls.

    The real socket is shut down and closed *before* the fatal sendmsg, so
    the failing call raises ``OSError`` from inside the kernel write path —
    the same shape as a genuine peer reset — which the link must convert
    into a loud :class:`~repro.transport.tcp.WireConnectionError`.
    """

    def __init__(self, sock: Any, limit: int):
        self._sock = sock
        self._limit = limit
        self.calls = 0

    def sendmsg(self, buffers: Any) -> int:
        self.calls += 1
        if self.calls > self._limit:
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()
        return self._sock.sendmsg(buffers)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._sock, name)


class FaultySocketLink(Link):
    """Wraps a :class:`~repro.transport.tcp.SocketLink` with wire faults.

    Unlike :class:`FaultyLink` (which perturbs *delivery order*), this
    perturbs the *wire itself*: sends crawl, sendmsg accepts only a few
    bytes at a time, the connection dies mid-message.  The wrapped link's
    own counters (``partial_writes``, ``send_errors``) then record how it
    coped — that is what the protocol edge-case tests assert on.
    """

    def __init__(self, inner: Any, spec: SocketFaultSpec):
        spec.validate()
        self.inner = inner
        self.spec = spec
        self.sent = 0
        self.delayed = 0
        if spec.max_send_bytes is not None:
            inner._max_send_bytes = spec.max_send_bytes
        if spec.reset_after_syscalls is not None:
            inner._sock = _ResettingSocket(
                inner._sock, spec.reset_after_syscalls
            )

    def send(self, item: Any, nbytes: int = 0) -> None:
        if self.spec.delay_s > 0:
            self.delayed += 1
            time.sleep(self.spec.delay_s)
        self.sent += 1
        self.inner.send(item, nbytes)

    def stats(self) -> dict:
        return self.inner.stats()

    def close(self) -> None:
        self.inner.close()


class _AgentWrapper:
    """Delegates everything to the wrapped agent except injected behaviour."""

    def __init__(self, inner: Any):
        self.inner = inner

    def __getattr__(self, name: str) -> Any:
        return getattr(self.inner, name)

    def set_weights(self, weights: Any) -> None:
        self.inner.set_weights(weights)


class CrashingAgent(_AgentWrapper):
    """Raises from ``run_fragment`` on the Nth call (or when a fuse pops).

    With ``fuse`` shared between the harness and the agent factory, only the
    first worker to reach the trigger crashes — a restarted worker (rebuilt
    from the same factory) runs clean, which is what the recovery tests
    need to observe exactly one restart.
    """

    def __init__(
        self,
        inner: Any,
        *,
        crash_after: int = 1,
        fuse: Optional[Fuse] = None,
        exc_factory: Any = None,
    ):
        super().__init__(inner)
        self.crash_after = crash_after
        self.fuse = fuse
        self.calls = 0
        self._exc_factory = exc_factory or (
            lambda: RuntimeError("injected crash (CrashingAgent)")
        )

    def run_fragment(self, fragment_steps: int) -> Any:
        self.calls += 1
        if self.calls >= self.crash_after:
            if self.fuse is None or self.fuse.pop():
                raise self._exc_factory()
        return self.inner.run_fragment(fragment_steps)


class HangingAgent(_AgentWrapper):
    """Stalls inside ``run_fragment`` on the Nth call — a silent hang.

    Unlike a crash there is no exception to detect; only missed heartbeats
    reveal the failure, which is exactly the code path the heartbeat
    machinery exists for.  ``hang_s`` bounds the stall so tests terminate;
    ``release`` (an Event) ends it early.
    """

    def __init__(
        self,
        inner: Any,
        *,
        hang_after: int = 1,
        hang_s: float = 30.0,
        fuse: Optional[Fuse] = None,
        release: Optional[threading.Event] = None,
    ):
        super().__init__(inner)
        self.hang_after = hang_after
        self.hang_s = hang_s
        self.fuse = fuse
        self.release = release if release is not None else threading.Event()
        self.calls = 0
        self.hung = False

    def run_fragment(self, fragment_steps: int) -> Any:
        self.calls += 1
        if self.calls >= self.hang_after:
            if self.fuse is None or self.fuse.pop():
                self.hung = True
                self.release.wait(self.hang_s)
        return self.inner.run_fragment(fragment_steps)
