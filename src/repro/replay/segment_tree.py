"""Segment trees for prioritized experience replay (Schaul et al., 2016)."""

from __future__ import annotations

import operator
from typing import Callable


class SegmentTree:
    """A fixed-capacity segment tree over an associative operation.

    Capacity must be a power of two; leaves live at ``[capacity, 2*capacity)``.
    ``reduce(start, end)`` folds the operation over ``[start, end)`` in
    O(log n).
    """

    def __init__(self, capacity: int, operation: Callable, neutral):
        if capacity <= 0 or capacity & (capacity - 1) != 0:
            raise ValueError(f"capacity must be a positive power of two, got {capacity}")
        self.capacity = capacity
        self._operation = operation
        self._neutral = neutral
        self._values = [neutral] * (2 * capacity)

    def __setitem__(self, index: int, value) -> None:
        if not 0 <= index < self.capacity:
            raise IndexError(index)
        node = index + self.capacity
        self._values[node] = value
        node //= 2
        while node >= 1:
            self._values[node] = self._operation(
                self._values[2 * node], self._values[2 * node + 1]
            )
            node //= 2

    def __getitem__(self, index: int):
        if not 0 <= index < self.capacity:
            raise IndexError(index)
        return self._values[index + self.capacity]

    def reduce(self, start: int = 0, end: int | None = None):
        """Fold the operation over ``[start, end)``."""
        if end is None:
            end = self.capacity
        if end < 0:
            end += self.capacity
        if not 0 <= start <= end <= self.capacity:
            raise IndexError(f"bad range [{start}, {end})")
        result = self._neutral
        left = start + self.capacity
        right = end + self.capacity
        while left < right:
            if left & 1:
                result = self._operation(result, self._values[left])
                left += 1
            if right & 1:
                right -= 1
                result = self._operation(result, self._values[right])
            left //= 2
            right //= 2
        return result


class SumSegmentTree(SegmentTree):
    def __init__(self, capacity: int):
        super().__init__(capacity, operator.add, 0.0)

    def sum(self, start: int = 0, end: int | None = None) -> float:
        return self.reduce(start, end)

    def find_prefixsum_index(self, prefixsum: float) -> int:
        """Smallest i such that sum(values[0..i]) > prefixsum.

        Used for inverse-CDF sampling proportional to priorities.
        """
        if not 0 <= prefixsum <= self.sum() + 1e-5:
            raise ValueError(f"prefixsum {prefixsum} out of range [0, {self.sum()}]")
        node = 1
        while node < self.capacity:
            left = 2 * node
            if self._values[left] > prefixsum:
                node = left
            else:
                prefixsum -= self._values[left]
                node = left + 1
        return node - self.capacity


class MinSegmentTree(SegmentTree):
    def __init__(self, capacity: int):
        super().__init__(capacity, min, float("inf"))

    def min(self, start: int = 0, end: int | None = None) -> float:
        return self.reduce(start, end)
