"""Uniform experience replay.

In XingTian the replay buffer lives *inside the trainer thread of the
learner process* (§3.2.1), so sampling never crosses a process boundary —
one of the paper's explicit design decisions (quantified in Fig. 9).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np


class ReplayBuffer:
    """A ring buffer of rollout-step dicts with uniform sampling."""

    def __init__(self, capacity: int, seed: Optional[int] = None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._storage: List[Dict[str, Any]] = []
        self._next_index = 0
        self._rng = np.random.default_rng(seed)
        self.total_added = 0

    def __len__(self) -> int:
        return len(self._storage)

    def add(self, step: Dict[str, Any]) -> None:
        """Insert one rollout step, evicting the oldest when full."""
        if self._next_index >= len(self._storage):
            self._storage.append(step)
        else:
            self._storage[self._next_index] = step
        self._next_index = (self._next_index + 1) % self.capacity
        self.total_added += 1

    def add_rollout(self, rollout: Dict[str, np.ndarray]) -> int:
        """Insert every step of a stacked-rollout dict; returns count added."""
        if not rollout:
            return 0
        length = len(next(iter(rollout.values())))
        for index in range(length):
            self.add({key: value[index] for key, value in rollout.items()})
        return length

    def sample(self, batch_size: int) -> Dict[str, np.ndarray]:
        """Uniformly sample a batch, stacked per field."""
        if not self._storage:
            raise ValueError("cannot sample from an empty replay buffer")
        indices = self._rng.integers(len(self._storage), size=batch_size)
        return self._gather(indices)

    def _gather(self, indices: np.ndarray) -> Dict[str, np.ndarray]:
        batch: Dict[str, np.ndarray] = {}
        first = self._storage[int(indices[0])]
        for key in first:
            batch[key] = np.asarray([self._storage[int(i)][key] for i in indices])
        return batch
