"""N-step transition accumulation.

Wraps insertion into any replay buffer: consecutive steps are folded into
n-step transitions (reward = discounted n-step sum, next_obs = observation
n steps ahead) before storage, the standard Rainbow-style extension to
one-step TD targets.  Episode boundaries flush the pending window.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict

import numpy as np

from .uniform import ReplayBuffer


class NStepAccumulator:
    """Folds single steps into n-step transitions and feeds a buffer."""

    def __init__(self, buffer: ReplayBuffer, n: int = 3, gamma: float = 0.99):
        if n < 1:
            raise ValueError("n must be >= 1")
        self.buffer = buffer
        self.n = n
        self.gamma = gamma
        self._window: Deque[Dict[str, Any]] = deque()

    def add(self, step: Dict[str, Any]) -> int:
        """Insert one raw step; returns how many n-step transitions were
        emitted into the underlying buffer."""
        self._window.append(step)
        emitted = 0
        if bool(step["done"]):
            # Flush everything: every pending step gets a (shorter) return.
            while self._window:
                self.buffer.add(self._fold())
                emitted += 1
        elif len(self._window) >= self.n:
            self.buffer.add(self._fold())
            emitted += 1
        return emitted

    def add_rollout(self, rollout: Dict[str, np.ndarray]) -> int:
        if not rollout:
            return 0
        length = len(next(iter(rollout.values())))
        emitted = 0
        for index in range(length):
            emitted += self.add({key: value[index] for key, value in rollout.items()})
        return emitted

    def _fold(self) -> Dict[str, Any]:
        """Combine the window's head with its n-step lookahead."""
        first = self._window.popleft()
        reward = float(first["reward"])
        discount = self.gamma
        next_obs = first["next_obs"]
        done = bool(first["done"])
        for step in self._window:
            if done:
                break
            reward += discount * float(step["reward"])
            discount *= self.gamma
            next_obs = step["next_obs"]
            done = bool(step["done"])
        folded = dict(first)
        folded["reward"] = reward
        folded["next_obs"] = next_obs
        folded["done"] = done
        folded["n_discount"] = discount
        return folded

    def pending(self) -> int:
        return len(self._window)
