"""Replay buffers (paper §4.2: "XingTian provides implementations of several
kinds of replay buffers")."""

from .uniform import ReplayBuffer
from .prioritized import PrioritizedReplayBuffer
from .segment_tree import MinSegmentTree, SumSegmentTree
from .nstep import NStepAccumulator

__all__ = [
    "ReplayBuffer",
    "PrioritizedReplayBuffer",
    "SumSegmentTree",
    "MinSegmentTree",
    "NStepAccumulator",
]
