"""Prioritized experience replay (Schaul et al., 2016)."""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from .segment_tree import MinSegmentTree, SumSegmentTree
from .uniform import ReplayBuffer


class PrioritizedReplayBuffer(ReplayBuffer):
    """Replay with proportional prioritization and IS-weight correction."""

    def __init__(
        self,
        capacity: int,
        alpha: float = 0.6,
        seed: Optional[int] = None,
    ):
        super().__init__(capacity, seed=seed)
        if alpha < 0:
            raise ValueError("alpha must be >= 0")
        self.alpha = alpha
        tree_capacity = 1
        while tree_capacity < capacity:
            tree_capacity *= 2
        self._sum_tree = SumSegmentTree(tree_capacity)
        self._min_tree = MinSegmentTree(tree_capacity)
        self._max_priority = 1.0

    def add(self, step: Dict[str, Any]) -> None:
        index = self._next_index
        super().add(step)
        priority = self._max_priority**self.alpha
        self._sum_tree[index] = priority
        self._min_tree[index] = priority

    def sample(
        self, batch_size: int, beta: float = 0.4
    ) -> Tuple[Dict[str, np.ndarray], np.ndarray, np.ndarray]:
        """Sample ∝ priority^alpha; returns (batch, is_weights, indices)."""
        if beta < 0:
            raise ValueError("beta must be >= 0")
        if not len(self):
            raise ValueError("cannot sample from an empty replay buffer")
        indices = self._sample_proportional(batch_size)
        total = self._sum_tree.sum(0, len(self))
        min_prob = self._min_tree.min(0, len(self)) / total
        max_weight = (min_prob * len(self)) ** (-beta)
        probs = np.array([self._sum_tree[i] for i in indices]) / total
        weights = (probs * len(self)) ** (-beta) / max_weight
        return self._gather(np.asarray(indices)), weights, np.asarray(indices)

    def update_priorities(
        self, indices: Sequence[int], priorities: Sequence[float]
    ) -> None:
        """Set new priorities (e.g. new TD errors) for sampled steps."""
        for index, priority in zip(indices, priorities):
            if priority <= 0:
                raise ValueError(f"priority must be positive, got {priority}")
            if not 0 <= index < len(self):
                raise IndexError(index)
            self._sum_tree[index] = priority**self.alpha
            self._min_tree[index] = priority**self.alpha
            self._max_priority = max(self._max_priority, priority)

    def _sample_proportional(self, batch_size: int) -> list:
        total = self._sum_tree.sum(0, len(self))
        bounds = np.linspace(0.0, total, batch_size + 1)
        indices = []
        for low, high in zip(bounds[:-1], bounds[1:]):
            mass = self._rng.uniform(low, min(high, total * (1 - 1e-9)))
            indices.append(self._sum_tree.find_prefixsum_index(mass))
        return indices
