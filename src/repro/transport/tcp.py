"""Real TCP transport: scatter-gather socket links between brokers.

Third deployment mode next to in-proc fabrics and ``repro.mp``: a
:class:`SocketLink` implements the :class:`~repro.transport.link.Link`
interface over a TCP connection, and a :class:`SocketListener` accepts
peer connections and feeds received messages to the local broker.  A
:class:`SocketFabric` ties both into the existing
:class:`~repro.transport.fabric.Fabric` API, so
:meth:`~repro.core.broker.Broker._remote_send` traffic crosses real
sockets with no broker/router changes — including coalesced BATCH
envelopes (in-network batching: one wire message carries a whole run of
small messages) and adaptive wire compression, which both apply per-link
upstream of this module.

The send path is zero-copy: :func:`~repro.transport.wire.encode_message`
hands ``socket.sendmsg`` the wire header plus every frame segment —
pickle blobs and raw NumPy views — so an N-frame message normally costs
one syscall and never materializes a contiguous buffer (asserted via
:func:`~repro.core.serialization.serialization_copies_total`).  The
receive side reads into one pre-sized buffer per message and deserializes
the body with ``copy=False``; the delivery callback runs synchronously,
and the buffer stays alive for exactly as long as any zero-copy view of
it does.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.concurrency import make_lock, spawn_thread
from ..core.errors import TransportError
from ..core.message import SEQ, TRACE, WIRE_HOP, make_header, MsgType
from ..core.serialization import _count_copy
from .fabric import Fabric
from .link import Link
from .wire import (
    DEFAULT_MAX_MESSAGE_BYTES,
    PREAMBLE,
    WireProtocolError,
    decode_frame_table,
    decode_message,
    decode_preamble,
    encode_message,
)

#: Linux IOV_MAX is 1024; chunk sendmsg gather lists beyond it.
_IOV_MAX = 1024

#: key marking a handshake header (first message on every connection)
HELLO = "wire_hello"
#: key marking a raw (non-broker) item wrapped for the wire
RAW = "wire_raw"

#: how long a reader keeps draining an in-flight message after close()
_GRACE_S = 2.0
_POLL_S = 0.25


class WireConnectionError(TransportError):
    """The TCP connection under a wire link failed (reset, refused, EOF)."""


def parse_address(address: str) -> Tuple[str, int]:
    """``"host:port"`` → ``(host, port)`` (IPv4/hostname form)."""
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ValueError(f"address {address!r} is not host:port")
    return host, int(port)


def format_address(address: Tuple[str, int]) -> str:
    return f"{address[0]}:{address[1]}"


class SocketLink(Link):
    """One-directional broker link over a TCP connection.

    ``send`` accepts the fabric's ``(header, body)`` tuples (anything else
    is wrapped in a RAW header) and writes them with ``sendmsg`` straight
    from the frame segments.  Thread-safe: concurrent senders serialize on
    a per-link lock, matching the one-NIC-worker semantics of
    :class:`~repro.transport.link.ThrottledLink` without the simulation.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        *,
        src: str = "",
        dst: str = "",
        name: Optional[str] = None,
        connect_timeout: float = 5.0,
        nodelay: bool = True,
        max_message_bytes: int = DEFAULT_MAX_MESSAGE_BYTES,
        tracer: Any = None,
    ):
        self.address = address
        self.src = src
        self.dst = dst
        self.name = name or f"wire:{src}->{dst}@{format_address(address)}"
        self.max_message_bytes = max_message_bytes
        self.tracer = tracer
        self._closed = threading.Event()
        self._send_lock = make_lock(f"{self.name}.send")
        self._counters_lock = make_lock(f"{self.name}.counters")
        # -- per-link wire counters (exported via stats()) ------------------
        self.bytes_sent = 0
        self.items_sent = 0
        self.syscalls_total = 0
        self.partial_writes = 0
        self.segments_total = 0
        self.send_errors = 0
        #: test/fault hook: cap bytes accepted per sendmsg (forces partial
        #: writes without shrinking SO_SNDBUF); None means unlimited
        self._max_send_bytes: Optional[int] = None
        self._sock = socket.create_connection(address, timeout=connect_timeout)
        self._sock.settimeout(None)
        if nodelay:
            # Broker messages are latency-sensitive and already batched
            # upstream (coalescing), so Nagle only adds delay.
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._handshake()

    # -- wire plumbing ------------------------------------------------------
    def _handshake(self) -> None:
        """First message on the connection names the sending/receiving node."""
        hello = make_header(self.src, [self.dst], MsgType.COMMAND)
        hello[HELLO] = 1
        buffers, _ = encode_message(hello, None)
        self._write_buffers(buffers)

    def send(self, item: Any, nbytes: int = 0) -> None:
        if self._closed.is_set():
            return
        if (
            isinstance(item, tuple)
            and len(item) == 2
            and isinstance(item[0], dict)
        ):
            header, body = item
        else:
            header = make_header(self.src, [self.dst], MsgType.DATA)
            header[RAW] = 1
            body = item
        # Stamp the hop so receiver-side trace events can attribute the
        # message to a real link stage (docs/NETWORKING.md).
        header = dict(header)
        header[WIRE_HOP] = self.name
        buffers, payload = encode_message(header, body)
        if payload > self.max_message_bytes:
            raise WireProtocolError(
                f"{self.name}: message of {payload} bytes exceeds the "
                f"{self.max_message_bytes}-byte link maximum"
            )
        tracer = self.tracer
        if tracer is not None:
            tracer.record(
                "stage_begin", self.name, stage="wire_send",
                seq=header.get(SEQ), trace=header.get(TRACE), nbytes=payload,
            )
        try:
            self._write_buffers(buffers)
        except OSError as exc:
            with self._counters_lock:
                self.send_errors += 1
            self._closed.set()
            raise WireConnectionError(
                f"{self.name}: connection lost mid-send: {exc}"
            ) from exc
        finally:
            if tracer is not None:
                tracer.record(
                    "stage_end", self.name, stage="wire_send",
                    seq=header.get(SEQ), trace=header.get(TRACE),
                )
        with self._counters_lock:
            self.items_sent += 1

    def _write_buffers(self, buffers: List[Any]) -> None:
        """Gather-write ``buffers`` fully, advancing across partial writes."""
        views = [memoryview(buf).cast("B") for buf in buffers]
        total = sum(view.nbytes for view in views)
        with self._send_lock:
            sent_so_far = 0
            first_call = True
            while views:
                batch = views[:_IOV_MAX]
                limit = self._max_send_bytes
                if limit is not None:
                    batch = self._cap_batch(batch, limit)
                if hasattr(self._sock, "sendmsg"):
                    sent = self._sock.sendmsg(batch)
                else:  # pragma: no cover - platforms without sendmsg
                    _count_copy()
                    blob = b"".join(bytes(view) for view in batch)
                    self._sock.sendall(blob)
                    sent = len(blob)
                sent_so_far += sent
                with self._counters_lock:
                    self.syscalls_total += 1
                    self.segments_total += len(batch)
                    self.bytes_sent += sent
                    if first_call and sent_so_far < total:
                        self.partial_writes += 1
                first_call = False
                views = self._advance(views, sent)

    @staticmethod
    def _cap_batch(views: List[memoryview], limit: int) -> List[memoryview]:
        """Trim a gather list to at most ``limit`` bytes (fault injection)."""
        capped: List[memoryview] = []
        remaining = max(1, limit)
        for view in views:
            if remaining <= 0:
                break
            take = min(view.nbytes, remaining)
            capped.append(view[:take])
            remaining -= take
        return capped

    @staticmethod
    def _advance(views: List[memoryview], sent: int) -> List[memoryview]:
        """Drop fully-written views; slice a partially-written head."""
        index = 0
        for view in views:
            if sent < view.nbytes:
                break
            sent -= view.nbytes
            index += 1
        remaining = views[index:]
        if remaining and sent:
            remaining[0] = remaining[0][sent:]
        return remaining

    # -- observability ------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Wire counters for the telemetry sampler's per-link gauges."""
        with self._counters_lock:
            items = self.items_sent
            return {
                "bytes_sent": float(self.bytes_sent),
                "items_sent": float(items),
                "syscalls_total": float(self.syscalls_total),
                "partial_writes": float(self.partial_writes),
                "send_errors": float(self.send_errors),
                "segments_per_message": (
                    self.segments_total / items if items else 0.0
                ),
                "syscalls_per_message": (
                    self.syscalls_total / items if items else 0.0
                ),
            }

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


class _Connection:
    """One accepted peer connection and its reader thread."""

    def __init__(self, listener: "SocketListener", sock: socket.socket, peer: Any):
        self.listener = listener
        self.sock = sock
        self.peer = peer
        self.node: Optional[str] = None  # learned from the handshake
        sock.settimeout(_POLL_S)
        self.thread = spawn_thread(
            f"{listener.name}-reader-{peer}", self._run
        )

    # -- framed reads -------------------------------------------------------
    def _read_exact(self, count: int, *, boundary: bool) -> Optional[memoryview]:
        """Read exactly ``count`` bytes into a fresh buffer.

        Returns None on a clean EOF at a message ``boundary``; raises
        :class:`WireProtocolError` on EOF mid-message (a short read) and
        :class:`_Stop` when the listener is closing and no message is in
        flight.  Mid-message, a closing listener keeps draining for a grace
        period so in-flight messages still deliver.
        """
        buf = bytearray(count)
        view = memoryview(buf)
        got = 0
        grace_deadline: Optional[float] = None
        while got < count:
            if self.listener.closing:
                if boundary and got == 0:
                    raise _Stop()
                if grace_deadline is None:
                    grace_deadline = time.monotonic() + _GRACE_S
                elif time.monotonic() >= grace_deadline:
                    raise WireProtocolError(
                        f"{self.listener.name}: shutdown while a message "
                        f"was in flight ({got}/{count} bytes read)"
                    )
            try:
                read = self.sock.recv_into(view[got:], count - got)
            except socket.timeout:
                continue
            except OSError as exc:
                if self.listener.closing and boundary and got == 0:
                    raise _Stop() from None
                raise WireProtocolError(
                    f"{self.listener.name}: connection error mid-read: {exc}"
                ) from exc
            if read == 0:
                if boundary and got == 0:
                    return None  # clean EOF between messages
                raise WireProtocolError(
                    f"{self.listener.name}: short read — peer closed after "
                    f"{got}/{count} bytes"
                )
            got += read
        return view

    def _run(self) -> None:
        try:
            while True:
                preamble = self._read_exact(PREAMBLE.size, boundary=True)
                if preamble is None:
                    return
                frame_count, msg_length = decode_preamble(
                    bytes(preamble),
                    max_message_bytes=self.listener.max_message_bytes,
                )
                table = self._read_exact(4 * frame_count + 4, boundary=False)
                assert table is not None
                lengths = decode_frame_table(bytes(preamble), bytes(table))
                payload = self._read_exact(msg_length, boundary=False)
                assert payload is not None
                header, body = decode_message(
                    payload, lengths, zero_copy=self.listener.zero_copy
                )
                self.listener._on_message(self, header, body, msg_length)
        except _Stop:
            pass
        except WireProtocolError as exc:
            self.listener._on_protocol_error(self, exc)
        except Exception as exc:  # noqa: BLE001 - reader must die loudly, not hang
            self.listener._on_protocol_error(
                self, WireProtocolError(f"{self.listener.name}: {exc}")
            )
        finally:
            self.close()

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class _Stop(Exception):
    """Internal: clean reader exit during listener shutdown."""


class SocketListener:
    """Accepts wire connections for one node and delivers their messages.

    ``deliver(src_node, item)`` runs synchronously on the connection's
    reader thread; ``item`` is the ``(header, body)`` tuple the sending
    fabric shipped (RAW-wrapped items are unwrapped back to the bare
    object).  Zero-copy bodies are views into a per-message buffer that the
    reader drops right after ``deliver`` returns — anything that outlives
    the callback does so because it still references the views (the buffer
    stays alive with them).
    """

    def __init__(
        self,
        deliver: Callable[[str, Any], None],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        name: str = "wire-listener",
        backlog: int = 16,
        zero_copy: bool = True,
        max_message_bytes: int = DEFAULT_MAX_MESSAGE_BYTES,
        tracer: Any = None,
    ):
        self.name = name
        self.deliver = deliver
        self.zero_copy = zero_copy
        self.max_message_bytes = max_message_bytes
        self.tracer = tracer
        self._closing_event = threading.Event()
        self._lock = make_lock(f"{name}.listener")
        self._connections: List[_Connection] = []
        # -- receive counters (exported via stats()) ------------------------
        self.bytes_received = 0
        self.items_received = 0
        self.protocol_errors = 0
        self.connections_total = 0
        self.last_error: Optional[WireProtocolError] = None
        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._server.bind((host, port))
        self._server.listen(backlog)
        self._server.settimeout(_POLL_S)
        self.address: Tuple[str, int] = self._server.getsockname()[:2]
        self._accept_thread = spawn_thread(f"{name}-accept", self._accept_loop)

    @property
    def closing(self) -> bool:
        return self._closing_event.is_set()

    def _accept_loop(self) -> None:
        while not self.closing:
            try:
                sock, peer = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # server socket closed under us during shutdown
            connection = _Connection(self, sock, peer)
            with self._lock:
                self.connections_total += 1
                if self.closing:
                    connection.close()
                else:
                    self._connections.append(connection)

    # -- reader callbacks ---------------------------------------------------
    def _on_message(
        self,
        connection: _Connection,
        header: Dict[str, Any],
        body: Any,
        nbytes: int,
    ) -> None:
        if header.get(HELLO):
            connection.node = str(header.get("src") or "")
            return
        with self._lock:
            self.items_received += 1
            self.bytes_received += nbytes
        if self.tracer is not None:
            self.tracer.record(
                "stage_begin", self.name, stage="wire_deliver",
                seq=header.get(SEQ), trace=header.get(TRACE), nbytes=nbytes,
            )
        item = body if header.get(RAW) else (header, body)
        try:
            self.deliver(connection.node or "", item)
        except Exception:  # noqa: BLE001 - a dying consumer must not kill the reader
            pass
        finally:
            if self.tracer is not None:
                self.tracer.record(
                    "stage_end", self.name, stage="wire_deliver",
                    seq=header.get(SEQ), trace=header.get(TRACE),
                )

    def _on_protocol_error(
        self, connection: _Connection, exc: WireProtocolError
    ) -> None:
        """A poisoned stream: count it, remember it, drop the connection.

        The error is *loud* — :meth:`raise_errors` (called from fabric
        close and tests) re-raises the last one — but it must not take the
        whole listener down: other connections are still framed correctly.
        """
        with self._lock:
            self.protocol_errors += 1
            self.last_error = exc

    def raise_errors(self) -> None:
        """Re-raise the most recent protocol error, if any arrived."""
        with self._lock:
            if self.last_error is not None:
                raise self.last_error

    def stats(self) -> Dict[str, float]:
        with self._lock:
            return {
                "bytes_received": float(self.bytes_received),
                "items_received": float(self.items_received),
                "protocol_errors": float(self.protocol_errors),
                "connections_total": float(self.connections_total),
            }

    def close(self, timeout: float = 5.0) -> None:
        """Stop accepting, drain in-flight messages, join reader threads."""
        if self.closing:
            return
        self._closing_event.set()
        try:
            self._server.close()
        except OSError:
            pass
        self._accept_thread.join(timeout=timeout)
        with self._lock:
            connections = list(self._connections)
        deadline = time.monotonic() + timeout
        for connection in connections:
            connection.thread.join(
                timeout=max(0.1, deadline - time.monotonic())
            )
            connection.close()


class SocketFabric(Fabric):
    """A :class:`Fabric` whose inter-node links are real TCP connections.

    Nodes come in two flavours:

    * **local** nodes ``register`` a handler and ``listen`` on a TCP
      address; remote peers reach them through it.
    * **remote** nodes are declared with ``add_address(node, "host:port")``
      — ``connect``/``send`` to them builds a :class:`SocketLink` lazily.

    Same-process destinations (registered but never given an address) keep
    the base class's in-proc :class:`~repro.transport.link.DirectLink`, so
    one fabric can mix local and wire links — the deployment-mode matrix in
    docs/NETWORKING.md.
    """

    def __init__(
        self,
        name: str = "wire-fabric",
        *,
        nodelay: bool = True,
        zero_copy: bool = True,
        max_message_bytes: int = DEFAULT_MAX_MESSAGE_BYTES,
        connect_timeout: float = 5.0,
        tracer: Any = None,
    ):
        super().__init__(name)
        self.nodelay = nodelay
        self.zero_copy = zero_copy
        self.max_message_bytes = max_message_bytes
        self.connect_timeout = connect_timeout
        self.tracer = tracer
        self._addresses: Dict[str, Tuple[str, int]] = {}
        self._listeners: Dict[str, SocketListener] = {}

    # -- wiring -------------------------------------------------------------
    def listen(
        self, node: str, host: str = "127.0.0.1", port: int = 0
    ) -> Tuple[str, int]:
        """Open ``node``'s listener; returns the bound (host, port).

        Incoming messages are handed to the handler ``register``-ed for
        ``node`` (looked up per delivery, so registration order does not
        matter).  The bound address is also recorded, so in-process peers
        can ``connect`` to it by node name alone — the loopback two-node
        topology the wire-smoke CI job runs.
        """

        def deliver(src_node: str, item: Any) -> None:
            with self._lock:
                handler = self._handlers.get(node)
            if handler is not None:
                handler(item)

        listener = SocketListener(
            deliver,
            host=host,
            port=port,
            name=f"{self.name}:{node}",
            zero_copy=self.zero_copy,
            max_message_bytes=self.max_message_bytes,
            tracer=self.tracer,
        )
        with self._lock:
            self._listeners[node] = listener
            self._addresses[node] = listener.address
        return listener.address

    def add_address(self, node: str, address: Any) -> None:
        """Declare where a (possibly remote) ``node`` listens."""
        if isinstance(address, str):
            address = parse_address(address)
        with self._lock:
            self._addresses[node] = tuple(address)

    def addresses(self) -> Dict[str, Tuple[str, int]]:
        with self._lock:
            return dict(self._addresses)

    def listener(self, node: str) -> Optional[SocketListener]:
        with self._lock:
            return self._listeners.get(node)

    # -- Fabric overrides ---------------------------------------------------
    def connect(
        self,
        src: str,
        dst: str,
        *,
        bandwidth: Optional[float] = None,
        latency: float = 0.0,
    ) -> Link:
        """Create the src→dst link: TCP when ``dst`` has an address.

        ``bandwidth`` is accepted for interface parity but real sockets are
        not throttled — pass it only to in-proc fallback links.
        """
        with self._lock:
            address = self._addresses.get(dst)
        if address is None:
            return super().connect(src, dst, bandwidth=bandwidth, latency=latency)
        link: Link = SocketLink(
            address,
            src=src,
            dst=dst,
            nodelay=self.nodelay,
            connect_timeout=self.connect_timeout,
            max_message_bytes=self.max_message_bytes,
            tracer=self.tracer,
        )
        with self._lock:
            link = self._decorate_link(link, src, dst)
            self._links[(src, dst)] = link
        return link

    def send(self, src: str, dst: str, item: Any, nbytes: int = 0) -> None:
        with self._lock:
            known = (src, dst) in self._links
            has_address = dst in self._addresses
        if not known and has_address:
            self.connect(src, dst)
        super().send(src, dst, item, nbytes)

    def link_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-link wire counters, keyed ``"src->dst"`` (sampler feed)."""
        with self._lock:
            links = dict(self._links)
            listeners = dict(self._listeners)
        out: Dict[str, Dict[str, float]] = {}
        for (src, dst), link in links.items():
            stats = getattr(link, "stats", None)
            if callable(stats):
                out[f"{src}->{dst}"] = stats()
        for node, listener in listeners.items():
            out[f"listen:{node}"] = listener.stats()
        return out

    def set_tracer(self, tracer: Any) -> None:
        """Point the fabric and every existing link/listener at ``tracer``.

        Telemetry attaches after the cluster (and its links) are built, so
        a plain attribute write would only reach lazily-created links.
        """
        with self._lock:
            self.tracer = tracer
            links = list(self._links.values())
            listeners = list(self._listeners.values())
        for link in links:
            if hasattr(link, "tracer"):
                link.tracer = tracer
        for listener in listeners:
            listener.tracer = tracer

    def raise_errors(self) -> None:
        """Surface the first wire-protocol error any listener recorded."""
        with self._lock:
            listeners = list(self._listeners.values())
        for listener in listeners:
            listener.raise_errors()

    def close(self) -> None:
        super().close()
        with self._lock:
            listeners = list(self._listeners.values())
            self._listeners.clear()
        for listener in listeners:
            listener.close()


__all__ = [
    "SocketFabric",
    "SocketLink",
    "SocketListener",
    "WireConnectionError",
    "format_address",
    "parse_address",
]
