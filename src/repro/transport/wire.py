"""The XingTian wire protocol: framing for real socket transports.

One message on the wire is a fixed little-endian header followed by the raw
frame payloads, in order::

    offset  size  field
    0       4     magic      0x31575458  ("XTW1" as LE bytes)
    4       1     version    1
    5       1     flags      reserved, must be 0
    6       2     frame_count (u16)
    8       8     msg_length  (u64, sum of the frame lengths)
    16      4*n   frame lengths, one u32 per frame
    16+4n   4     crc32 of bytes [0, 16+4n)
    ...           frame 0 bytes, frame 1 bytes, ...

The header is self-delimiting (read 16 bytes, then ``4*frame_count + 4``
more, then ``msg_length``) and integrity-checked: a corrupted or misaligned
stream fails loudly with :class:`WireProtocolError` instead of delivering
garbage or hanging on a bogus length.

Frames are the PR 5 scatter-gather :class:`~repro.core.serialization.Frame`
payloads: a broker-to-broker message is two frames — the pickled header
dict, then the body.  :func:`encode_message` returns the buffer list
*unconcatenated* so :meth:`socket.socket.sendmsg` can gather them straight
from their owners (pickle blobs, NumPy array memory, arena views) — an
N-frame message costs one syscall and zero intermediate copies on the send
side.  :func:`decode_message` is the inverse, deserializing the body with
``copy=False`` so receive-side arrays are read-only views into the receive
buffer.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.errors import TransportError
from ..core.serialization import Frame, deserialize, make_frame

MAGIC = 0x31575458  # b"XTW1" read as a little-endian u32
VERSION = 1

#: fixed leading part of the wire header: magic, version, flags,
#: frame_count, msg_length
PREAMBLE = struct.Struct("<IBBHQ")
_LENGTH = struct.Struct("<I")
_CRC = struct.Struct("<I")

#: sanity bound on frames per message (a broker message is 2; coalesced
#: BATCH envelopes still travel as one body frame)
MAX_FRAMES = 256
#: reject messages larger than this instead of trying to allocate a buffer
#: for a corrupted length field (tunable per listener/link)
DEFAULT_MAX_MESSAGE_BYTES = 1 << 30
#: single-frame length must fit the u32 length slot
MAX_FRAME_BYTES = (1 << 32) - 1


class WireProtocolError(TransportError):
    """A malformed, corrupted, or oversized wire message.

    Raised on bad magic/version, a crc32 mismatch, a short read (peer died
    mid-message), or a length field exceeding the configured maximum.  The
    connection that produced it is poisoned and must be closed — framing
    cannot be recovered mid-stream.
    """


def encode_wire_header(frame_lengths: Sequence[int]) -> bytes:
    """The fixed header for a message with the given frame lengths."""
    if not frame_lengths:
        raise WireProtocolError("a wire message needs at least one frame")
    if len(frame_lengths) > MAX_FRAMES:
        raise WireProtocolError(
            f"too many frames: {len(frame_lengths)} > {MAX_FRAMES}"
        )
    for length in frame_lengths:
        if not 0 <= length <= MAX_FRAME_BYTES:
            raise WireProtocolError(f"frame length {length} out of range")
    total = sum(frame_lengths)
    head = PREAMBLE.pack(MAGIC, VERSION, 0, len(frame_lengths), total)
    table = b"".join(_LENGTH.pack(length) for length in frame_lengths)
    crc = zlib.crc32(table, zlib.crc32(head))
    return head + table + _CRC.pack(crc)


def wire_header_size(frame_count: int) -> int:
    """Total header bytes for a message with ``frame_count`` frames."""
    return PREAMBLE.size + 4 * frame_count + _CRC.size


def decode_preamble(
    data: bytes, *, max_message_bytes: int = DEFAULT_MAX_MESSAGE_BYTES
) -> Tuple[int, int]:
    """Validate the 16-byte preamble; returns (frame_count, msg_length)."""
    if len(data) < PREAMBLE.size:
        raise WireProtocolError(
            f"short preamble: {len(data)} < {PREAMBLE.size} bytes"
        )
    magic, version, flags, frame_count, msg_length = PREAMBLE.unpack_from(data)
    if magic != MAGIC:
        raise WireProtocolError(f"bad magic 0x{magic:08x} (not a wire stream)")
    if version != VERSION:
        raise WireProtocolError(f"unsupported wire version {version}")
    if flags != 0:
        raise WireProtocolError(f"reserved flags set: 0x{flags:02x}")
    if not 1 <= frame_count <= MAX_FRAMES:
        raise WireProtocolError(f"frame count {frame_count} out of range")
    if msg_length > max_message_bytes:
        raise WireProtocolError(
            f"oversized message: {msg_length} > {max_message_bytes} bytes"
        )
    return frame_count, msg_length


def decode_frame_table(preamble: bytes, table: bytes) -> List[int]:
    """Validate the length table + crc32; returns the per-frame lengths.

    ``preamble`` is the 16 bytes already consumed by
    :func:`decode_preamble`; ``table`` is the ``4*frame_count + 4`` bytes
    that follow.  The declared ``msg_length`` must equal the sum of the
    frame lengths — a mismatch means the stream is corrupt.
    """
    frame_count, msg_length = decode_preamble(
        preamble, max_message_bytes=(1 << 64) - 1
    )
    expected = 4 * frame_count + _CRC.size
    if len(table) < expected:
        raise WireProtocolError(
            f"short frame table: {len(table)} < {expected} bytes"
        )
    lengths = [
        _LENGTH.unpack_from(table, 4 * index)[0] for index in range(frame_count)
    ]
    (declared_crc,) = _CRC.unpack_from(table, 4 * frame_count)
    actual_crc = zlib.crc32(table[: 4 * frame_count], zlib.crc32(preamble[:PREAMBLE.size]))
    if declared_crc != actual_crc:
        raise WireProtocolError(
            f"header crc mismatch: declared 0x{declared_crc:08x}, "
            f"computed 0x{actual_crc:08x}"
        )
    if sum(lengths) != msg_length:
        raise WireProtocolError(
            f"frame lengths sum to {sum(lengths)} but header declares "
            f"{msg_length}"
        )
    return lengths


def encode_message(
    header: Dict[str, Any],
    body: Any,
    *,
    body_frame: Optional[Frame] = None,
) -> Tuple[List[Any], int]:
    """Scatter-gather buffers for one (header, body) broker message.

    Returns ``(buffers, payload_nbytes)`` where ``buffers`` is the wire
    header followed by every frame segment, ready for
    ``socket.sendmsg(buffers)``; nothing has been concatenated or copied —
    NumPy bodies contribute raw views of their own memory.  Pass
    ``body_frame`` (e.g. a cached :attr:`~repro.core.message.Message.frame`)
    to skip re-framing a body that was already framed for sizing.
    """
    header_frame = make_frame(header)
    if body is None:
        frames = [header_frame]
    else:
        if body_frame is None:
            body_frame = make_frame(body)
        frames = [header_frame, body_frame]
    lengths = [frame.nbytes for frame in frames]
    buffers: List[Any] = [encode_wire_header(lengths)]
    for frame in frames:
        buffers.extend(frame.segments)
    return buffers, sum(lengths)


def decode_message(
    payload: Any,
    frame_lengths: Sequence[int],
    *,
    zero_copy: bool = True,
    view_registry: Any = None,
) -> Tuple[Dict[str, Any], Any]:
    """Inverse of :func:`encode_message` over a received payload buffer.

    ``payload`` holds the concatenated frames (``msg_length`` bytes); the
    header frame is always copied out (it is small and long-lived), the
    body is deserialized with ``copy=False`` when ``zero_copy`` — arrays
    come back as read-only views into ``payload``, so the caller must keep
    ``payload`` alive for as long as the body is referenced.
    """
    view = memoryview(payload)
    if view.format != "B" or view.ndim != 1:
        view = view.cast("B")
    if view.nbytes < sum(frame_lengths):
        raise WireProtocolError(
            f"short payload: {view.nbytes} < {sum(frame_lengths)} bytes"
        )
    if not 1 <= len(frame_lengths) <= 2:
        raise WireProtocolError(
            f"broker messages carry 1 or 2 frames, got {len(frame_lengths)}"
        )
    try:
        header = deserialize(view[: frame_lengths[0]], copy=True)
    except WireProtocolError:
        raise
    except Exception as exc:
        raise WireProtocolError(f"undecodable header frame: {exc}") from exc
    if not isinstance(header, dict):
        raise WireProtocolError(
            f"header frame decoded to {type(header).__name__}, expected dict"
        )
    body = None
    if len(frame_lengths) == 2:
        start = frame_lengths[0]
        try:
            body = deserialize(
                view[start : start + frame_lengths[1]],
                copy=not zero_copy,
                view_registry=view_registry if zero_copy else None,
            )
        except Exception as exc:
            raise WireProtocolError(f"undecodable body frame: {exc}") from exc
    return header, body
