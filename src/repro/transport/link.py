"""Point-to-point links between machines.

The paper's multi-machine experiments are bounded by a 1 GbE NIC measured at
118.04 MB/s (Fig. 5).  We model a NIC as a serial resource: one worker drains
an inbox, charging ``nbytes / bandwidth`` of real time per item plus a fixed
one-way latency, then delivers to the peer's inbox.  Intra-machine transfers
use :class:`DirectLink` (no throttling), so the "intra-machine transfer is
shadowed by inter-machine transfer" effect emerges naturally.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable, Optional, Tuple

from ..core.concurrency import make_lock, spawn_thread


class Link:
    """One-directional link interface carrying (item, nbytes) pairs."""

    def send(self, item: Any, nbytes: int = 0) -> None:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class DirectLink(Link):
    """Unthrottled link: delivers synchronously to a callback."""

    def __init__(self, deliver: Callable[[Any], None]):
        self._deliver = deliver
        self._closed = False
        # send() may be entered concurrently (router thread + transit
        # deliveries), so the counters take a lock; delivery happens outside
        # it — holding a lock across the synchronous callback would stall
        # every concurrent sender behind one slow consumer.
        self._counters_lock = make_lock("link.direct.counters")
        self.bytes_sent = 0
        self.items_sent = 0

    def send(self, item: Any, nbytes: int = 0) -> None:
        if self._closed:
            return
        with self._counters_lock:
            self.bytes_sent += nbytes
            self.items_sent += 1
        self._deliver(item)

    def close(self) -> None:
        self._closed = True


class ThrottledLink(Link):
    """Bandwidth- and latency-modelled link (a simulated NIC).

    ``bandwidth`` is in bytes/second; ``latency`` is the one-way propagation
    delay in seconds.  Sends enqueue immediately (the sender does not block),
    a single worker thread serializes wire occupancy — concurrent senders
    share the NIC and queue behind each other, exactly the bottleneck the
    two-machine experiments exercise.
    """

    def __init__(
        self,
        deliver: Callable[[Any], None],
        *,
        bandwidth: float = 118.04e6,
        latency: float = 0.0002,
        name: str = "link",
    ):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.name = name
        self.bandwidth = bandwidth
        self.latency = latency
        self._deliver = deliver
        self._inbox: "queue.Queue[Optional[Tuple[Any, int]]]" = queue.Queue()
        self._closed = threading.Event()
        self._counters_lock = make_lock(f"link.{name}.counters")
        self.bytes_sent = 0
        self.items_sent = 0
        self._worker = spawn_thread(f"{name}-nic", self._run)

    def send(self, item: Any, nbytes: int = 0) -> None:
        if self._closed.is_set():
            return
        self._inbox.put((item, max(0, int(nbytes))))

    def _run(self) -> None:
        while True:
            entry = self._inbox.get()
            if entry is None:
                return
            item, nbytes = entry
            # Wire occupancy: the NIC is busy for nbytes/bandwidth seconds.
            busy = nbytes / self.bandwidth
            if busy > 0:
                time.sleep(busy)
            if self.latency > 0:
                time.sleep(self.latency)
            with self._counters_lock:
                self.bytes_sent += nbytes
                self.items_sent += 1
            if not self._closed.is_set():
                try:
                    self._deliver(item)
                except Exception:
                    # A dying peer must not kill the NIC worker.
                    pass

    def pending(self) -> int:
        return self._inbox.qsize()

    def close(self) -> None:
        if not self._closed.is_set():
            self._closed.set()
            self._inbox.put(None)

    def join(self, timeout: Optional[float] = None) -> None:
        self._worker.join(timeout=timeout)
