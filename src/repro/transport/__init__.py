"""Transport substrate: links (direct, throttled, TCP), broker fabrics.

Three deployment modes share the :class:`Link`/:class:`Fabric` interface:
in-proc (:class:`DirectLink`), simulated NICs (:class:`ThrottledLink`),
and the real TCP wire (:class:`~repro.transport.tcp.SocketLink` behind a
:class:`~repro.transport.tcp.SocketFabric`; see docs/NETWORKING.md).
"""

from .link import DirectLink, Link, ThrottledLink
from .fabric import Fabric
from .tcp import SocketFabric, SocketLink, SocketListener, WireConnectionError
from .wire import WireProtocolError

__all__ = [
    "Link",
    "DirectLink",
    "ThrottledLink",
    "Fabric",
    "SocketFabric",
    "SocketLink",
    "SocketListener",
    "WireConnectionError",
    "WireProtocolError",
]
