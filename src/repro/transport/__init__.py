"""Transport substrate: thread channels, throttled links, broker fabrics."""

from .link import DirectLink, Link, ThrottledLink
from .fabric import Fabric

__all__ = ["Link", "DirectLink", "ThrottledLink", "Fabric"]
