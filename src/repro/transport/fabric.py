"""Fabrics connecting brokers (data) and controllers (commands) (§3.2.2).

A :class:`Fabric` is a set of named nodes with point-to-point links between
them.  XingTian creates two fabrics: a fully-connected control fabric among
controllers, and a data fabric among brokers where the learner's machine is
the center for data transmission.  Links may be throttled to model NICs.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from ..core.concurrency import make_lock
from .link import DirectLink, Link, ThrottledLink


class Fabric:
    """Named nodes + directed links with per-pair bandwidth/latency.

    Nodes register a delivery callback; ``connect`` wires a directed link.
    ``send(src, dst, item, nbytes)`` pushes through the (src, dst) link,
    creating a :class:`DirectLink` lazily if none was configured — so
    single-machine deployments need no explicit wiring.
    """

    def __init__(self, name: str = "fabric"):
        self.name = name
        self._handlers: Dict[str, Callable[[Any], None]] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        self._lock = make_lock(f"fabric.{name}")

    def register(self, node: str, handler: Callable[[Any], None]) -> None:
        with self._lock:
            self._handlers[node] = handler

    def unregister(self, node: str) -> None:
        with self._lock:
            self._handlers.pop(node, None)

    def connect(
        self,
        src: str,
        dst: str,
        *,
        bandwidth: Optional[float] = None,
        latency: float = 0.0,
    ) -> Link:
        """Create the src→dst link.

        With ``bandwidth=None`` the link is direct (same-machine); otherwise
        a :class:`ThrottledLink` models a NIC at that bandwidth (bytes/s).
        """
        with self._lock:
            handler = self._handlers.get(dst)
            if handler is None:
                raise KeyError(f"fabric {self.name!r}: unknown node {dst!r}")
            if bandwidth is None:
                link: Link = DirectLink(handler)
            else:
                link = ThrottledLink(
                    handler,
                    bandwidth=bandwidth,
                    latency=latency,
                    name=f"{self.name}:{src}->{dst}",
                )
            link = self._decorate_link(link, src, dst)
            self._links[(src, dst)] = link
            return link

    def connect_bidirectional(
        self,
        a: str,
        b: str,
        *,
        bandwidth: Optional[float] = None,
        latency: float = 0.0,
    ) -> None:
        self.connect(a, b, bandwidth=bandwidth, latency=latency)
        self.connect(b, a, bandwidth=bandwidth, latency=latency)

    def send(self, src: str, dst: str, item: Any, nbytes: int = 0) -> None:
        with self._lock:
            link = self._links.get((src, dst))
            if link is None:
                handler = self._handlers.get(dst)
                if handler is None:
                    raise KeyError(f"fabric {self.name!r}: unknown node {dst!r}")
                link = self._decorate_link(DirectLink(handler), src, dst)
                self._links[(src, dst)] = link
        link.send(item, nbytes)

    def _decorate_link(self, link: Link, src: str, dst: str) -> Link:
        """Hook for subclasses to wrap every link as it is created (used by
        :class:`repro.testing.faults.FaultyFabric` to inject drop/delay)."""
        return link

    def nodes(self) -> Dict[str, Callable[[Any], None]]:
        with self._lock:
            return dict(self._handlers)

    def link(self, src: str, dst: str) -> Optional[Link]:
        with self._lock:
            return self._links.get((src, dst))

    def close(self) -> None:
        with self._lock:
            links = list(self._links.values())
            self._links.clear()
            self._handlers.clear()
        for link in links:
            link.close()
