"""Layers with explicit forward/backward passes."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from . import initializers


class Layer:
    """A differentiable module.

    ``forward`` caches whatever ``backward`` needs; ``backward`` receives
    dL/d(output) and returns dL/d(input), accumulating parameter gradients
    into :attr:`grads` (aligned with :attr:`params`).
    """

    def __init__(self):
        self.params: List[np.ndarray] = []
        self.grads: List[np.ndarray] = []

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def zero_grads(self) -> None:
        for grad in self.grads:
            grad.fill(0.0)


class Dense(Layer):
    """Fully connected layer: y = x @ W + b."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        weight_init: str = "he_normal",
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        init = initializers.get(weight_init)
        self.weight = init((in_features, out_features), rng).astype(np.float64)
        self.bias = np.zeros(out_features, dtype=np.float64)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self.params = [self.weight, self.bias]
        self.grads = [self.grad_weight, self.grad_bias]
        self._input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input = x
        return x @ self.weight + self.bias

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._input is not None, "forward must run before backward"
        self.grad_weight += self._input.T @ grad_output
        self.grad_bias += grad_output.sum(axis=0)
        return grad_output @ self.weight.T


class ReLU(Layer):
    def __init__(self):
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._mask is not None
        return grad_output * self._mask


class Tanh(Layer):
    def __init__(self):
        super().__init__()
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = np.tanh(x)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._output is not None
        return grad_output * (1.0 - self._output**2)


class Flatten(Layer):
    """Flatten all non-batch dimensions."""

    def __init__(self):
        super().__init__()
        self._shape: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._shape is not None
        return grad_output.reshape(self._shape)
