"""Loss functions and probability utilities.

Every loss returns ``(value, grad_wrt_input)`` so training code can feed the
gradient straight into ``Sequential.backward``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def mse(pred: np.ndarray, target: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean squared error over all elements."""
    diff = pred - target
    value = float(np.mean(diff**2))
    grad = 2.0 * diff / diff.size
    return value, grad


def huber(
    pred: np.ndarray, target: np.ndarray, delta: float = 1.0
) -> Tuple[float, np.ndarray]:
    """Huber loss — quadratic within ``delta``, linear outside (DQN's loss)."""
    diff = pred - target
    abs_diff = np.abs(diff)
    quadratic = np.minimum(abs_diff, delta)
    linear = abs_diff - quadratic
    value = float(np.mean(0.5 * quadratic**2 + delta * linear))
    grad = np.clip(diff, -delta, delta) / diff.size
    return value, grad


def log_softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


def softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Cross entropy against integer labels; grad is w.r.t. logits."""
    batch = logits.shape[0]
    log_probs = log_softmax(logits)
    value = float(-log_probs[np.arange(batch), labels].mean())
    grad = softmax(logits)
    grad[np.arange(batch), labels] -= 1.0
    return value, grad / batch


def entropy(logits: np.ndarray) -> np.ndarray:
    """Per-row entropy of the softmax distribution."""
    log_probs = log_softmax(logits)
    return -(np.exp(log_probs) * log_probs).sum(axis=-1)


def entropy_grad(logits: np.ndarray) -> np.ndarray:
    """d(mean entropy)/d(logits)."""
    probs = softmax(logits)
    log_probs = log_softmax(logits)
    inner = log_probs + 1.0
    weighted = probs * inner
    grad = -(weighted - probs * weighted.sum(axis=-1, keepdims=True))
    return grad / logits.shape[0]


def categorical_sample(
    logits: np.ndarray, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Sample actions from softmax(logits) row-wise (Gumbel-max trick)."""
    rng = rng or np.random.default_rng()
    gumbel = -np.log(-np.log(rng.uniform(1e-12, 1.0, size=logits.shape)))
    return (logits + gumbel).argmax(axis=-1)
