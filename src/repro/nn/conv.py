"""Convolution and pooling layers (im2col-based).

Used by the Atari-style image policies; NCHW layout throughout.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from . import initializers
from .layers import Layer


def _im2col(
    x: np.ndarray, kernel: int, stride: int, pad: int
) -> Tuple[np.ndarray, int, int]:
    batch, channels, height, width = x.shape
    out_h = (height + 2 * pad - kernel) // stride + 1
    out_w = (width + 2 * pad - kernel) // stride + 1
    padded = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    cols = np.empty((batch, channels, kernel, kernel, out_h, out_w), dtype=x.dtype)
    for ky in range(kernel):
        y_max = ky + stride * out_h
        for kx in range(kernel):
            x_max = kx + stride * out_w
            cols[:, :, ky, kx, :, :] = padded[:, :, ky:y_max:stride, kx:x_max:stride]
    return cols.transpose(0, 4, 5, 1, 2, 3).reshape(batch * out_h * out_w, -1), out_h, out_w


def _col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    pad: int,
    out_h: int,
    out_w: int,
) -> np.ndarray:
    batch, channels, height, width = input_shape
    cols = cols.reshape(batch, out_h, out_w, channels, kernel, kernel).transpose(
        0, 3, 4, 5, 1, 2
    )
    padded = np.zeros((batch, channels, height + 2 * pad, width + 2 * pad), dtype=cols.dtype)
    for ky in range(kernel):
        y_max = ky + stride * out_h
        for kx in range(kernel):
            x_max = kx + stride * out_w
            padded[:, :, ky:y_max:stride, kx:x_max:stride] += cols[:, :, ky, kx, :, :]
    if pad == 0:
        return padded
    return padded[:, :, pad:-pad, pad:-pad]


class Conv2D(Layer):
    """2-D convolution with square kernels."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        *,
        stride: int = 1,
        pad: int = 0,
        weight_init: str = "he_normal",
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        init = initializers.get(weight_init)
        self.kernel = kernel
        self.stride = stride
        self.pad = pad
        self.weight = init(
            (out_channels, in_channels, kernel, kernel), rng
        ).astype(np.float64)
        self.bias = np.zeros(out_channels, dtype=np.float64)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self.params = [self.weight, self.bias]
        self.grads = [self.grad_weight, self.grad_bias]
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        cols, out_h, out_w = _im2col(x, self.kernel, self.stride, self.pad)
        flat_weight = self.weight.reshape(self.weight.shape[0], -1).T
        out = cols @ flat_weight + self.bias
        batch = x.shape[0]
        self._cache = (x.shape, cols, out_h, out_w)
        return out.reshape(batch, out_h, out_w, -1).transpose(0, 3, 1, 2)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._cache is not None
        input_shape, cols, out_h, out_w = self._cache
        out_channels = grad_output.shape[1]
        grad_flat = grad_output.transpose(0, 2, 3, 1).reshape(-1, out_channels)
        self.grad_bias += grad_flat.sum(axis=0)
        self.grad_weight += (grad_flat.T @ cols).reshape(self.weight.shape)
        flat_weight = self.weight.reshape(out_channels, -1)
        grad_cols = grad_flat @ flat_weight
        return _col2im(
            grad_cols, input_shape, self.kernel, self.stride, self.pad, out_h, out_w
        )


class MaxPool2D(Layer):
    """Max pooling with square windows (stride == window by default)."""

    def __init__(self, window: int, stride: Optional[int] = None):
        super().__init__()
        self.window = window
        self.stride = stride or window
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        cols, out_h, out_w = _im2col(x, self.window, self.stride, 0)
        batch, channels = x.shape[0], x.shape[1]
        cols = cols.reshape(-1, channels, self.window * self.window)
        argmax = cols.argmax(axis=2)
        out = cols.max(axis=2)
        self._cache = (x.shape, argmax, out_h, out_w)
        return out.reshape(batch, out_h, out_w, channels).transpose(0, 3, 1, 2)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._cache is not None
        input_shape, argmax, out_h, out_w = self._cache
        channels = input_shape[1]
        grad_flat = grad_output.transpose(0, 2, 3, 1).reshape(-1, channels)
        grad_cols = np.zeros(
            (grad_flat.shape[0], channels, self.window * self.window), dtype=grad_flat.dtype
        )
        rows = np.arange(grad_flat.shape[0])[:, None]
        cols_idx = np.arange(channels)[None, :]
        grad_cols[rows, cols_idx, argmax] = grad_flat
        grad_cols = grad_cols.reshape(grad_flat.shape[0], -1)
        return _col2im(
            grad_cols, input_shape, self.window, self.stride, 0, out_h, out_w
        )
