"""Sequential networks."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .layers import Dense, Layer, ReLU, Tanh


class Sequential:
    """A stack of layers with shared forward/backward plumbing."""

    def __init__(self, layers: Sequence[Layer]):
        self.layers: List[Layer] = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    __call__ = forward

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_output = layer.backward(grad_output)
        return grad_output

    def zero_grads(self) -> None:
        for layer in self.layers:
            layer.zero_grads()

    @property
    def params(self) -> List[np.ndarray]:
        return [param for layer in self.layers for param in layer.params]

    @property
    def grads(self) -> List[np.ndarray]:
        return [grad for layer in self.layers for grad in layer.grads]

    def get_weights(self) -> List[np.ndarray]:
        return [param.copy() for param in self.params]

    def set_weights(self, weights: List[np.ndarray]) -> None:
        params = self.params
        if len(weights) != len(params):
            raise ValueError(
                f"weight count mismatch: got {len(weights)}, expected {len(params)}"
            )
        for param, weight in zip(params, weights):
            if param.shape != weight.shape:
                raise ValueError(
                    f"weight shape mismatch: got {weight.shape}, expected {param.shape}"
                )
            param[...] = weight


def mlp(
    sizes: Sequence[int],
    *,
    activation: str = "tanh",
    rng: Optional[np.random.Generator] = None,
) -> Sequential:
    """Build an MLP with the given layer ``sizes`` (input first, output last)."""
    if len(sizes) < 2:
        raise ValueError("mlp needs at least input and output sizes")
    activations = {"relu": ReLU, "tanh": Tanh}
    try:
        act_cls = activations[activation]
    except KeyError:
        raise KeyError(
            f"unknown activation {activation!r}; known: {sorted(activations)}"
        ) from None
    rng = rng or np.random.default_rng()
    init = "he_normal" if activation == "relu" else "xavier_uniform"
    layers: List[Layer] = []
    for index in range(len(sizes) - 1):
        layers.append(Dense(sizes[index], sizes[index + 1], weight_init=init, rng=rng))
        if index < len(sizes) - 2:
            layers.append(act_cls())
    return Sequential(layers)
