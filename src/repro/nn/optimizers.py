"""Optimizers operating on (params, grads) lists."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np


class Optimizer:
    """Interface: ``step`` applies gradients to parameters in place."""

    def __init__(self, params: List[np.ndarray], grads: List[np.ndarray]):
        if len(params) != len(grads):
            raise ValueError("params and grads must align")
        self.params = params
        self.grads = grads

    def step(self) -> None:
        raise NotImplementedError

    def state_dict(self) -> Dict[str, Any]:
        """Snapshot internal state (momentum/moment buffers) for checkpoints."""
        return {}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""

    def zero_grads(self) -> None:
        for grad in self.grads:
            grad.fill(0.0)

    def clip_grads(self, max_norm: float) -> float:
        """Global-norm gradient clipping; returns the pre-clip norm."""
        total = float(np.sqrt(sum(float(np.sum(g**2)) for g in self.grads)))
        if total > max_norm and total > 0:
            scale = max_norm / total
            for grad in self.grads:
                grad *= scale
        return total


class SGD(Optimizer):
    """SGD with optional momentum."""

    def __init__(
        self,
        params: List[np.ndarray],
        grads: List[np.ndarray],
        lr: float = 1e-2,
        momentum: float = 0.0,
    ):
        super().__init__(params, grads)
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.momentum = momentum
        self._velocity: Optional[List[np.ndarray]] = None
        if momentum:
            self._velocity = [np.zeros_like(param) for param in params]

    def step(self) -> None:
        if self._velocity is None:
            for param, grad in zip(self.params, self.grads):
                param -= self.lr * grad
        else:
            for param, grad, vel in zip(self.params, self.grads, self._velocity):
                vel *= self.momentum
                vel += grad
                param -= self.lr * vel

    def state_dict(self) -> Dict[str, Any]:
        if self._velocity is None:
            return {}
        return {"velocity": [vel.copy() for vel in self._velocity]}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        velocity = state.get("velocity")
        if velocity is not None and self._velocity is not None:
            for current, saved in zip(self._velocity, velocity):
                current[...] = saved


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015)."""

    def __init__(
        self,
        params: List[np.ndarray],
        grads: List[np.ndarray],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        super().__init__(params, grads)
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(param) for param in params]
        self._v = [np.zeros_like(param) for param in params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, grad, m, v in zip(self.params, self.grads, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            param -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)

    def state_dict(self) -> Dict[str, Any]:
        return {
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
            "t": self._t,
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        for current, saved in zip(self._m, state.get("m", ())):
            current[...] = saved
        for current, saved in zip(self._v, state.get("v", ())):
            current[...] = saved
        self._t = int(state.get("t", self._t))
