"""NumPy deep-learning substrate.

Stands in for TensorFlow/PyTorch (DESIGN.md §2): real parameters, real
gradients, real optimizer state — enough to actually learn CartPole and to
make training take genuine, tunable CPU time, which is what the
communication-overlap experiments require.
"""

from .layers import Dense, Flatten, Layer, ReLU, Tanh
from .conv import Conv2D, MaxPool2D
from .network import Sequential, mlp
from .optimizers import SGD, Adam, Optimizer
from . import losses
from . import initializers

__all__ = [
    "Layer",
    "Dense",
    "ReLU",
    "Tanh",
    "Flatten",
    "Conv2D",
    "MaxPool2D",
    "Sequential",
    "mlp",
    "Optimizer",
    "SGD",
    "Adam",
    "losses",
    "initializers",
]
