"""Weight initializers."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def zeros(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    del rng
    return np.zeros(shape, dtype=np.float64)


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def he_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Kaiming normal: N(0, sqrt(2 / fan_in)) — suited to ReLU stacks."""
    fan_in, _ = _fans(shape)
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def orthogonal(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Orthogonal init (common for policy heads)."""
    if len(shape) < 2:
        return rng.normal(0.0, 1.0, size=shape)
    rows = shape[0]
    cols = int(np.prod(shape[1:]))
    matrix = rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(matrix)
    q *= np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return gain * q[:rows, :cols].reshape(shape)


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive


def get(name: str):
    table = {
        "zeros": zeros,
        "xavier_uniform": xavier_uniform,
        "he_normal": he_normal,
        "orthogonal": orthogonal,
    }
    try:
        return table[name]
    except KeyError:
        raise KeyError(f"unknown initializer {name!r}; known: {sorted(table)}") from None
