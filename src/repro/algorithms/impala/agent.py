"""IMPALA agent: behaviour-policy sampling, recording behaviour logp."""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from ...api.agent import Agent
from ...api.algorithm import Algorithm
from ...api.environment import Environment
from ...api.registry import register_agent
from ...nn import losses
from ..rollout import flatten_observations


@register_agent("impala")
class ImpalaAgent(Agent):
    """Samples from the (possibly stale) local policy copy.

    Unlike the PPO agent it does not record value estimates: the learner
    evaluates V(s) with the *current* value function when applying V-trace.
    """

    def __init__(
        self,
        algorithm: Algorithm,
        environment: Environment,
        config: Optional[Dict[str, Any]] = None,
    ):
        super().__init__(algorithm, environment, config)
        self._rng = np.random.default_rng(self.config.get("seed"))

    def infer_action(self, observation: Any) -> Tuple[int, Dict[str, Any]]:
        flat = flatten_observations(np.asarray(observation)[None])
        logits = self.algorithm.model.policy.forward(flat)
        action = int(losses.categorical_sample(logits, self._rng)[0])
        logp = float(losses.log_softmax(logits)[0, action])
        return action, {"logp": logp}
