"""IMPALA: actor-critic, off-policy via V-trace (Espeholt et al., 2018)."""

from .vtrace import vtrace_from_importance_weights, vtrace_from_logps
from .algorithm import ImpalaAlgorithm
from .agent import ImpalaAgent

__all__ = [
    "vtrace_from_importance_weights",
    "vtrace_from_logps",
    "ImpalaAlgorithm",
    "ImpalaAgent",
]
