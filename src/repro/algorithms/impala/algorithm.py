"""IMPALA training logic.

The learner trains the moment *one* explorer's rollout arrives (batch of one
fragment, §5.2) and sends updated weights exactly to the explorers whose
rollouts it consumed (§2.1, Fig. 1c).  V-trace makes the stale-policy
rollouts usable off-policy.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional, Tuple

import numpy as np

from ...api.algorithm import Algorithm
from ...api.registry import register_algorithm
from ...nn import Adam, losses
from ..rollout import flatten_observations, rollout_length
from ..ppo.model import ActorCriticModel
from .vtrace import vtrace_from_logps


@register_algorithm("impala")
class ImpalaAlgorithm(Algorithm):
    """Importance-weighted actor-learner with V-trace correction.

    Config: ``gamma`` (0.99), ``lr`` (3e-4), ``entropy_coef`` (0.01),
    ``value_coef`` (0.5), ``clip_rho`` (1.0), ``clip_c`` (1.0),
    ``max_grad_norm`` (40.0), ``max_queued_fragments`` (64), ``seed``.
    """

    on_policy = False
    broadcast_mode = "sources"
    broadcast_every = 1

    def __init__(self, model: ActorCriticModel, config: Optional[Dict[str, Any]] = None):
        super().__init__(model, config)
        cfg = self.config
        self.gamma = float(cfg.get("gamma", 0.99))
        self.entropy_coef = float(cfg.get("entropy_coef", 0.01))
        self.value_coef = float(cfg.get("value_coef", 0.5))
        self.clip_rho = float(cfg.get("clip_rho", 1.0))
        self.clip_c = float(cfg.get("clip_c", 1.0))
        self.max_grad_norm = float(cfg.get("max_grad_norm", 40.0))
        max_queue = int(cfg.get("max_queued_fragments", 64))
        self._queue: Deque[Tuple[str, Dict[str, np.ndarray]]] = deque(maxlen=max_queue)
        self._policy_opt = Adam(
            self.model.policy.params, self.model.policy.grads, lr=float(cfg.get("lr", 3e-4))
        )
        self._value_opt = Adam(
            self.model.value.params, self.model.value.grads, lr=float(cfg.get("lr", 3e-4))
        )

    # -- data path -----------------------------------------------------------
    def prepare_data(self, rollout: Dict[str, Any], source: str = "") -> None:
        self._queue.append((source, rollout))

    def ready_to_train(self) -> bool:
        return bool(self._queue)

    def staged_steps(self) -> int:
        return sum(rollout_length(rollout) for _, rollout in self._queue)

    # -- training ---------------------------------------------------------------
    def _train(self) -> Dict[str, float]:
        source, fragment = self._queue.popleft()
        self.note_consumed_sources([source])

        obs = flatten_observations(fragment["obs"])
        actions = np.asarray(fragment["action"], dtype=np.int64)
        rewards = np.asarray(fragment["reward"], dtype=np.float64)
        dones = np.asarray(fragment["done"], dtype=np.float64)
        behaviour_logp = np.asarray(fragment["logp"], dtype=np.float64)
        batch = len(obs)
        rows = np.arange(batch)

        # Current-policy quantities for the whole fragment.
        logits = self.model.policy.forward(obs)
        log_probs = losses.log_softmax(logits)
        target_logp = log_probs[rows, actions]
        values = self.model.value.forward(obs)[:, 0]
        bootstrap = self._bootstrap_value(fragment)

        returns = vtrace_from_logps(
            behaviour_logp,
            target_logp,
            rewards,
            dones,
            values,
            bootstrap,
            gamma=self.gamma,
            clip_rho=self.clip_rho,
            clip_c=self.clip_c,
        )

        # Policy gradient: -E[pg_adv * log pi(a|s)] - entropy bonus.
        grad_logp = -returns.pg_advantages / batch
        probs = losses.softmax(logits)
        grad_logits = probs * (-grad_logp[:, None])
        grad_logits[rows, actions] += grad_logp
        grad_logits -= self.entropy_coef * losses.entropy_grad(logits)
        self.model.policy.zero_grads()
        self.model.policy.backward(grad_logits)
        self._policy_opt.clip_grads(self.max_grad_norm)
        self._policy_opt.step()

        # Value regression to v_s targets (fresh forward for clean cache).
        values = self.model.value.forward(obs)[:, 0]
        value_loss, grad_values = losses.mse(values, returns.vs)
        self.model.value.zero_grads()
        self.model.value.backward(self.value_coef * grad_values[:, None])
        self._value_opt.clip_grads(self.max_grad_norm)
        self._value_opt.step()

        policy_loss = float(-(returns.pg_advantages * target_logp).mean())
        return {
            "policy_loss": policy_loss,
            "value_loss": float(value_loss),
            "mean_rho": float(returns.rhos.mean()),
            "trained_steps": float(batch),
        }

    def _bootstrap_value(self, fragment: Dict[str, np.ndarray]) -> float:
        if bool(np.asarray(fragment["done"])[-1]):
            return 0.0
        last_next = flatten_observations(np.asarray(fragment["next_obs"])[-1:])
        return float(self.model.value.forward(last_next)[0, 0])
