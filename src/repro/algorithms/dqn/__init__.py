"""DQN: value-based, off-policy (Mnih et al., 2013)."""

from .model import QNetworkModel
from .algorithm import DQNAlgorithm
from .agent import DQNAgent

__all__ = ["QNetworkModel", "DQNAlgorithm", "DQNAgent"]
