"""DQN agent: epsilon-greedy environment interaction."""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from ...api.agent import Agent
from ...api.algorithm import Algorithm
from ...api.environment import Environment
from ...api.registry import register_agent
from ..rollout import flatten_observations


@register_agent("dqn")
class DQNAgent(Agent):
    """Epsilon-greedy agent with linear epsilon decay.

    Config: ``epsilon_start`` (1.0), ``epsilon_end`` (0.05),
    ``epsilon_decay_steps`` (10_000), ``seed``.
    """

    def __init__(
        self,
        algorithm: Algorithm,
        environment: Environment,
        config: Optional[Dict[str, Any]] = None,
    ):
        super().__init__(algorithm, environment, config)
        self.epsilon_start = float(self.config.get("epsilon_start", 1.0))
        self.epsilon_end = float(self.config.get("epsilon_end", 0.05))
        self.epsilon_decay_steps = int(self.config.get("epsilon_decay_steps", 10_000))
        self._rng = np.random.default_rng(self.config.get("seed"))

    def epsilon(self) -> float:
        fraction = min(self.total_steps / max(self.epsilon_decay_steps, 1), 1.0)
        return self.epsilon_start + fraction * (self.epsilon_end - self.epsilon_start)

    def infer_action(self, observation: Any) -> Tuple[int, Dict[str, Any]]:
        if self._rng.random() < self.epsilon():
            return int(self._rng.integers(self.environment.action_space.n)), {}
        flat = flatten_observations(np.asarray(observation)[None])
        q_values = self.algorithm.predict(flat)[0]
        return int(q_values.argmax()), {}
