"""DQN training logic.

Matches the paper's experimental setup (§5.2): a replay buffer maintained
*inside the learner's trainer thread*; after ``learn_start`` steps are
collected, every ``train_every`` newly-inserted steps trigger one training
session on a sampled batch; weights go out every ``broadcast_every``
sessions.  The replay buffer living learner-local (not behind an RPC actor)
is one of XingTian's explicit design decisions — Fig. 9 measures it.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from ...api.algorithm import Algorithm
from ...api.registry import register_algorithm
from ...nn import Adam, losses
from ...replay import PrioritizedReplayBuffer, ReplayBuffer
from ...replay.nstep import NStepAccumulator
from ..rollout import flatten_observations
from .model import QNetworkModel


@register_algorithm("dqn")
class DQNAlgorithm(Algorithm):
    """Deep Q-learning with target network and optional prioritized replay.

    Config keys (defaults match the paper where it states them):
    ``buffer_size`` (1_000_000), ``learn_start`` (20_000), ``train_every``
    (4), ``batch_size`` (32), ``gamma`` (0.99), ``lr`` (1e-3),
    ``target_update_every`` (500 sessions), ``broadcast_every`` (5),
    ``prioritized`` (False), ``priority_beta`` (0.4), ``double`` (False —
    double-DQN action selection by the online network), ``n_step`` (1 —
    n-step transition folding), ``seed``.
    """

    on_policy = False
    broadcast_mode = "all"

    def __init__(self, model: QNetworkModel, config: Optional[Dict[str, Any]] = None):
        super().__init__(model, config)
        cfg = self.config
        self.batch_size = int(cfg.get("batch_size", 32))
        self.gamma = float(cfg.get("gamma", 0.99))
        self.learn_start = int(cfg.get("learn_start", 20_000))
        self.train_every = int(cfg.get("train_every", 4))
        self.target_update_every = int(cfg.get("target_update_every", 500))
        self.broadcast_every = int(cfg.get("broadcast_every", 5))
        self.prioritized = bool(cfg.get("prioritized", False))
        self.priority_beta = float(cfg.get("priority_beta", 0.4))
        self.double = bool(cfg.get("double", False))
        self.n_step = int(cfg.get("n_step", 1))
        buffer_size = int(cfg.get("buffer_size", 1_000_000))
        seed = cfg.get("seed")
        if self.prioritized:
            self.replay: ReplayBuffer = PrioritizedReplayBuffer(buffer_size, seed=seed)
        else:
            self.replay = ReplayBuffer(buffer_size, seed=seed)
        self._nstep = (
            NStepAccumulator(self.replay, n=self.n_step, gamma=self.gamma)
            if self.n_step > 1
            else None
        )
        self._pending_inserts = 0
        self._rng = np.random.default_rng(seed)
        self._target_weights = self.model.get_weights()
        self._optimizer = Adam(
            self.model.network.params,
            self.model.network.grads,
            lr=float(cfg.get("lr", 1e-3)),
        )

    # -- data path -----------------------------------------------------------
    def prepare_data(self, rollout: Dict[str, Any], source: str = "") -> None:
        if self._nstep is not None:
            added = self._nstep.add_rollout(rollout)
        else:
            added = self.replay.add_rollout(rollout)
        self._pending_inserts += added
        self.note_consumed_sources([source] if source else [])

    def ready_to_train(self) -> bool:
        return (
            len(self.replay) >= min(self.learn_start, self.replay.capacity)
            and self._pending_inserts >= self.train_every
        )

    def staged_steps(self) -> int:
        return self._pending_inserts

    # -- training ---------------------------------------------------------------
    def _train(self) -> Dict[str, float]:
        self._pending_inserts -= self.train_every
        if self.prioritized:
            batch, is_weights, indices = self.replay.sample(
                self.batch_size, beta=self.priority_beta
            )
        else:
            batch = self.replay.sample(self.batch_size)
            is_weights, indices = None, None

        obs = flatten_observations(batch["obs"])
        next_obs = flatten_observations(batch["next_obs"])
        actions = np.asarray(batch["action"], dtype=np.int64)
        rewards = np.asarray(batch["reward"], dtype=np.float64)
        dones = np.asarray(batch["done"], dtype=np.float64)

        # Target: r + discount * (1 - done) * Q_target(s', a*) where a* is
        # argmax under the target net (vanilla) or the online net (double
        # DQN, van Hasselt et al. 2016).  With n-step folding the discount
        # is gamma^n, carried per transition by the accumulator.
        if self._nstep is not None and "n_discount" in batch:
            discounts = np.asarray(batch["n_discount"], dtype=np.float64)
        else:
            discounts = self.gamma
        if self.double:
            online_next_q = self.model.forward(next_obs)
        live_weights = self.model.get_weights()
        self.model.set_weights(self._target_weights)
        next_q = self.model.forward(next_obs)
        self.model.set_weights(live_weights)
        if self.double:
            best_actions = online_next_q.argmax(axis=1)
            next_values = next_q[np.arange(len(best_actions)), best_actions]
        else:
            next_values = next_q.max(axis=1)
        targets = rewards + discounts * (1.0 - dones) * next_values

        network = self.model.network
        q_values = network.forward(obs)
        rows = np.arange(len(actions))
        chosen = q_values[rows, actions]
        td_error = chosen - targets
        loss, grad_chosen = losses.huber(chosen, targets)
        if is_weights is not None:
            grad_chosen = grad_chosen * is_weights
            loss = float(np.mean(is_weights * np.abs(td_error)))
        grad_q = np.zeros_like(q_values)
        grad_q[rows, actions] = grad_chosen
        network.zero_grads()
        network.backward(grad_q)
        self._optimizer.clip_grads(10.0)
        self._optimizer.step()

        if indices is not None:
            self.replay.update_priorities(indices, np.abs(td_error) + 1e-6)
        if (self.train_count + 1) % self.target_update_every == 0:
            self._target_weights = self.model.get_weights()
        return {
            "loss": float(loss),
            "mean_q": float(chosen.mean()),
            "trained_steps": float(self.batch_size),
        }
