"""Q-network model."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from ...api.model import Model
from ...api.registry import register_model
from ...nn import Sequential, mlp


@register_model("qnet")
class QNetworkModel(Model):
    """MLP mapping flattened observations to per-action Q-values.

    Config: ``obs_dim``, ``num_actions``, ``hidden_sizes`` (default
    ``[64, 64]``), ``seed``.
    """

    def __init__(self, config: Optional[Dict[str, Any]] = None):
        super().__init__(config)
        obs_dim = int(self.config["obs_dim"])
        num_actions = int(self.config["num_actions"])
        hidden = list(self.config.get("hidden_sizes", [64, 64]))
        rng = np.random.default_rng(self.config.get("seed"))
        self.network: Sequential = mlp(
            [obs_dim] + hidden + [num_actions], activation="relu", rng=rng
        )
        self.num_actions = num_actions

    def forward(self, observation: np.ndarray) -> np.ndarray:
        return self.network.forward(observation)

    def get_weights(self) -> List[np.ndarray]:
        return self.network.get_weights()

    def set_weights(self, weights: List[np.ndarray]) -> None:
        self.network.set_weights(weights)
