"""DDPG training logic: replay + target networks + deterministic PG."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from ...api.algorithm import Algorithm
from ...api.registry import register_algorithm
from ...nn import Adam, losses
from ...replay import ReplayBuffer
from ..rollout import flatten_observations
from .model import DDPGModel


@register_algorithm("ddpg")
class DDPGAlgorithm(Algorithm):
    """Deep deterministic policy gradient.

    Config: ``buffer_size`` (100_000), ``learn_start`` (1_000),
    ``train_every`` (1), ``batch_size`` (64), ``gamma`` (0.99), ``tau``
    (0.005, Polyak rate), ``actor_lr`` (1e-4), ``critic_lr`` (1e-3),
    ``broadcast_every`` (5), ``seed``.
    """

    on_policy = False
    broadcast_mode = "all"

    def __init__(self, model: DDPGModel, config: Optional[Dict[str, Any]] = None):
        super().__init__(model, config)
        cfg = self.config
        self.batch_size = int(cfg.get("batch_size", 64))
        self.gamma = float(cfg.get("gamma", 0.99))
        self.tau = float(cfg.get("tau", 0.005))
        self.learn_start = int(cfg.get("learn_start", 1_000))
        self.train_every = int(cfg.get("train_every", 1))
        self.broadcast_every = int(cfg.get("broadcast_every", 5))
        self.replay = ReplayBuffer(int(cfg.get("buffer_size", 100_000)), seed=cfg.get("seed"))
        self._pending_inserts = 0
        self._target_weights: List[np.ndarray] = self.model.get_weights()
        self._actor_opt = Adam(
            self.model.actor.params, self.model.actor.grads, lr=float(cfg.get("actor_lr", 1e-4))
        )
        self._critic_opt = Adam(
            self.model.critic.params,
            self.model.critic.grads,
            lr=float(cfg.get("critic_lr", 1e-3)),
        )

    # -- data path -----------------------------------------------------------
    def prepare_data(self, rollout: Dict[str, Any], source: str = "") -> None:
        added = self.replay.add_rollout(rollout)
        self._pending_inserts += added
        self.note_consumed_sources([source] if source else [])

    def ready_to_train(self) -> bool:
        return (
            len(self.replay) >= min(self.learn_start, self.replay.capacity)
            and self._pending_inserts >= self.train_every
        )

    def staged_steps(self) -> int:
        return self._pending_inserts

    # -- training ---------------------------------------------------------------
    def _train(self) -> Dict[str, float]:
        self._pending_inserts -= self.train_every
        batch = self.replay.sample(self.batch_size)
        obs = flatten_observations(batch["obs"])
        next_obs = flatten_observations(batch["next_obs"])
        actions = np.asarray(batch["action"], dtype=np.float64).reshape(len(obs), -1)
        rewards = np.asarray(batch["reward"], dtype=np.float64)
        dones = np.asarray(batch["done"], dtype=np.float64)

        # Critic target from target networks.
        live = self.model.get_weights()
        self.model.set_weights(self._target_weights)
        next_actions = self.model.forward(next_obs)
        next_q = self.model.q_value(next_obs, next_actions)
        self.model.set_weights(live)
        targets = rewards + self.gamma * (1.0 - dones) * next_q

        # Critic update.
        scaled_actions = actions / self.model.action_bound
        critic_in = np.concatenate([obs, scaled_actions], axis=1)
        q_pred = self.model.critic.forward(critic_in)[:, 0]
        critic_loss, grad_q = losses.mse(q_pred, targets)
        self.model.critic.zero_grads()
        self.model.critic.backward(grad_q[:, None])
        self._critic_opt.clip_grads(10.0)
        self._critic_opt.step()

        # Actor update: maximize Q(s, actor(s)) via chain rule through the
        # critic's input gradient (the action slice).
        actor_actions = self.model.actor.forward(obs)  # in [-1, 1]
        critic_in = np.concatenate([obs, actor_actions], axis=1)
        q_actor = self.model.critic.forward(critic_in)
        self.model.critic.zero_grads()
        grad_input = self.model.critic.backward(
            -np.ones_like(q_actor) / len(obs)
        )
        self.model.critic.zero_grads()  # discard critic grads from this pass
        grad_actions = grad_input[:, self.model.obs_dim :]
        self.model.actor.zero_grads()
        self.model.actor.backward(grad_actions)
        self._actor_opt.clip_grads(10.0)
        self._actor_opt.step()

        # Polyak-average target networks toward the live networks.
        live = self.model.get_weights()
        self._target_weights = [
            (1.0 - self.tau) * target + self.tau * current
            for target, current in zip(self._target_weights, live)
        ]
        return {
            "critic_loss": float(critic_loss),
            "mean_q": float(q_pred.mean()),
            "trained_steps": float(self.batch_size),
        }
