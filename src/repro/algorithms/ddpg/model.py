"""DDPG actor + critic networks."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from ...api.model import Model
from ...api.registry import register_model
from ...nn import Sequential, Tanh, mlp


@register_model("ddpg")
class DDPGModel(Model):
    """Deterministic actor (obs → action in [-bound, bound]) and critic
    (concat(obs, action) → Q).

    Config: ``obs_dim``, ``action_dim``, ``action_bound`` (1.0),
    ``hidden_sizes`` ([64, 64]), ``seed``.
    """

    def __init__(self, config: Optional[Dict[str, Any]] = None):
        super().__init__(config)
        obs_dim = int(self.config["obs_dim"])
        action_dim = int(self.config["action_dim"])
        self.action_bound = float(self.config.get("action_bound", 1.0))
        hidden = list(self.config.get("hidden_sizes", [64, 64]))
        rng = np.random.default_rng(self.config.get("seed"))
        actor_body = mlp([obs_dim] + hidden + [action_dim], activation="relu", rng=rng)
        self.actor = Sequential(actor_body.layers + [Tanh()])
        self.critic = mlp([obs_dim + action_dim] + hidden + [1], activation="relu", rng=rng)
        self.obs_dim = obs_dim
        self.action_dim = action_dim

    def forward(self, observation: np.ndarray) -> np.ndarray:
        """Actor forward: deterministic bounded actions."""
        return self.action_bound * self.actor.forward(observation)

    def q_value(self, observation: np.ndarray, action: np.ndarray) -> np.ndarray:
        scaled = np.asarray(action, dtype=np.float64) / self.action_bound
        return self.critic.forward(np.concatenate([observation, scaled], axis=1))[:, 0]

    def get_weights(self) -> List[np.ndarray]:
        return self.actor.get_weights() + self.critic.get_weights()

    def set_weights(self, weights: List[np.ndarray]) -> None:
        split = len(self.actor.params)
        self.actor.set_weights(weights[:split])
        self.critic.set_weights(weights[split:])
