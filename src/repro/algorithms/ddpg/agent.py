"""DDPG agent: deterministic policy plus exploration noise."""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from ...api.agent import Agent
from ...api.algorithm import Algorithm
from ...api.environment import Environment
from ...api.registry import register_agent
from ..rollout import flatten_observations


@register_agent("ddpg")
class DDPGAgent(Agent):
    """Acts with actor(obs) + Gaussian noise, clipped to the action space.

    Config: ``noise_scale`` (0.1, relative to action bound), ``warmup_steps``
    (500 — uniform random actions before the actor is trusted), ``seed``.
    """

    def __init__(
        self,
        algorithm: Algorithm,
        environment: Environment,
        config: Optional[Dict[str, Any]] = None,
    ):
        super().__init__(algorithm, environment, config)
        self.noise_scale = float(self.config.get("noise_scale", 0.1))
        self.warmup_steps = int(self.config.get("warmup_steps", 500))
        self._rng = np.random.default_rng(self.config.get("seed"))

    def infer_action(self, observation: Any) -> Tuple[np.ndarray, Dict[str, Any]]:
        space = self.environment.action_space
        if self.total_steps < self.warmup_steps:
            return space.sample(self._rng).astype(np.float64), {}
        flat = flatten_observations(np.asarray(observation)[None])
        action = self.algorithm.model.forward(flat)[0]
        bound = self.algorithm.model.action_bound
        noise = self._rng.normal(0.0, self.noise_scale * bound, size=action.shape)
        return np.clip(action + noise, space.low, space.high), {}
