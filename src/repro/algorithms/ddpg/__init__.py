"""DDPG: actor-critic, off-policy, continuous control (Lillicrap et al., 2016)."""

from .model import DDPGModel
from .algorithm import DDPGAlgorithm
from .agent import DDPGAgent

__all__ = ["DDPGModel", "DDPGAlgorithm", "DDPGAgent"]
