"""A2C: synchronous advantage actor-critic (Mnih et al., 2016, sync variant)."""

from .algorithm import A2CAlgorithm
from .agent import A2CAgent

__all__ = ["A2CAlgorithm", "A2CAgent"]
