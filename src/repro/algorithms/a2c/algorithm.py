"""A2C training logic.

The synchronous lock-step pattern the paper cites for classical actor-critic
methods (§2.1, refs [10, 17, 18]): the learner collects one fragment from
every explorer, takes a single policy-gradient + value step on the whole
batch, and broadcasts fresh weights.  Like PPO it is on-policy, but with no
surrogate clipping and no epoch reuse — one gradient step per round.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from ...api.algorithm import Algorithm
from ...api.registry import register_algorithm
from ...nn import Adam, losses
from ..ppo.gae import generalized_advantage_estimation
from ..ppo.model import ActorCriticModel
from ..rollout import flatten_observations, rollout_length


@register_algorithm("a2c")
class A2CAlgorithm(Algorithm):
    """Synchronous advantage actor-critic.

    Config: ``num_explorers`` (round size), ``gamma`` (0.99), ``lam`` (1.0 —
    plain discounted returns by default), ``lr`` (7e-4), ``entropy_coef``
    (0.01), ``value_coef`` (0.5), ``max_grad_norm`` (0.5), ``seed``.
    """

    on_policy = True
    broadcast_mode = "all"
    broadcast_every = 1

    def __init__(self, model: ActorCriticModel, config: Optional[Dict[str, Any]] = None):
        super().__init__(model, config)
        cfg = self.config
        self.num_explorers = int(cfg.get("num_explorers", 1))
        self.gamma = float(cfg.get("gamma", 0.99))
        self.lam = float(cfg.get("lam", 1.0))
        self.entropy_coef = float(cfg.get("entropy_coef", 0.01))
        self.value_coef = float(cfg.get("value_coef", 0.5))
        self.max_grad_norm = float(cfg.get("max_grad_norm", 0.5))
        self._staged: Dict[str, Dict[str, np.ndarray]] = {}
        self._policy_opt = Adam(
            self.model.policy.params, self.model.policy.grads, lr=float(cfg.get("lr", 7e-4))
        )
        self._value_opt = Adam(
            self.model.value.params, self.model.value.grads, lr=float(cfg.get("lr", 7e-4))
        )

    # -- data path -----------------------------------------------------------
    def prepare_data(self, rollout: Dict[str, Any], source: str = "") -> None:
        self._staged[source] = rollout

    def ready_to_train(self) -> bool:
        return len(self._staged) >= self.num_explorers

    def staged_steps(self) -> int:
        return sum(rollout_length(r) for r in self._staged.values())

    # -- training ---------------------------------------------------------------
    def _train(self) -> Dict[str, float]:
        sources = list(self._staged)
        fragments = [self._staged[source] for source in sources]
        self._staged.clear()
        self.note_consumed_sources(sources)

        obs_list: List[np.ndarray] = []
        act_list: List[np.ndarray] = []
        adv_list: List[np.ndarray] = []
        target_list: List[np.ndarray] = []
        for fragment in fragments:
            obs = flatten_observations(fragment["obs"])
            values = self.model.value.forward(obs)[:, 0]
            bootstrap = self._bootstrap_value(fragment)
            advantages, targets = generalized_advantage_estimation(
                np.asarray(fragment["reward"], dtype=np.float64),
                values,
                np.asarray(fragment["done"], dtype=np.float64),
                bootstrap,
                self.gamma,
                self.lam,
            )
            obs_list.append(obs)
            act_list.append(np.asarray(fragment["action"], dtype=np.int64))
            adv_list.append(advantages)
            target_list.append(targets)

        obs = np.concatenate(obs_list)
        actions = np.concatenate(act_list)
        advantages = np.concatenate(adv_list)
        targets = np.concatenate(target_list)
        advantages = (advantages - advantages.mean()) / (advantages.std() + 1e-8)
        batch = len(obs)
        rows = np.arange(batch)

        # One policy-gradient step on the whole round.
        logits = self.model.policy.forward(obs)
        log_probs = losses.log_softmax(logits)
        grad_logp = -advantages / batch
        probs = losses.softmax(logits)
        grad_logits = probs * (-grad_logp[:, None])
        grad_logits[rows, actions] += grad_logp
        grad_logits -= self.entropy_coef * losses.entropy_grad(logits)
        self.model.policy.zero_grads()
        self.model.policy.backward(grad_logits)
        self._policy_opt.clip_grads(self.max_grad_norm)
        self._policy_opt.step()

        # One value-regression step.
        values = self.model.value.forward(obs)[:, 0]
        value_loss, grad_values = losses.mse(values, targets)
        self.model.value.zero_grads()
        self.model.value.backward(self.value_coef * grad_values[:, None])
        self._value_opt.clip_grads(self.max_grad_norm)
        self._value_opt.step()

        policy_loss = float(-(advantages * log_probs[rows, actions]).mean())
        return {
            "policy_loss": policy_loss,
            "value_loss": float(value_loss),
            "entropy": float(losses.entropy(logits).mean()),
            "trained_steps": float(batch),
        }

    def _bootstrap_value(self, fragment: Dict[str, np.ndarray]) -> float:
        if bool(np.asarray(fragment["done"])[-1]):
            return 0.0
        last_next = flatten_observations(np.asarray(fragment["next_obs"])[-1:])
        return float(self.model.value.forward(last_next)[0, 0])
