"""A2C agent: softmax sampling; no extras needed (the learner recomputes
values with its own, identical-version weights — the round is lock-step)."""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from ...api.agent import Agent
from ...api.algorithm import Algorithm
from ...api.environment import Environment
from ...api.registry import register_agent
from ...nn import losses
from ..rollout import flatten_observations


@register_agent("a2c")
class A2CAgent(Agent):
    def __init__(
        self,
        algorithm: Algorithm,
        environment: Environment,
        config: Optional[Dict[str, Any]] = None,
    ):
        super().__init__(algorithm, environment, config)
        self._rng = np.random.default_rng(self.config.get("seed"))

    def infer_action(self, observation: Any) -> Tuple[int, Dict[str, Any]]:
        flat = flatten_observations(np.asarray(observation)[None])
        logits = self.algorithm.model.policy.forward(flat)
        return int(losses.categorical_sample(logits, self._rng)[0]), {}
