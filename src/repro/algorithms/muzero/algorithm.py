"""MuZero training: K-step unrolled model learning.

Explorers record, for every step, the MCTS visit distribution and root
value alongside the transition.  The learner cuts trajectories into
windows, then trains the three networks jointly by unrolling the dynamics
network K steps from a real observation and regressing:

* policy logits at every unroll step -> the recorded MCTS policies,
* values -> n-step bootstrapped returns (bootstrap = recorded root value),
* predicted rewards -> observed rewards.

Gradients flow back through the unroll (dynamics applied K times); as in
the paper, the gradient entering each unrolled latent is scaled by 1/2 to
keep deep unrolls stable.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional

import numpy as np

from ...api.algorithm import Algorithm
from ...api.registry import register_algorithm
from ...nn import Adam, losses
from ..rollout import flatten_observations
from .model import MuZeroModel


@register_algorithm("muzero")
class MuZeroAlgorithm(Algorithm):
    """Config: ``unroll_steps`` (3), ``td_steps`` (5), ``gamma`` (0.997),
    ``batch_size`` (32), ``buffer_windows`` (2000), ``learn_start`` (64
    windows), ``train_every`` (16 new windows), ``lr`` (1e-3),
    ``value_coef`` (0.25), ``reward_coef`` (1.0), ``broadcast_every`` (2),
    ``latent_grad_scale`` (0.5), ``seed``."""

    on_policy = False
    broadcast_mode = "all"

    def __init__(self, model: MuZeroModel, config: Optional[Dict[str, Any]] = None):
        super().__init__(model, config)
        cfg = self.config
        self.unroll_steps = int(cfg.get("unroll_steps", 3))
        self.td_steps = int(cfg.get("td_steps", 5))
        self.gamma = float(cfg.get("gamma", 0.997))
        self.batch_size = int(cfg.get("batch_size", 32))
        self.learn_start = int(cfg.get("learn_start", 64))
        self.train_every = int(cfg.get("train_every", 16))
        self.value_coef = float(cfg.get("value_coef", 0.25))
        self.reward_coef = float(cfg.get("reward_coef", 1.0))
        self.broadcast_every = int(cfg.get("broadcast_every", 2))
        self.latent_grad_scale = float(cfg.get("latent_grad_scale", 0.5))
        self._windows: Deque[Dict[str, np.ndarray]] = deque(
            maxlen=int(cfg.get("buffer_windows", 2000))
        )
        self._pending = 0
        self._rng = np.random.default_rng(cfg.get("seed"))
        params = (
            self.model.representation.params
            + self.model.dynamics.params
            + self.model.prediction.params
        )
        grads = (
            self.model.representation.grads
            + self.model.dynamics.grads
            + self.model.prediction.grads
        )
        self._optimizer = Adam(params, grads, lr=float(cfg.get("lr", 1e-3)))

    # -- data path -----------------------------------------------------------
    def prepare_data(self, rollout: Dict[str, Any], source: str = "") -> None:
        """Cut a fragment into unroll windows with precomputed targets."""
        self.note_consumed_sources([source] if source else [])
        steps = len(rollout["reward"])
        if steps == 0:
            return
        obs = flatten_observations(rollout["obs"])
        actions = np.asarray(rollout["action"], dtype=np.int64)
        rewards = np.asarray(rollout["reward"], dtype=np.float64)
        dones = np.asarray(rollout["done"], dtype=np.float64)
        policies = np.asarray(rollout["mcts_policy"], dtype=np.float64)
        root_values = np.asarray(rollout["root_value"], dtype=np.float64)

        value_targets = self._n_step_targets(rewards, dones, root_values)
        K = self.unroll_steps
        for start in range(0, steps - K):
            window_dones = dones[start : start + K]
            if np.any(window_dones):
                continue  # keep unrolls inside one episode
            self._windows.append(
                {
                    "obs": obs[start],
                    "actions": actions[start : start + K],
                    "rewards": rewards[start : start + K],
                    "policies": policies[start : start + K + 1],
                    "values": value_targets[start : start + K + 1],
                }
            )
            self._pending += 1

    def _n_step_targets(
        self, rewards: np.ndarray, dones: np.ndarray, root_values: np.ndarray
    ) -> np.ndarray:
        """z_t = sum_{i<n} gamma^i r_{t+i} + gamma^n root_value_{t+n}."""
        steps = len(rewards)
        targets = np.zeros(steps, dtype=np.float64)
        for t in range(steps):
            value = 0.0
            discount = 1.0
            for i in range(self.td_steps):
                if t + i >= steps:
                    break
                value += discount * rewards[t + i]
                discount *= self.gamma
                if dones[t + i]:
                    discount = 0.0
                    break
            bootstrap_index = t + self.td_steps
            if discount > 0 and bootstrap_index < steps:
                value += discount * root_values[bootstrap_index]
            targets[t] = value
        return targets

    def ready_to_train(self) -> bool:
        return (
            len(self._windows) >= self.learn_start
            and self._pending >= self.train_every
        )

    def staged_steps(self) -> int:
        return self._pending

    # -- training ---------------------------------------------------------------
    def _train(self) -> Dict[str, float]:
        self._pending = max(0, self._pending - self.train_every)
        indices = self._rng.integers(len(self._windows), size=self.batch_size)
        batch = [self._windows[int(i)] for i in indices]
        K = self.unroll_steps
        B = len(batch)
        A = self.model.num_actions

        obs = np.stack([w["obs"] for w in batch])
        actions = np.stack([w["actions"] for w in batch])  # (B, K)
        rewards = np.stack([w["rewards"] for w in batch])  # (B, K)
        policies = np.stack([w["policies"] for w in batch])  # (B, K+1, A)
        values = np.stack([w["values"] for w in batch])  # (B, K+1)

        # ---- forward, storing every network input ----
        latents: List[np.ndarray] = [self.model.represent(obs)]
        dyn_inputs: List[np.ndarray] = []
        reward_preds: List[np.ndarray] = []
        pred_outs: List[np.ndarray] = []
        for k in range(K):
            dyn_in = self.model.dynamics_input(latents[k], actions[:, k])
            dyn_inputs.append(dyn_in)
            out = self.model.dynamics.forward(dyn_in)
            latents.append(out[:, : self.model.latent_dim])
            reward_preds.append(out[:, self.model.latent_dim])
        for k in range(K + 1):
            pred_outs.append(self.model.prediction.forward(latents[k]))

        # ---- losses and output gradients per step ----
        policy_losses, value_losses, reward_losses = [], [], []
        pred_grads: List[np.ndarray] = []
        scale = 1.0 / (K + 1)
        for k in range(K + 1):
            logits = pred_outs[k][:, :A]
            value_pred = pred_outs[k][:, A]
            log_probs = losses.log_softmax(logits)
            policy_losses.append(float(-(policies[:, k] * log_probs).sum(axis=1).mean()))
            value_losses.append(float(np.mean((value_pred - values[:, k]) ** 2)))
            grad_logits = (losses.softmax(logits) - policies[:, k]) / B * scale
            grad_value = 2.0 * (value_pred - values[:, k]) / B * self.value_coef * scale
            pred_grads.append(
                np.concatenate([grad_logits, grad_value[:, None]], axis=1)
            )
        reward_grads: List[np.ndarray] = []
        for k in range(K):
            diff = reward_preds[k] - rewards[:, k]
            reward_losses.append(float(np.mean(diff**2)))
            reward_grads.append(2.0 * diff / B * self.reward_coef * scale)

        # ---- backward in reverse unroll order ----
        # The Sequential caches hold only the *last* forward, so each step
        # re-forwards with its stored input immediately before backward.
        self.model.representation.zero_grads()
        self.model.dynamics.zero_grads()
        self.model.prediction.zero_grads()
        grad_latent = np.zeros_like(latents[K])
        for k in range(K, -1, -1):
            self.model.prediction.forward(latents[k])
            grad_latent += self.model.prediction.backward(pred_grads[k])
            if k > 0:
                self.model.dynamics.forward(dyn_inputs[k - 1])
                grad_dyn_out = np.concatenate(
                    [
                        grad_latent * self.latent_grad_scale,
                        reward_grads[k - 1][:, None],
                    ],
                    axis=1,
                )
                grad_input = self.model.dynamics.backward(grad_dyn_out)
                grad_latent = grad_input[:, : self.model.latent_dim]
        self.model.representation.forward(obs)
        self.model.representation.backward(grad_latent)

        self._optimizer.clip_grads(5.0)
        self._optimizer.step()
        return {
            "policy_loss": float(np.mean(policy_losses)),
            "value_loss": float(np.mean(value_losses)),
            "reward_loss": float(np.mean(reward_losses)),
            "trained_steps": float(B),
        }
