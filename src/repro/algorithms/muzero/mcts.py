"""Monte-Carlo tree search over the learned model (pUCT, as in MuZero).

Search never touches the real environment: children are expanded with the
dynamics network, leaves evaluated with the prediction network, and values
backed up along the path with discounting.  Dirichlet noise at the root
keeps self-play exploratory.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...nn import losses
from .model import MuZeroModel


class Node:
    """One search node: a latent state plus per-action child statistics."""

    __slots__ = (
        "latent",
        "reward",
        "prior",
        "children",
        "visit_count",
        "value_sum",
    )

    def __init__(self, latent: Optional[np.ndarray], reward: float, prior: float):
        self.latent = latent
        self.reward = reward
        self.prior = prior
        self.children: Dict[int, "Node"] = {}
        self.visit_count = 0
        self.value_sum = 0.0

    @property
    def expanded(self) -> bool:
        return bool(self.children)

    def value(self) -> float:
        if self.visit_count == 0:
            return 0.0
        return self.value_sum / self.visit_count


class _MinMax:
    """Normalizes backed-up values into [0, 1] for the pUCT score."""

    def __init__(self):
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def update(self, value: float) -> None:
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def normalize(self, value: float) -> float:
        if self.maximum > self.minimum:
            return (value - self.minimum) / (self.maximum - self.minimum)
        return value


class MCTS:
    """pUCT search.

    Parameters: ``num_simulations`` (paper MuZero uses 50 on Atari; default
    16 keeps CPU search usable), ``gamma``, ``c1``/``c2`` (pUCT constants),
    ``dirichlet_alpha``/``exploration_fraction`` (root noise).
    """

    def __init__(
        self,
        model: MuZeroModel,
        *,
        num_simulations: int = 16,
        gamma: float = 0.997,
        c1: float = 1.25,
        c2: float = 19_652.0,
        dirichlet_alpha: float = 0.3,
        exploration_fraction: float = 0.25,
        rng: Optional[np.random.Generator] = None,
    ):
        self.model = model
        self.num_simulations = num_simulations
        self.gamma = gamma
        self.c1 = c1
        self.c2 = c2
        self.dirichlet_alpha = dirichlet_alpha
        self.exploration_fraction = exploration_fraction
        self._rng = rng or np.random.default_rng()

    # -- public -------------------------------------------------------------
    def run(self, observation: np.ndarray, add_noise: bool = True) -> Tuple[np.ndarray, float]:
        """Search from ``observation``; returns (visit distribution, root value)."""
        latent = self.model.represent(observation[None])[0]
        logits, value = self.model.predict_latent(latent[None])
        root = Node(latent, reward=0.0, prior=1.0)
        self._expand(root, logits[0])
        if add_noise:
            self._add_root_noise(root)

        min_max = _MinMax()
        for _ in range(self.num_simulations):
            self._simulate(root, min_max)

        visits = np.array(
            [
                root.children[a].visit_count if a in root.children else 0
                for a in range(self.model.num_actions)
            ],
            dtype=np.float64,
        )
        total = visits.sum()
        policy = visits / total if total > 0 else np.full_like(visits, 1.0 / len(visits))
        return policy, root.value() if root.visit_count else float(value[0])

    # -- internals ----------------------------------------------------------
    def _simulate(self, root: Node, min_max: _MinMax) -> None:
        node = root
        path: List[Node] = [root]
        actions: List[int] = []
        while node.expanded:
            action, node = self._select_child(node, min_max)
            path.append(node)
            actions.append(action)

        parent = path[-2]
        leaf = path[-1]
        next_latent, reward = self.model.step_latent(
            parent.latent[None], np.array([actions[-1]])
        )
        leaf.latent = next_latent[0]
        leaf.reward = float(reward[0])
        logits, value = self.model.predict_latent(leaf.latent[None])
        self._expand(leaf, logits[0])
        self._backup(path, float(value[0]), min_max)

    def _expand(self, node: Node, logits: np.ndarray) -> None:
        priors = losses.softmax(logits[None])[0]
        for action in range(self.model.num_actions):
            node.children[action] = Node(None, reward=0.0, prior=float(priors[action]))

    def _add_root_noise(self, root: Node) -> None:
        noise = self._rng.dirichlet([self.dirichlet_alpha] * self.model.num_actions)
        fraction = self.exploration_fraction
        for action, child in root.children.items():
            child.prior = child.prior * (1 - fraction) + noise[action] * fraction

    def _select_child(self, node: Node, min_max: _MinMax) -> Tuple[int, Node]:
        best_score = -float("inf")
        best_action = 0
        best_child: Optional[Node] = None
        for action, child in node.children.items():
            score = self._ucb_score(node, child, min_max)
            if score > best_score:
                best_score = score
                best_action = action
                best_child = child
        assert best_child is not None
        return best_action, best_child

    def _ucb_score(self, parent: Node, child: Node, min_max: _MinMax) -> float:
        exploration = (
            self.c1 + math.log((parent.visit_count + self.c2 + 1) / self.c2)
        ) * math.sqrt(parent.visit_count) / (child.visit_count + 1)
        prior_score = exploration * child.prior
        if child.visit_count > 0:
            value_score = min_max.normalize(
                child.reward + self.gamma * child.value()
            )
        else:
            # First-play urgency: an unvisited child starts from the
            # parent's running value rather than 0.  With all-positive
            # environment rewards a 0 default starves siblings of the first
            # child visited (its backed-up value only grows as its subtree
            # deepens); the parent average keeps the comparison fair.
            value_score = min_max.normalize(parent.value())
        return prior_score + value_score

    def _backup(self, path: List[Node], leaf_value: float, min_max: _MinMax) -> None:
        value = leaf_value
        for node in reversed(path):
            node.value_sum += value
            node.visit_count += 1
            min_max.update(node.reward + self.gamma * node.value())
            value = node.reward + self.gamma * value
