"""MuZero agent: acts by planning with MCTS over the learned model.

Each step runs a search from the current observation, samples an action
from the visit-count distribution (with a temperature that anneals to
greedy), and records the visit distribution and root value — the learner's
policy and value targets.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from ...api.agent import Agent
from ...api.algorithm import Algorithm
from ...api.environment import Environment
from ...api.registry import register_agent
from ..rollout import flatten_observations
from .mcts import MCTS


@register_agent("muzero")
class MuZeroAgent(Agent):
    """Config: ``num_simulations`` (16), ``temperature`` (1.0),
    ``temperature_decay_steps`` (5_000 — anneals toward greedy), ``seed``."""

    def __init__(
        self,
        algorithm: Algorithm,
        environment: Environment,
        config: Optional[Dict[str, Any]] = None,
    ):
        super().__init__(algorithm, environment, config)
        self._rng = np.random.default_rng(self.config.get("seed"))
        self.temperature = float(self.config.get("temperature", 1.0))
        self.temperature_decay_steps = int(
            self.config.get("temperature_decay_steps", 5_000)
        )
        self.mcts = MCTS(
            self.algorithm.model,
            num_simulations=int(self.config.get("num_simulations", 16)),
            gamma=float(getattr(self.algorithm, "gamma", 0.997)),
            rng=self._rng,
        )

    def _current_temperature(self) -> float:
        fraction = min(self.total_steps / max(self.temperature_decay_steps, 1), 1.0)
        return self.temperature * (1.0 - fraction) + 0.1 * fraction

    def infer_action(self, observation: Any) -> Tuple[int, Dict[str, Any]]:
        flat = flatten_observations(np.asarray(observation)[None])[0]
        policy, root_value = self.mcts.run(flat, add_noise=True)
        temperature = self._current_temperature()
        if temperature <= 0.05:
            action = int(policy.argmax())
        else:
            heated = policy ** (1.0 / temperature)
            heated = heated / heated.sum()
            action = int(self._rng.choice(len(policy), p=heated))
        return action, {"mcts_policy": policy, "root_value": float(root_value)}
