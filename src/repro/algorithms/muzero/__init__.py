"""MuZero: model-based planning with a learned model (Schrittwieser et al.,
2020) — the model-based member of the paper's algorithm zoo (§4.2)."""

from .model import MuZeroModel
from .mcts import MCTS, Node
from .algorithm import MuZeroAlgorithm
from .agent import MuZeroAgent

__all__ = ["MuZeroModel", "MCTS", "Node", "MuZeroAlgorithm", "MuZeroAgent"]
