"""MuZero's three networks.

* representation  h(observation) -> latent state
* dynamics        g(latent, action) -> (next latent, reward)
* prediction      f(latent) -> (policy logits, value)

All are MLPs over a shared latent width.  The dynamics input is the latent
concatenated with a one-hot action; its output head splits into the next
latent and a scalar reward.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ...api.model import Model
from ...api.registry import register_model
from ...nn import Sequential, mlp


@register_model("muzero")
class MuZeroModel(Model):
    """Config: ``obs_dim``, ``num_actions``, ``latent_dim`` (32),
    ``hidden_sizes`` ([64]), ``seed``."""

    def __init__(self, config: Optional[Dict[str, Any]] = None):
        super().__init__(config)
        obs_dim = int(self.config["obs_dim"])
        num_actions = int(self.config["num_actions"])
        latent_dim = int(self.config.get("latent_dim", 32))
        hidden = list(self.config.get("hidden_sizes", [64]))
        rng = np.random.default_rng(self.config.get("seed"))

        self.num_actions = num_actions
        self.latent_dim = latent_dim
        self.representation: Sequential = mlp(
            [obs_dim] + hidden + [latent_dim], activation="tanh", rng=rng
        )
        # Dynamics outputs [next_latent | reward].
        self.dynamics: Sequential = mlp(
            [latent_dim + num_actions] + hidden + [latent_dim + 1],
            activation="tanh",
            rng=rng,
        )
        # Prediction outputs [policy logits | value].
        self.prediction: Sequential = mlp(
            [latent_dim] + hidden + [num_actions + 1], activation="tanh", rng=rng
        )

    # -- functional API ----------------------------------------------------
    def represent(self, observations: np.ndarray) -> np.ndarray:
        return self.representation.forward(observations)

    def predict_latent(self, latents: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        out = self.prediction.forward(latents)
        return out[:, : self.num_actions], out[:, self.num_actions]

    def step_latent(
        self, latents: np.ndarray, actions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Apply the learned dynamics; returns (next latents, rewards)."""
        inputs = self.dynamics_input(latents, actions)
        out = self.dynamics.forward(inputs)
        return out[:, : self.latent_dim], out[:, self.latent_dim]

    def dynamics_input(self, latents: np.ndarray, actions: np.ndarray) -> np.ndarray:
        one_hot = np.zeros((len(latents), self.num_actions))
        one_hot[np.arange(len(latents)), np.asarray(actions, dtype=np.int64)] = 1.0
        return np.concatenate([latents, one_hot], axis=1)

    def forward(self, observation: np.ndarray):
        """Model interface: initial inference (latent, logits, value)."""
        latents = self.represent(observation)
        logits, values = self.predict_latent(latents)
        return latents, logits, values

    # -- weights ------------------------------------------------------------
    def get_weights(self) -> List[np.ndarray]:
        return (
            self.representation.get_weights()
            + self.dynamics.get_weights()
            + self.prediction.get_weights()
        )

    def set_weights(self, weights: List[np.ndarray]) -> None:
        first = len(self.representation.params)
        second = first + len(self.dynamics.params)
        self.representation.set_weights(weights[:first])
        self.dynamics.set_weights(weights[first:second])
        self.prediction.set_weights(weights[second:])
