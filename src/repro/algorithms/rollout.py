"""Rollout containers and helpers shared across the algorithm zoo.

A rollout is a dict of equally-long stacked NumPy arrays keyed by field
(``obs``, ``action``, ``reward``, ``next_obs``, ``done``, plus
algorithm-specific extras such as ``logp`` and ``value``).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np


def rollout_length(rollout: Dict[str, np.ndarray]) -> int:
    """Number of rollout steps (0 for an empty rollout)."""
    if not rollout:
        return 0
    return len(next(iter(rollout.values())))


def rollout_nbytes(rollout: Dict[str, np.ndarray]) -> int:
    """Total payload bytes of all fields."""
    return int(sum(np.asarray(value).nbytes for value in rollout.values()))


def concat_rollouts(rollouts: Sequence[Dict[str, np.ndarray]]) -> Dict[str, np.ndarray]:
    """Concatenate rollouts along the step axis (all must share fields)."""
    rollouts = [r for r in rollouts if rollout_length(r) > 0]
    if not rollouts:
        return {}
    keys = set(rollouts[0])
    for rollout in rollouts[1:]:
        if set(rollout) != keys:
            raise ValueError(
                f"cannot concat rollouts with differing fields: "
                f"{sorted(keys)} vs {sorted(rollout)}"
            )
    return {
        key: np.concatenate([np.asarray(rollout[key]) for rollout in rollouts])
        for key in keys
    }


def discounted_returns(
    rewards: np.ndarray, dones: np.ndarray, gamma: float, bootstrap: float = 0.0
) -> np.ndarray:
    """Backward-accumulated discounted returns, reset at episode boundaries."""
    returns = np.zeros(len(rewards), dtype=np.float64)
    running = float(bootstrap)
    for index in reversed(range(len(rewards))):
        running = rewards[index] + gamma * running * (1.0 - float(dones[index]))
        returns[index] = running
    return returns


def flatten_observations(observations: np.ndarray) -> np.ndarray:
    """Flatten per-step observations to float vectors.

    ``uint8`` image frames are scaled to [0, 1]; everything else is cast to
    float64 unchanged.  Output shape is (steps, features).
    """
    array = np.asarray(observations)
    if array.dtype == np.uint8:
        array = array.astype(np.float64) / 255.0
    else:
        array = array.astype(np.float64)
    return array.reshape(array.shape[0], -1)


def minibatch_indices(
    total: int, minibatch_size: int, rng: np.random.Generator
) -> List[np.ndarray]:
    """Shuffled index chunks covering [0, total) once."""
    if minibatch_size < 1:
        raise ValueError("minibatch_size must be >= 1")
    order = rng.permutation(total)
    return [
        order[start : start + minibatch_size]
        for start in range(0, total, minibatch_size)
    ]
