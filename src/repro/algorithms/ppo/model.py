"""Actor-critic model: policy and value networks (shared by PPO & IMPALA)."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ...api.model import Model
from ...api.registry import register_model
from ...nn import Sequential, mlp


@register_model("actor_critic")
class ActorCriticModel(Model):
    """Separate policy (obs → logits) and value (obs → scalar) MLPs.

    Config: ``obs_dim``, ``num_actions``, ``hidden_sizes`` ([64, 64]),
    ``seed``.
    """

    def __init__(self, config: Optional[Dict[str, Any]] = None):
        super().__init__(config)
        obs_dim = int(self.config["obs_dim"])
        num_actions = int(self.config["num_actions"])
        hidden = list(self.config.get("hidden_sizes", [64, 64]))
        rng = np.random.default_rng(self.config.get("seed"))
        self.policy: Sequential = mlp(
            [obs_dim] + hidden + [num_actions], activation="tanh", rng=rng
        )
        self.value: Sequential = mlp([obs_dim] + hidden + [1], activation="tanh", rng=rng)
        self.num_actions = num_actions

    def forward(self, observation: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Returns (logits, values) for a batch of flat observations."""
        logits = self.policy.forward(observation)
        values = self.value.forward(observation)[:, 0]
        return logits, values

    def get_weights(self) -> List[np.ndarray]:
        return self.policy.get_weights() + self.value.get_weights()

    def set_weights(self, weights: List[np.ndarray]) -> None:
        split = len(self.policy.params)
        self.policy.set_weights(weights[:split])
        self.value.set_weights(weights[split:])
