"""PPO agent: samples from the softmax policy, records logp and value."""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from ...api.agent import Agent
from ...api.algorithm import Algorithm
from ...api.environment import Environment
from ...api.registry import register_agent
from ...nn import losses
from ..rollout import flatten_observations


@register_agent("ppo")
class PPOAgent(Agent):
    """On-policy sampling agent for actor-critic algorithms."""

    def __init__(
        self,
        algorithm: Algorithm,
        environment: Environment,
        config: Optional[Dict[str, Any]] = None,
    ):
        super().__init__(algorithm, environment, config)
        self._rng = np.random.default_rng(self.config.get("seed"))

    def infer_action(self, observation: Any) -> Tuple[int, Dict[str, Any]]:
        flat = flatten_observations(np.asarray(observation)[None])
        logits, values = self.algorithm.predict(flat)
        action = int(losses.categorical_sample(logits, self._rng)[0])
        logp = float(losses.log_softmax(logits)[0, action])
        return action, {"logp": logp, "value": float(values[0])}
