"""Generalized advantage estimation (Schulman et al., 2016)."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def generalized_advantage_estimation(
    rewards: np.ndarray,
    values: np.ndarray,
    dones: np.ndarray,
    bootstrap_value: float,
    gamma: float = 0.99,
    lam: float = 0.95,
) -> Tuple[np.ndarray, np.ndarray]:
    """GAE(γ, λ); returns (advantages, value_targets).

    ``values[t]`` is V(s_t) under the behaviour policy; ``bootstrap_value``
    is V(s_T) for the state following the fragment's last step (ignored when
    that step terminated).  With λ=1 the advantage reduces to the discounted
    return minus the value baseline; with λ=0 to the one-step TD error.
    """
    rewards = np.asarray(rewards, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    dones = np.asarray(dones, dtype=np.float64)
    if not (len(rewards) == len(values) == len(dones)):
        raise ValueError("rewards, values, dones must have equal length")
    steps = len(rewards)
    advantages = np.zeros(steps, dtype=np.float64)
    next_value = float(bootstrap_value)
    running = 0.0
    for t in reversed(range(steps)):
        non_terminal = 1.0 - dones[t]
        delta = rewards[t] + gamma * next_value * non_terminal - values[t]
        running = delta + gamma * lam * non_terminal * running
        advantages[t] = running
        next_value = values[t]
    return advantages, advantages + values
