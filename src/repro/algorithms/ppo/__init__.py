"""PPO: actor-critic, on-policy (Schulman et al., 2017)."""

from .model import ActorCriticModel
from .gae import generalized_advantage_estimation
from .algorithm import PPOAlgorithm
from .agent import PPOAgent

__all__ = [
    "ActorCriticModel",
    "generalized_advantage_estimation",
    "PPOAlgorithm",
    "PPOAgent",
]
