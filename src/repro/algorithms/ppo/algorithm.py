"""PPO training logic.

On-policy: the learner waits to collect rollouts from *all* explorers before
a training iteration, and every explorer then waits for the fresh weights
(§2.1, Fig. 1a).  Even so, XingTian accelerates PPO because fast explorers'
rollout transmission overlaps with slow explorers' environment interaction
(§3.2.1) — nothing here needs to know that; it falls out of the channel.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ...api.algorithm import Algorithm
from ...api.registry import register_algorithm
from ...nn import Adam, losses
from ..rollout import flatten_observations, minibatch_indices, rollout_length
from .gae import generalized_advantage_estimation
from .model import ActorCriticModel


@register_algorithm("ppo")
class PPOAlgorithm(Algorithm):
    """Clipped-surrogate PPO with GAE.

    Config: ``num_explorers`` (required — defines a full collection round),
    ``clip_eps`` (0.2), ``epochs`` (4), ``minibatch_size`` (128), ``gamma``
    (0.99), ``lam`` (0.95), ``lr`` (3e-4), ``entropy_coef`` (0.01),
    ``value_coef`` (0.5), ``max_grad_norm`` (0.5), ``seed``.
    """

    on_policy = True
    broadcast_mode = "all"
    broadcast_every = 1

    def __init__(self, model: ActorCriticModel, config: Optional[Dict[str, Any]] = None):
        super().__init__(model, config)
        cfg = self.config
        self.num_explorers = int(cfg.get("num_explorers", 1))
        self.clip_eps = float(cfg.get("clip_eps", 0.2))
        self.epochs = int(cfg.get("epochs", 4))
        self.minibatch_size = int(cfg.get("minibatch_size", 128))
        self.gamma = float(cfg.get("gamma", 0.99))
        self.lam = float(cfg.get("lam", 0.95))
        self.entropy_coef = float(cfg.get("entropy_coef", 0.01))
        self.value_coef = float(cfg.get("value_coef", 0.5))
        self.max_grad_norm = float(cfg.get("max_grad_norm", 0.5))
        self._rng = np.random.default_rng(cfg.get("seed"))
        self._staged: Dict[str, Dict[str, np.ndarray]] = {}
        self._policy_opt = Adam(
            self.model.policy.params, self.model.policy.grads, lr=float(cfg.get("lr", 3e-4))
        )
        self._value_opt = Adam(
            self.model.value.params, self.model.value.grads, lr=float(cfg.get("lr", 3e-4))
        )

    # -- data path -----------------------------------------------------------
    def prepare_data(self, rollout: Dict[str, Any], source: str = "") -> None:
        """Stage one explorer's fragment; a round completes when all arrive.

        A second fragment from the same source before the round closes
        replaces the first (cannot happen in the synchronous regime, but
        keeps the invariant under test harnesses).
        """
        self._staged[source] = rollout

    def ready_to_train(self) -> bool:
        return len(self._staged) >= self.num_explorers

    def staged_steps(self) -> int:
        return sum(rollout_length(r) for r in self._staged.values())

    # -- training ---------------------------------------------------------------
    def _train(self) -> Dict[str, float]:
        sources = list(self._staged)
        fragments = [self._staged[source] for source in sources]
        self._staged.clear()
        self.note_consumed_sources(sources)

        obs_list, act_list, logp_list, adv_list, target_list = [], [], [], [], []
        for fragment in fragments:
            obs = flatten_observations(fragment["obs"])
            rewards = np.asarray(fragment["reward"], dtype=np.float64)
            dones = np.asarray(fragment["done"], dtype=np.float64)
            values = np.asarray(fragment["value"], dtype=np.float64)
            bootstrap = self._bootstrap_value(fragment)
            advantages, targets = generalized_advantage_estimation(
                rewards, values, dones, bootstrap, self.gamma, self.lam
            )
            obs_list.append(obs)
            act_list.append(np.asarray(fragment["action"], dtype=np.int64))
            logp_list.append(np.asarray(fragment["logp"], dtype=np.float64))
            adv_list.append(advantages)
            target_list.append(targets)

        obs = np.concatenate(obs_list)
        actions = np.concatenate(act_list)
        behaviour_logp = np.concatenate(logp_list)
        advantages = np.concatenate(adv_list)
        targets = np.concatenate(target_list)
        advantages = (advantages - advantages.mean()) / (advantages.std() + 1e-8)

        policy_losses: List[float] = []
        value_losses: List[float] = []
        for _ in range(self.epochs):
            for indices in minibatch_indices(len(obs), self.minibatch_size, self._rng):
                p_loss, v_loss = self._train_minibatch(
                    obs[indices],
                    actions[indices],
                    behaviour_logp[indices],
                    advantages[indices],
                    targets[indices],
                )
                policy_losses.append(p_loss)
                value_losses.append(v_loss)
        return {
            "policy_loss": float(np.mean(policy_losses)),
            "value_loss": float(np.mean(value_losses)),
            "trained_steps": float(len(obs)),
        }

    def _bootstrap_value(self, fragment: Dict[str, np.ndarray]) -> float:
        """V(s_T) for the state after the fragment's final step."""
        if bool(np.asarray(fragment["done"])[-1]):
            return 0.0
        last_next = flatten_observations(np.asarray(fragment["next_obs"])[-1:])
        return float(self.model.value.forward(last_next)[0, 0])

    def _train_minibatch(
        self,
        obs: np.ndarray,
        actions: np.ndarray,
        behaviour_logp: np.ndarray,
        advantages: np.ndarray,
        targets: np.ndarray,
    ) -> Tuple[float, float]:
        batch = len(obs)
        rows = np.arange(batch)

        # Policy: clipped surrogate + entropy bonus.
        logits = self.model.policy.forward(obs)
        log_probs = losses.log_softmax(logits)
        logp = log_probs[rows, actions]
        ratio = np.exp(logp - behaviour_logp)
        clipped = np.clip(ratio, 1.0 - self.clip_eps, 1.0 + self.clip_eps)
        surrogate = np.minimum(ratio * advantages, clipped * advantages)
        policy_loss = -float(surrogate.mean())

        # d(-surrogate)/d(logp): active only where the unclipped branch wins.
        unclipped_active = (ratio * advantages) <= (clipped * advantages) + 1e-12
        grad_logp = np.where(unclipped_active, -ratio * advantages, 0.0) / batch
        probs = losses.softmax(logits)
        grad_logits = probs * (-grad_logp[:, None])
        grad_logits[rows, actions] += grad_logp
        grad_logits -= self.entropy_coef * losses.entropy_grad(logits)
        self.model.policy.zero_grads()
        self.model.policy.backward(grad_logits)
        self._policy_opt.clip_grads(self.max_grad_norm)
        self._policy_opt.step()

        # Value: MSE to GAE targets.
        values = self.model.value.forward(obs)[:, 0]
        value_loss, grad_values = losses.mse(values, targets)
        self.model.value.zero_grads()
        self.model.value.backward(self.value_coef * grad_values[:, None])
        self._value_opt.clip_grads(self.max_grad_norm)
        self._value_opt.step()
        return policy_loss, value_loss
