"""The DRL algorithm zoo (paper §4.2).

Covers all three model-free families the paper classifies: value-based
(DQN), actor-critic on-policy (PPO) and actor-critic off-policy (IMPALA,
via V-trace), plus DDPG for continuous control.  Importing this package
registers every algorithm with the global registry so configuration files
can name them.
"""

from .rollout import (
    concat_rollouts,
    discounted_returns,
    flatten_observations,
    rollout_length,
    rollout_nbytes,
)
from .dqn import DQNAgent, DQNAlgorithm, QNetworkModel
from .ppo import PPOAgent, PPOAlgorithm, ActorCriticModel
from .impala import ImpalaAgent, ImpalaAlgorithm
from .ddpg import DDPGAgent, DDPGAlgorithm, DDPGModel
from .a2c import A2CAgent, A2CAlgorithm
from .muzero import MuZeroAgent, MuZeroAlgorithm, MuZeroModel

__all__ = [
    "concat_rollouts",
    "discounted_returns",
    "flatten_observations",
    "rollout_length",
    "rollout_nbytes",
    "DQNAgent",
    "DQNAlgorithm",
    "QNetworkModel",
    "PPOAgent",
    "PPOAlgorithm",
    "ActorCriticModel",
    "ImpalaAgent",
    "ImpalaAlgorithm",
    "DDPGAgent",
    "DDPGAlgorithm",
    "DDPGModel",
    "A2CAgent",
    "A2CAlgorithm",
    "MuZeroAgent",
    "MuZeroAlgorithm",
    "MuZeroModel",
]
