"""One-call run API: build a cluster from a config, run it, return results.

``XingTianSession`` is what the examples and benchmarks use::

    config = single_machine_config("ppo", "CartPole", "actor_critic",
                                   explorers=4,
                                   stop=StopCondition(total_trained_steps=20_000))
    result = XingTianSession(config).run()
    print(result.throughput_steps_per_s, result.average_return)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .cluster import Cluster, build_cluster
from .core.config import XingTianConfig
from . import algorithms as _algorithms  # noqa: F401 - populate the registry
from . import envs as _envs  # noqa: F401 - populate the registry


@dataclass
class RunResult:
    """Everything the paper's figures need from one run."""

    elapsed_s: float
    shutdown_reason: str
    total_env_steps: int
    total_trained_steps: int
    train_sessions: int
    average_return: Optional[float]
    episode_count: int
    returns: List[float] = field(default_factory=list)
    #: learner-consumed rollout steps/s — the paper's throughput metric
    throughput_steps_per_s: float = 0.0
    #: (t, steps/s) series for throughput-over-time plots (Figs. 8-10a)
    throughput_series: List[Tuple[float, float]] = field(default_factory=list)
    #: trainer blocked-on-data time stats (Figs. 8-10b, 8c)
    mean_wait_s: float = 0.0
    wait_cdf: List[Tuple[float, float]] = field(default_factory=list)
    mean_train_s: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)
    #: ``repro.obs`` JSON snapshot when ``config.telemetry`` is set
    metrics: Dict[str, Any] = field(default_factory=dict)


class XingTianSession:
    """Owns a cluster for the duration of one run."""

    def __init__(self, config: XingTianConfig):
        config.validate()
        self.config = config
        self.cluster: Optional[Cluster] = None
        self.telemetry: Optional[Any] = None

    def run(self, poll_interval: float = 0.05) -> RunResult:
        """Start the deployment, wait for the stop condition, tear down."""
        cluster = build_cluster(self.config)
        self.cluster = cluster
        telemetry = None
        spec = self.config.telemetry
        flow = self.config.flow_control
        if flow is not None and not flow.enabled:
            flow = None
        if spec is not None and spec.enabled:
            from .obs import Telemetry

            telemetry = Telemetry.from_spec(spec)
        elif flow is not None:
            # Flow control's feedback loop reads the sampler's gauges, so a
            # flow-enabled run gets an internal telemetry pipeline even when
            # the config left telemetry off.  Spans stay disabled: only the
            # sampler/controller threads run, and RunResult.metrics stays
            # empty (the user did not ask for a snapshot).
            from .obs import Telemetry

            telemetry = Telemetry(
                sample_interval=flow.adapt_interval_s, spans=False
            )
        if telemetry is not None:
            if flow is not None:
                telemetry.enable_flow_control(flow)
            telemetry.attach_cluster(cluster)
        self.telemetry = telemetry
        supervisor = cluster.center.supervisor
        started = time.monotonic()
        cluster.start()
        if telemetry is not None:
            telemetry.start()
        try:
            while True:
                reason = cluster.center.should_stop()
                if reason is not None:
                    cluster.center.shutdown_reason = reason
                    break
                if supervisor is not None:
                    # A workhorse crash may be restartable; let the
                    # supervisor decide.  It raises TrainingFailedError
                    # only once the run is unrecoverable.
                    supervisor.check()
                else:
                    cluster.raise_worker_errors()
                time.sleep(poll_interval)
        finally:
            elapsed = time.monotonic() - started
            result = self._collect(cluster, elapsed)
            if telemetry is not None:
                telemetry.stop()  # final sample before queues drain away
            cluster.stop()
            if telemetry is not None and spec is not None and spec.enabled:
                result.metrics = telemetry.snapshot(
                    meta={"elapsed_s": round(elapsed, 6)}
                )
            if supervisor is None:
                cluster.raise_worker_errors()
        return result

    def _collect(self, cluster: Cluster, elapsed: float) -> RunResult:
        learner = cluster.learner
        collector = cluster.center.collector
        meter = learner.consumed_meter
        extra: Dict[str, float] = {}
        if cluster.center.supervisor is not None:
            extra["failures"] = float(collector.failures)
            extra["restarts"] = float(collector.restarts)
        return RunResult(
            elapsed_s=elapsed,
            shutdown_reason=cluster.center.shutdown_reason or "",
            total_env_steps=collector.total_env_steps,
            total_trained_steps=int(meter.total),
            train_sessions=learner.train_sessions,
            average_return=collector.average_return(),
            episode_count=collector.episode_count(),
            returns=collector.returns(),
            throughput_steps_per_s=meter.total / max(elapsed, 1e-9),
            throughput_series=meter.series(bucket=1.0),
            mean_wait_s=learner.wait_recorder.mean(),
            wait_cdf=learner.wait_recorder.cdf(),
            mean_train_s=learner.train_recorder.mean(),
            extra=extra,
        )


def run_config(config: XingTianConfig) -> RunResult:
    """Convenience wrapper: build, run, and tear down in one call."""
    return XingTianSession(config).run()
