"""The unified telemetry facade: registry + tracer + spans + sampler.

One :class:`Telemetry` object instruments one deployment: it owns the
:class:`~repro.obs.metrics.MetricsRegistry`, a
:class:`~repro.core.tracing.Tracer` whose sink feeds the
:class:`~repro.obs.spans.SpanAggregator` live, and the periodic
:class:`~repro.obs.sampler.TelemetrySampler`.  Sessions build one from a
:class:`~repro.core.config.TelemetrySpec`, attach it to a cluster, start it
alongside the run, and export a snapshot into ``RunResult.metrics``.

Everything is off unless a config opts in (``telemetry=TelemetrySpec()``):
endpoints and routers only pay a ``tracer is None`` check per message, and
the process-level instruments stay ``None`` so the hot paths skip them.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, TYPE_CHECKING

from ..core.tracing import Tracer
from .exporters import snapshot, snapshot_to_json, to_prometheus
from .flowcontroller import FlowController
from .metrics import MetricsRegistry
from .sampler import TelemetrySampler
from .spans import SpanAggregator, SpanRecord, SpanStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.config import FlowControlSpec, TelemetrySpec


class Telemetry:
    """Bundles the observability subsystems for one run."""

    def __init__(
        self,
        *,
        registry: Optional[MetricsRegistry] = None,
        tracer_capacity: int = 65536,
        sample_interval: float = 0.05,
        series_capacity: int = 512,
        spans: bool = True,
        max_pending_spans: int = 8192,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.spans: Optional[SpanAggregator] = (
            SpanAggregator(self.registry, max_pending=max_pending_spans)
            if spans
            else None
        )
        self.tracer = Tracer(
            capacity=tracer_capacity,
            sink=self.spans.observe if self.spans is not None else None,
        )
        self.sampler = TelemetrySampler(
            self.registry,
            interval=sample_interval,
            series_capacity=series_capacity,
        )
        self._attached: List[Any] = []
        #: telemetry-driven adaptation loop; None until
        #: :meth:`enable_flow_control` (sessions call it when the config
        #: carries a FlowControlSpec)
        self.flow_controller: Optional[FlowController] = None

    @classmethod
    def from_spec(cls, spec: "TelemetrySpec") -> "Telemetry":
        return cls(
            tracer_capacity=spec.tracer_capacity,
            sample_interval=spec.sample_interval,
            series_capacity=spec.series_capacity,
            spans=spec.spans,
            max_pending_spans=spec.max_pending_spans,
        )

    # -- wiring -------------------------------------------------------------
    def enable_flow_control(self, spec: "FlowControlSpec") -> FlowController:
        """Create the adaptation loop (call before :meth:`attach_cluster`).

        The controller shares this telemetry's registry, so it reads the
        exact gauge objects the sampler writes.
        """
        if self.flow_controller is None:
            self.flow_controller = FlowController(self.registry, spec)
        return self.flow_controller

    def attach_cluster(self, cluster: Any) -> None:
        """Instrument every broker, router, and process of a built cluster."""
        for machine in cluster.machines:
            self.attach_broker(machine.broker)
        for process in [cluster.learner, *cluster.explorers]:
            self.instrument_process(process)
        center_endpoint = getattr(cluster.center, "endpoint", None)
        if center_endpoint is not None:
            self.attach_endpoint(center_endpoint)
        data_fabric = getattr(cluster, "data_fabric", None)
        if callable(getattr(data_fabric, "link_stats", None)):
            # Wire deployments: per-socket-link gauges + the zero-copy canary.
            self.sampler.add_wire_fabric(data_fabric)
            set_fabric_tracer = getattr(data_fabric, "set_tracer", None)
            if (
                set_fabric_tracer is not None
                and getattr(data_fabric, "tracer", None) is None
            ):
                set_fabric_tracer(self.tracer)
        add_hook = getattr(cluster, "add_instrument_hook", None)
        if add_hook is not None:
            # Keep supervisor-restarted replacement processes instrumented.
            add_hook(self.instrument_process)
        cluster.telemetry = self

    def attach_broker(self, broker: Any) -> None:
        broker.router.tracer = self.tracer
        # Flow-controlled queues need the tracer too: a shed/expired header
        # must leave a terminal trace event, not a forever-pending span.
        set_tracer = getattr(broker.communicator, "set_tracer", None)
        if set_tracer is not None:
            set_tracer(self.tracer)
        self.sampler.add_broker(broker)
        if self.flow_controller is not None and getattr(broker, "flow", None):
            self.flow_controller.attach_broker(broker)

    def attach_endpoint(self, endpoint: Any) -> None:
        endpoint.tracer = self.tracer
        endpoint.attach_metrics(self.registry)
        self.sampler.add_endpoint(endpoint)
        if self.flow_controller is not None and getattr(endpoint, "flow", None):
            self.flow_controller.attach_endpoint(endpoint)

    def instrument_process(self, process: Any) -> None:
        """Instrument one explorer/learner (also used after a restart)."""
        self.attach_endpoint(process.endpoint)
        attach = getattr(process, "attach_metrics", None)
        if attach is not None:
            attach(self.registry)
        self._attached.append(process)

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        self.sampler.start()
        if self.flow_controller is not None:
            self.flow_controller.start()

    def stop(self) -> None:
        if self.flow_controller is not None:
            self.flow_controller.stop()
        self.sampler.stop()

    # -- exports ------------------------------------------------------------
    def span_stats(self) -> Optional[SpanStats]:
        return self.spans.stats() if self.spans is not None else None

    def span_records(self) -> List[SpanRecord]:
        return self.spans.records() if self.spans is not None else []

    def export_trace(self, path: str, *, process: str = "main") -> int:
        """Write the tracer ring to ``path`` as a JSONL trace file.

        The output is what ``python -m repro.obs.trace`` consumes: one
        process's contribution to a merged cross-process timeline.  Returns
        the number of events written.
        """
        from .trace.events import write_events

        events = self.tracer.events()
        write_events(path, events, process=process)
        return len(events)

    def snapshot(self, meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        merged: Dict[str, Any] = dict(meta or {})
        if self.spans is not None:
            stats = self.spans.stats()
            merged.setdefault(
                "spans",
                {
                    "matched": stats.matched,
                    "unmatched_ends": stats.unmatched_ends,
                    "evicted_starts": stats.evicted_starts,
                    "negative_durations": stats.negative_durations,
                    "terminated": dict(stats.terminated),
                },
            )
        return snapshot(self.registry, meta=merged)

    def snapshot_json(self, meta: Optional[Dict[str, Any]] = None) -> str:
        import json

        return json.dumps(self.snapshot(meta=meta), indent=2) + "\n"

    def prometheus(self) -> str:
        return to_prometheus(self.registry)


__all__ = [
    "Telemetry",
    "FlowController",
    "MetricsRegistry",
    "SpanAggregator",
    "TelemetrySampler",
    "snapshot",
    "snapshot_to_json",
    "to_prometheus",
]
