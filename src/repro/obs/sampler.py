"""Periodic telemetry sampler: queue depths, store occupancy, backpressure.

A single supervised thread (spawned through
:func:`repro.core.concurrency.spawn_thread`, like every other framework
workhorse) wakes every ``interval`` seconds and polls the registered
probes:

* **brokers** — header-queue depth, per-process ID-queue depths, object
  store occupancy (objects, bytes, outstanding refcount shares);
* **endpoints** — send-buffer backlog (sender backpressure: the workhorse
  is producing faster than the sender thread drains) and receive-buffer
  backlog (consumer lag).

Each probe lands in a :class:`~repro.obs.metrics.Gauge` with a bounded
sample series, so snapshots carry queue-depth-over-time without unbounded
growth.  A probe that raises (e.g. a queue torn down mid-sample during
shutdown) increments ``sampler_errors_total`` and the loop carries on —
sampling must never take a run down.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, List, Optional

from ..core.concurrency import make_lock, spawn_thread
from .metrics import Gauge, MetricsRegistry

Probe = Callable[[float], None]
"""A sampling callback receiving the sample timestamp."""


class TelemetrySampler:
    """Polls registered probes on a fixed interval from one thread."""

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        interval: float = 0.05,
        series_capacity: int = 512,
        clock: Callable[[], float] = time.monotonic,
        name: str = "telemetry-sampler",
    ):
        if interval <= 0:
            raise ValueError("sample interval must be positive")
        self.registry = registry
        self.interval = interval
        self.series_capacity = series_capacity
        self.name = name
        self._clock = clock
        self._probes: List[Probe] = []
        self._probes_lock = make_lock(f"{name}.probes")
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.error: Optional[BaseException] = None
        self._samples = registry.counter(
            "sampler_ticks_total", help="completed sampling sweeps"
        )
        self._errors = registry.counter(
            "sampler_errors_total", help="probes that raised during sampling"
        )

    # -- probe registration -------------------------------------------------
    def add_probe(self, probe: Probe) -> None:
        with self._probes_lock:
            self._probes.append(probe)

    def _series_gauge(self, name: str, labels, help: str) -> Gauge:
        return self.registry.gauge(
            name, labels, help=help, series_capacity=self.series_capacity
        )

    #: flow_stats keys mirrored per lane into the backpressure family
    _FLOW_STATS = (
        ("depth", "backpressure_lane_depth",
         "entries queued in one priority lane"),
        ("shed", "backpressure_shed_total",
         "oldest bulk entries dropped at the watermark (running total)"),
        ("blocked", "backpressure_blocked_total",
         "control puts that had to wait at the watermark (running total)"),
        ("block_seconds", "backpressure_block_seconds_total",
         "cumulative seconds control producers spent blocked"),
        ("expired", "backpressure_expired_total",
         "control puts abandoned at their deadline (running total)"),
    )

    def add_flow_source(
        self, component: str, flow_stats_fn: Callable[[], dict]
    ) -> None:
        """Mirror a flow-controlled component's per-lane counters.

        ``flow_stats_fn`` returns ``{queue_name: flow_stats_dict}`` (see
        :meth:`repro.core.flowcontrol.LaneChannel.flow_stats`).  Queues are
        discovered lazily — ID queues appear as processes register.
        """
        gauges: dict = {}

        def gauge_for(queue_name: str, stat: str, lane: str) -> Gauge:
            key = (queue_name, stat, lane)
            gauge = gauges.get(key)
            if gauge is None:
                metric, help_text = next(
                    (m, h) for s, m, h in self._FLOW_STATS if s == stat
                )
                gauge = self._series_gauge(
                    metric,
                    {"component": component, "queue": queue_name, "lane": lane},
                    help_text,
                )
                gauges[key] = gauge
            return gauge

        def probe(timestamp: float) -> None:
            for queue_name, stats in flow_stats_fn().items():
                for lane in ("control", "bulk"):
                    for stat, _, _ in self._FLOW_STATS:
                        value = stats.get(f"{lane}_{stat}")
                        if value is not None:
                            gauge_for(queue_name, stat, lane).set(
                                value, timestamp
                            )
                pressure_key = (queue_name, "pressure", "")
                gauge = gauges.get(pressure_key)
                if gauge is None:
                    gauge = self._series_gauge(
                        "backpressure_admission_pressure",
                        {"component": component, "queue": queue_name},
                        "1 while tightened (scaled) bulk admission is active",
                    )
                    gauges[pressure_key] = gauge
                gauge.set(stats.get("pressure", 0.0), timestamp)

        self.add_probe(probe)

    def add_broker(self, broker: Any) -> None:
        """Sample a :class:`repro.core.broker.Broker`'s communicator+store."""
        communicator = broker.communicator
        store = communicator.object_store
        broker_label = {"broker": broker.name}
        header_gauge = self._series_gauge(
            "broker_header_queue_depth", broker_label,
            "headers waiting for the router",
        )
        objects_gauge = self._series_gauge(
            "object_store_objects", broker_label, "live object-store entries"
        )
        bytes_gauge = self._series_gauge(
            "object_store_bytes", broker_label, "bytes held by live entries"
        )
        refcount_gauge = self._series_gauge(
            "object_store_refcounts", broker_label,
            "outstanding refcount shares across live entries",
        )

        # Arena occupancy gauges (shared-memory stores only; see
        # repro.core.arena.SlabArena.stats).
        arena_gauges: dict = {}
        if getattr(store, "arena_stats", None) is not None:
            for stat_name, help_text in (
                ("allocated_blocks", "live arena blocks"),
                ("allocated_bytes", "bytes held by live arena blocks"),
                ("slab_bytes", "total shared memory mapped by arena slabs"),
                ("free_blocks", "recycled blocks parked on arena free lists"),
                ("capacity_bytes", "arena occupancy bound"),
                ("pressure", "1 while arena occupancy is above its watermark"),
                ("pressure_events", "times the arena pressure latch tripped"),
            ):
                arena_gauges[stat_name] = self._series_gauge(
                    f"arena_{stat_name}", broker_label, help_text
                )

        depth_gauges: dict = {}

        # Overload-control gauges (flow-enabled brokers only).
        overflow_gauge: Optional[Gauge] = None
        if getattr(store, "total_overflow_put", None) is not None:
            overflow_gauge = self._series_gauge(
                "store_overflow_puts_total", broker_label,
                "puts forced onto per-message overflow segments by arena "
                "exhaustion (running total)",
            )
        wire = getattr(broker, "wire", None)
        wire_gauges: dict = {}
        if wire is not None:
            for stat_name, help_text in (
                ("enabled", "1 while adaptive wire compression is active"),
                ("compressed_total", "bodies compressed at the fabric boundary"),
                ("bytes_in", "pre-compression bytes offered to the wire codec"),
                ("bytes_out", "post-compression bytes sent on the fabric"),
            ):
                wire_gauges[stat_name] = self._series_gauge(
                    f"wire_compression_{stat_name}", broker_label, help_text
                )
        if getattr(broker.communicator, "flow", None) is not None:
            self.add_flow_source(broker.name, broker.communicator.flow_stats)

        def probe(timestamp: float) -> None:
            header_gauge.set(communicator.header_queue.qsize(), timestamp)
            objects_gauge.set(len(store), timestamp)
            bytes_gauge.set(getattr(store, "used_bytes", 0), timestamp)
            outstanding = getattr(store, "outstanding_refcounts", None)
            if outstanding is None:  # O(n) fallback for third-party stores
                outstanding = sum(count for _, count, _ in store.leak_report())
            refcount_gauge.set(outstanding, timestamp)
            if arena_gauges:
                stats = store.arena_stats()
                if stats:
                    for stat_name, gauge in arena_gauges.items():
                        gauge.set(stats.get(stat_name, 0), timestamp)
            if overflow_gauge is not None:
                overflow_gauge.set(store.total_overflow_put, timestamp)
            if wire_gauges:
                wire_stats = wire.stats()
                for stat_name, gauge in wire_gauges.items():
                    gauge.set(wire_stats.get(stat_name, 0.0), timestamp)
            for process_name, depth in communicator.queue_depths().items():
                gauge = depth_gauges.get(process_name)
                if gauge is None:
                    gauge = self._series_gauge(
                        "broker_id_queue_depth",
                        {"broker": broker.name, "process": process_name},
                        "headers parked in one destination ID queue",
                    )
                    depth_gauges[process_name] = gauge
                gauge.set(depth, timestamp)

        self.add_probe(probe)

    #: SocketLink/SocketListener stats mirrored into per-link wire gauges
    _WIRE_LINK_STATS = (
        ("bytes_sent", "bytes written to the socket (running total)"),
        ("items_sent", "messages written to the socket (running total)"),
        ("syscalls_total", "sendmsg/sendall syscalls issued (running total)"),
        ("syscalls_per_message", "mean gather-write syscalls per message"),
        ("segments_per_message", "mean scatter-gather segments per message"),
        ("partial_writes", "messages needing more than one syscall"),
        ("send_errors", "sends that died on a connection error"),
        ("bytes_received", "bytes read off the socket (running total)"),
        ("items_received", "messages delivered to the broker"),
        ("protocol_errors", "poisoned streams dropped by the listener"),
        ("connections_total", "peer connections accepted"),
    )

    def add_wire_fabric(self, fabric: Any) -> None:
        """Sample a :class:`repro.transport.tcp.SocketFabric`'s links.

        Mirrors every counter in :meth:`SocketFabric.link_stats` into a
        ``wire_link_*`` gauge labelled by link (``"src->dst"`` senders,
        ``"listen:node"`` receivers), plus the process-wide zero-copy
        regression canary
        :func:`~repro.core.serialization.serialization_copies_total` — a
        send path that starts materializing contiguous buffers shows up
        here before it shows up in a benchmark.
        """
        from ..core.serialization import serialization_copies_total

        gauges: dict = {}
        copies_gauge = self._series_gauge(
            "serialization_copies_total", {},
            "contiguous-bytes frame materializations in this process "
            "(zero-copy send paths keep this flat)",
        )

        def gauge_for(link_name: str, stat: str) -> Gauge:
            key = (link_name, stat)
            gauge = gauges.get(key)
            if gauge is None:
                help_text = next(
                    h for s, h in self._WIRE_LINK_STATS if s == stat
                )
                gauge = self._series_gauge(
                    f"wire_link_{stat}", {"link": link_name}, help_text
                )
                gauges[key] = gauge
            return gauge

        def probe(timestamp: float) -> None:
            copies_gauge.set(serialization_copies_total(), timestamp)
            for link_name, stats in fabric.link_stats().items():
                for stat, _ in self._WIRE_LINK_STATS:
                    value = stats.get(stat)
                    if value is not None:
                        gauge_for(link_name, stat).set(value, timestamp)

        self.add_probe(probe)

    def add_endpoint(self, endpoint: Any) -> None:
        """Sample a :class:`repro.core.endpoint.ProcessEndpoint`'s buffers."""
        labels = {"endpoint": endpoint.name}
        send_gauge = self._series_gauge(
            "endpoint_send_backlog", labels,
            "messages staged but not yet pushed by the sender thread "
            "(sender backpressure)",
        )
        recv_gauge = self._series_gauge(
            "endpoint_receive_backlog", labels,
            "messages delivered but not yet consumed by the workhorse",
        )

        expired_gauge: Optional[Gauge] = None
        if getattr(endpoint, "flow", None) is not None:
            self.add_flow_source(
                endpoint.name,
                lambda: {
                    "send": endpoint.send_buffer.flow_stats(),
                    "recv": endpoint.receive_buffer.flow_stats(),
                },
            )
            expired_gauge = self._series_gauge(
                "backpressure_send_expired_total", labels,
                "control-lane sends the sender thread abandoned at their "
                "admission deadline (running total)",
            )

        def probe(timestamp: float) -> None:
            send_gauge.set(endpoint.send_buffer.qsize(), timestamp)
            recv_gauge.set(endpoint.receive_buffer.qsize(), timestamp)
            if expired_gauge is not None:
                expired_gauge.set(endpoint.backpressure_expired, timestamp)

        self.add_probe(probe)

    # -- sampling -----------------------------------------------------------
    def sample_once(self) -> None:
        """One sweep over all probes (also the unit tests' entry point)."""
        timestamp = self._clock()
        with self._probes_lock:
            probes = list(self._probes)
        for probe in probes:
            try:
                probe(timestamp)
            except Exception:  # noqa: BLE001 - sampling must not kill the run
                self._errors.inc()
        self._samples.inc()

    def _run(self) -> None:
        try:
            while not self._stop.wait(self.interval):
                self.sample_once()
        except BaseException as exc:  # noqa: BLE001 - surfaced like a workhorse
            self.error = exc

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = spawn_thread(self.name, self._run)

    def stop(self, timeout: float = 2.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None
        # A final sweep captures the end-of-run state deterministically.
        self.sample_once()

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()
