"""Periodic telemetry sampler: queue depths, store occupancy, backpressure.

A single supervised thread (spawned through
:func:`repro.core.concurrency.spawn_thread`, like every other framework
workhorse) wakes every ``interval`` seconds and polls the registered
probes:

* **brokers** — header-queue depth, per-process ID-queue depths, object
  store occupancy (objects, bytes, outstanding refcount shares);
* **endpoints** — send-buffer backlog (sender backpressure: the workhorse
  is producing faster than the sender thread drains) and receive-buffer
  backlog (consumer lag).

Each probe lands in a :class:`~repro.obs.metrics.Gauge` with a bounded
sample series, so snapshots carry queue-depth-over-time without unbounded
growth.  A probe that raises (e.g. a queue torn down mid-sample during
shutdown) increments ``sampler_errors_total`` and the loop carries on —
sampling must never take a run down.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, List, Optional

from ..core.concurrency import make_lock, spawn_thread
from .metrics import Gauge, MetricsRegistry

Probe = Callable[[float], None]
"""A sampling callback receiving the sample timestamp."""


class TelemetrySampler:
    """Polls registered probes on a fixed interval from one thread."""

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        interval: float = 0.05,
        series_capacity: int = 512,
        clock: Callable[[], float] = time.monotonic,
        name: str = "telemetry-sampler",
    ):
        if interval <= 0:
            raise ValueError("sample interval must be positive")
        self.registry = registry
        self.interval = interval
        self.series_capacity = series_capacity
        self.name = name
        self._clock = clock
        self._probes: List[Probe] = []
        self._probes_lock = make_lock(f"{name}.probes")
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.error: Optional[BaseException] = None
        self._samples = registry.counter(
            "sampler_ticks_total", help="completed sampling sweeps"
        )
        self._errors = registry.counter(
            "sampler_errors_total", help="probes that raised during sampling"
        )

    # -- probe registration -------------------------------------------------
    def add_probe(self, probe: Probe) -> None:
        with self._probes_lock:
            self._probes.append(probe)

    def _series_gauge(self, name: str, labels, help: str) -> Gauge:
        return self.registry.gauge(
            name, labels, help=help, series_capacity=self.series_capacity
        )

    def add_broker(self, broker: Any) -> None:
        """Sample a :class:`repro.core.broker.Broker`'s communicator+store."""
        communicator = broker.communicator
        store = communicator.object_store
        broker_label = {"broker": broker.name}
        header_gauge = self._series_gauge(
            "broker_header_queue_depth", broker_label,
            "headers waiting for the router",
        )
        objects_gauge = self._series_gauge(
            "object_store_objects", broker_label, "live object-store entries"
        )
        bytes_gauge = self._series_gauge(
            "object_store_bytes", broker_label, "bytes held by live entries"
        )
        refcount_gauge = self._series_gauge(
            "object_store_refcounts", broker_label,
            "outstanding refcount shares across live entries",
        )

        # Arena occupancy gauges (shared-memory stores only; see
        # repro.core.arena.SlabArena.stats).
        arena_gauges: dict = {}
        if getattr(store, "arena_stats", None) is not None:
            for stat_name, help_text in (
                ("allocated_blocks", "live arena blocks"),
                ("allocated_bytes", "bytes held by live arena blocks"),
                ("slab_bytes", "total shared memory mapped by arena slabs"),
                ("free_blocks", "recycled blocks parked on arena free lists"),
            ):
                arena_gauges[stat_name] = self._series_gauge(
                    f"arena_{stat_name}", broker_label, help_text
                )

        depth_gauges: dict = {}

        def probe(timestamp: float) -> None:
            header_gauge.set(communicator.header_queue.qsize(), timestamp)
            objects_gauge.set(len(store), timestamp)
            bytes_gauge.set(getattr(store, "used_bytes", 0), timestamp)
            outstanding = getattr(store, "outstanding_refcounts", None)
            if outstanding is None:  # O(n) fallback for third-party stores
                outstanding = sum(count for _, count, _ in store.leak_report())
            refcount_gauge.set(outstanding, timestamp)
            if arena_gauges:
                stats = store.arena_stats()
                if stats:
                    for stat_name, gauge in arena_gauges.items():
                        gauge.set(stats.get(stat_name, 0), timestamp)
            for process_name, depth in communicator.queue_depths().items():
                gauge = depth_gauges.get(process_name)
                if gauge is None:
                    gauge = self._series_gauge(
                        "broker_id_queue_depth",
                        {"broker": broker.name, "process": process_name},
                        "headers parked in one destination ID queue",
                    )
                    depth_gauges[process_name] = gauge
                gauge.set(depth, timestamp)

        self.add_probe(probe)

    def add_endpoint(self, endpoint: Any) -> None:
        """Sample a :class:`repro.core.endpoint.ProcessEndpoint`'s buffers."""
        labels = {"endpoint": endpoint.name}
        send_gauge = self._series_gauge(
            "endpoint_send_backlog", labels,
            "messages staged but not yet pushed by the sender thread "
            "(sender backpressure)",
        )
        recv_gauge = self._series_gauge(
            "endpoint_receive_backlog", labels,
            "messages delivered but not yet consumed by the workhorse",
        )

        def probe(timestamp: float) -> None:
            send_gauge.set(endpoint.send_buffer.qsize(), timestamp)
            recv_gauge.set(endpoint.receive_buffer.qsize(), timestamp)

        self.add_probe(probe)

    # -- sampling -----------------------------------------------------------
    def sample_once(self) -> None:
        """One sweep over all probes (also the unit tests' entry point)."""
        timestamp = self._clock()
        with self._probes_lock:
            probes = list(self._probes)
        for probe in probes:
            try:
                probe(timestamp)
            except Exception:  # noqa: BLE001 - sampling must not kill the run
                self._errors.inc()
        self._samples.inc()

    def _run(self) -> None:
        try:
            while not self._stop.wait(self.interval):
                self.sample_once()
        except BaseException as exc:  # noqa: BLE001 - surfaced like a workhorse
            self.error = exc

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = spawn_thread(self.name, self._run)

    def stop(self, timeout: float = 2.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None
        # A final sweep captures the end-of-run state deterministically.
        self.sample_once()

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()
