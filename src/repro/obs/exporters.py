"""Exporters: Prometheus text exposition and deterministic JSON snapshots.

Both exporters walk :meth:`MetricsRegistry.collect` (sorted by name and
labels) so identical runs produce structurally identical artifacts —
benchmark harnesses diff snapshots across commits.

The JSON snapshot schema (``repro.obs/v1``) is validated by
:func:`validate_snapshot` — stdlib-only, used by the CI observability smoke
job instead of a jsonschema dependency.  See docs/OBSERVABILITY.md for the
metric catalog.
"""

from __future__ import annotations

import json
import math
import re
from typing import Any, Dict, List, Optional, Tuple

from .metrics import Counter, Gauge, Histogram, MetricsRegistry, labels_dict

SNAPSHOT_SCHEMA = "repro.obs/v1"

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def _escape(value: str) -> str:
    return "".join(_ESCAPES.get(ch, ch) for ch in value)


def _render_labels(labels, extra: Optional[List[Tuple[str, str]]] = None) -> str:
    pairs = list(labels) + list(extra or [])
    if not pairs:
        return ""
    inner = ",".join(f'{key}="{_escape(value)}"' for key, value in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def to_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition format 0.0.4 of the whole registry."""
    lines: List[str] = []
    seen_headers = set()
    for metric in registry.collect():
        name = f"{registry.namespace}_{metric.name}"
        if name not in seen_headers:
            seen_headers.add(name)
            help_text = getattr(metric, "help", "") or metric.name
            lines.append(f"# HELP {name} {_escape(help_text)}")
            lines.append(f"# TYPE {name} {metric.kind}")
        if isinstance(metric, Counter):
            lines.append(
                f"{name}{_render_labels(metric.labels)} "
                f"{_format_value(metric.value)}"
            )
        elif isinstance(metric, Gauge):
            lines.append(
                f"{name}{_render_labels(metric.labels)} "
                f"{_format_value(metric.value)}"
            )
        elif isinstance(metric, Histogram):
            for bound, cumulative in metric.bucket_counts():
                lines.append(
                    f"{name}_bucket"
                    f"{_render_labels(metric.labels, [('le', _format_value(bound))])} "
                    f"{cumulative}"
                )
            lines.append(
                f"{name}_sum{_render_labels(metric.labels)} "
                f"{_format_value(metric.sum)}"
            )
            lines.append(
                f"{name}_count{_render_labels(metric.labels)} {metric.count}"
            )
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?\s+"
    r"(?P<value>[+-]?(?:Inf|NaN|[0-9.eE+-]+))$"
)


def parse_prometheus(text: str) -> List[Dict[str, Any]]:
    """Line-by-line parse of an exposition; raises ValueError on bad lines.

    Returns one ``{"name", "labels", "value"}`` dict per sample line.  This
    is the verification half of the exporter: tests run every exported line
    through it so a malformed exposition cannot land silently.
    """
    samples: List[Dict[str, Any]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) < 3 or not _NAME_RE.fullmatch(parts[2]):
                raise ValueError(f"line {lineno}: malformed comment {line!r}")
            continue
        if line.startswith("#"):
            raise ValueError(f"line {lineno}: unknown comment {line!r}")
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        labels: Dict[str, str] = {}
        raw = match.group("labels")
        if raw:
            body = raw[1:-1]
            if body:
                for pair in re.findall(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"', body):
                    labels[pair[0]] = pair[1]
        value_text = match.group("value")
        value = float(value_text.replace("Inf", "inf").replace("NaN", "nan"))
        samples.append(
            {"name": match.group("name"), "labels": labels, "value": value}
        )
    return samples


# -- JSON snapshots ----------------------------------------------------------

def snapshot(
    registry: MetricsRegistry, *, meta: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Deterministic JSON-ready dict of every instrument in the registry."""
    metrics: List[Dict[str, Any]] = []
    for metric in registry.collect():
        entry: Dict[str, Any] = {
            "name": metric.name,
            "type": metric.kind,
            "labels": labels_dict(metric.labels),
        }
        if isinstance(metric, Counter):
            entry["value"] = metric.value
        elif isinstance(metric, Gauge):
            entry["value"] = metric.value
            series = metric.series()
            if series:
                entry["series"] = [[round(t, 6), v] for t, v in series]
        elif isinstance(metric, Histogram):
            entry.update(
                count=metric.count,
                sum=metric.sum,
                mean=metric.mean(),
                p50=metric.quantile(0.5),
                p95=metric.quantile(0.95),
                p99=metric.quantile(0.99),
                buckets=[
                    [("+Inf" if bound == math.inf else bound), cumulative]
                    for bound, cumulative in metric.bucket_counts()
                ],
            )
        metrics.append(entry)
    return {
        "schema": SNAPSHOT_SCHEMA,
        "meta": dict(meta or {}),
        "metrics": metrics,
    }


def snapshot_to_json(registry: MetricsRegistry, **kwargs: Any) -> str:
    return json.dumps(snapshot(registry, **kwargs), indent=2, sort_keys=False) + "\n"


def validate_snapshot(data: Dict[str, Any]) -> List[str]:
    """Schema check for a ``repro.obs/v1`` snapshot; returns problem strings.

    An empty list means the snapshot is valid.  Stdlib-only stand-in for a
    jsonschema document — the CI smoke job fails on any returned problem.
    """
    problems: List[str] = []
    if not isinstance(data, dict):
        return ["snapshot is not an object"]
    if data.get("schema") != SNAPSHOT_SCHEMA:
        problems.append(f"schema must be {SNAPSHOT_SCHEMA!r}, got {data.get('schema')!r}")
    if not isinstance(data.get("meta", {}), dict):
        problems.append("meta must be an object")
    metrics = data.get("metrics")
    if not isinstance(metrics, list):
        return problems + ["metrics must be a list"]
    for index, entry in enumerate(metrics):
        where = f"metrics[{index}]"
        if not isinstance(entry, dict):
            problems.append(f"{where} is not an object")
            continue
        name = entry.get("name")
        if not isinstance(name, str) or not _NAME_RE.fullmatch(name):
            problems.append(f"{where}.name invalid: {name!r}")
        kind = entry.get("type")
        if kind not in ("counter", "gauge", "histogram"):
            problems.append(f"{where}.type invalid: {kind!r}")
        labels = entry.get("labels")
        if not isinstance(labels, dict) or not all(
            isinstance(k, str) and isinstance(v, str) for k, v in labels.items()
        ):
            problems.append(f"{where}.labels must be a str->str object")
        if kind in ("counter", "gauge"):
            if not isinstance(entry.get("value"), (int, float)):
                problems.append(f"{where}.value must be numeric")
            if kind == "counter" and isinstance(entry.get("value"), (int, float)):
                if entry["value"] < 0:
                    problems.append(f"{where}.value must be >= 0 for a counter")
            series = entry.get("series")
            if series is not None:
                if not isinstance(series, list) or not all(
                    isinstance(point, list)
                    and len(point) == 2
                    and all(isinstance(x, (int, float)) for x in point)
                    for point in series
                ):
                    problems.append(f"{where}.series must be [[t, v], ...]")
        elif kind == "histogram":
            for field_name in ("count", "sum", "mean", "p50", "p95", "p99"):
                if not isinstance(entry.get(field_name), (int, float)):
                    problems.append(f"{where}.{field_name} must be numeric")
            buckets = entry.get("buckets")
            if not isinstance(buckets, list) or not buckets:
                problems.append(f"{where}.buckets must be a non-empty list")
            else:
                last = -1
                for bucket in buckets:
                    if (
                        not isinstance(bucket, list)
                        or len(bucket) != 2
                        or not isinstance(bucket[1], int)
                    ):
                        problems.append(f"{where}.buckets entries must be [le, count]")
                        break
                    if bucket[1] < last:
                        problems.append(f"{where}.buckets counts must be cumulative")
                        break
                    last = bucket[1]
                else:
                    if buckets[-1][0] != "+Inf":
                        problems.append(f"{where}.buckets must end with +Inf")
    return problems
