"""Unified telemetry layer (docs/OBSERVABILITY.md).

* :mod:`repro.obs.metrics` — thread-safe Counter/Gauge/Histogram registry;
* :mod:`repro.obs.spans` — message-lifecycle span correlation
  (sent → routed → delivered → consumed) into per-stage histograms;
* :mod:`repro.obs.sampler` — periodic queue-depth / object-store /
  backpressure sampling on a supervised thread;
* :mod:`repro.obs.exporters` — Prometheus text exposition and
  deterministic JSON snapshots (schema ``repro.obs/v1``);
* :mod:`repro.obs.telemetry` — the :class:`Telemetry` facade sessions use.
"""

from .exporters import (
    SNAPSHOT_SCHEMA,
    parse_prometheus,
    snapshot,
    snapshot_to_json,
    to_prometheus,
    validate_snapshot,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .flowcontroller import FlowController
from .sampler import TelemetrySampler
from .spans import STAGES, SpanAggregator, SpanRecord, SpanStats
from .telemetry import Telemetry

__all__ = [
    "SNAPSHOT_SCHEMA",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "STAGES",
    "Counter",
    "FlowController",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanAggregator",
    "SpanRecord",
    "SpanStats",
    "Telemetry",
    "TelemetrySampler",
    "parse_prometheus",
    "snapshot",
    "snapshot_to_json",
    "to_prometheus",
    "validate_snapshot",
]
