"""Telemetry-driven adaptation: the flow-control feedback loop.

PR 4 built the sensors (queue-depth gauges, arena occupancy, span
latencies); the :class:`FlowController` closes the loop.  One supervised
thread polls the shared :class:`~repro.obs.metrics.MetricsRegistry` — the
very gauges the :class:`~repro.obs.sampler.TelemetrySampler` populates —
and actuates three degradation levers when the pipeline falls behind:

* **coalescing** — raise each endpoint's ``CoalescingSpec`` size threshold
  so more small messages ride per BATCH envelope (fewer headers, fewer
  routing decisions) while queues are pressured;
* **wire compression** — enable the broker's
  :class:`~repro.core.flowcontrol.WireCompressor` so bulk bodies cross
  throttled links compressed (CPU for bandwidth);
* **admission + at-rest compression** — when arena occupancy trips its
  watermark, tighten bulk admission (scaled watermarks shed earlier) and
  lower the store's compression threshold so large bodies move off the
  arena into compressed overflow segments.

Escalation needs ``escalate_after`` consecutive pressured polls; full
relaxation back to the configured baseline needs ``relax_after`` clear
polls (asymmetric on purpose: degrade fast, recover cautiously).  Every
decision is exported through the registry (``flow_*`` gauges/counters) so
snapshots show *when* and *why* the system degraded.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Any, Callable, List, Optional

from ..core.concurrency import make_lock, spawn_thread
from ..core.config import FlowControlSpec
from .metrics import Gauge, MetricsRegistry


class FlowController:
    """Polls backpressure gauges; retunes coalescing/compression/admission."""

    def __init__(
        self,
        registry: MetricsRegistry,
        spec: FlowControlSpec,
        *,
        name: str = "flow-controller",
        clock: Callable[[], float] = time.monotonic,
    ):
        self.registry = registry
        self.spec = spec
        self.name = name
        self._clock = clock
        self._lock = make_lock(f"{name}.state")
        self._brokers: List[Any] = []
        self._endpoints: List[Any] = []
        #: (gauge, original CompressionPolicy, store) triples per broker
        self._stores: List[Any] = []
        self._bulk_depth_gauges: List[Gauge] = []
        self._arena_pressure_gauges: List[Gauge] = []
        self._original_coalescing: dict = {}
        self._original_compression: dict = {}
        self._pressured_polls = 0
        self._clear_polls = 0
        self._escalated = False
        self._admission_tight = False
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.error: Optional[BaseException] = None
        # Decision telemetry.
        self._escalations = registry.counter(
            "flow_adaptations_total", {"direction": "escalate"},
            help="degradation steps taken by the flow controller",
        )
        self._relaxations = registry.counter(
            "flow_adaptations_total", {"direction": "relax"},
            help="recoveries back to the configured baseline",
        )
        self._level_gauge = registry.gauge(
            "flow_degradation_level",
            help="0 at baseline, 1 while degraded (coalescing/compression on)",
        )
        self._admission_gauge = registry.gauge(
            "flow_admission_tightened",
            help="1 while scaled (pressure) bulk admission is active",
        )
        self._polls = registry.counter(
            "flow_polls_total", help="completed flow-controller polls"
        )

    # -- attachment -----------------------------------------------------------
    def attach_broker(self, broker: Any) -> None:
        """Watch a broker's header-queue bulk lane and arena pressure."""
        with self._lock:
            self._brokers.append(broker)
            # Same (kind, name, labels) → the registry returns the very
            # Gauge objects the sampler writes; no side channel needed.
            self._bulk_depth_gauges.append(
                self.registry.gauge(
                    "backpressure_lane_depth",
                    {
                        "component": broker.name,
                        "queue": "headers",
                        "lane": "bulk",
                    },
                )
            )
            store = broker.communicator.object_store
            if getattr(store, "arena", None) is not None:
                self._arena_pressure_gauges.append(
                    self.registry.gauge(
                        "arena_pressure", {"broker": broker.name}
                    )
                )
            if getattr(store, "set_compression", None) is not None:
                self._stores.append(store)
                self._original_compression[id(store)] = store.compression

    def attach_endpoint(self, endpoint: Any) -> None:
        """Manage an endpoint's coalescing spec (None: nothing to retune)."""
        with self._lock:
            self._endpoints.append(endpoint)
            self._original_coalescing[id(endpoint)] = endpoint.coalescing

    # -- signals --------------------------------------------------------------
    def _queue_pressured(self) -> bool:
        threshold = self.spec.queue_pressure_fraction * self.spec.bulk_watermark
        return any(
            gauge.value >= threshold for gauge in self._bulk_depth_gauges
        )

    def _arena_pressured(self) -> bool:
        return any(gauge.value > 0 for gauge in self._arena_pressure_gauges)

    # -- actuation ------------------------------------------------------------
    def _escalate(self, arena_pressured: bool) -> None:
        """Apply the degradation levers (controller thread only)."""
        self._escalated = True
        self._escalations.inc()
        self._level_gauge.set(1)
        for endpoint in self._endpoints:
            current = endpoint.coalescing
            if current is None or not current.enabled:
                continue
            raised = min(
                self.spec.coalescing_max_bytes, current.max_message_bytes * 2
            )
            if raised != current.max_message_bytes:
                # Atomic reference swap; the sender loop re-reads the spec
                # every wakeup, so the new threshold applies immediately.
                endpoint.coalescing = dataclasses.replace(
                    current, max_message_bytes=raised
                )
        for broker in self._brokers:
            wire = getattr(broker, "wire", None)
            if wire is not None:
                wire.set_enabled(True)
        if arena_pressured and not self._admission_tight:
            self._admission_tight = True
            self._admission_gauge.set(1)
            for broker in self._brokers:
                broker.communicator.set_pressure(True)
            for store in self._stores:
                current = store.compression
                lowered = max(
                    self.spec.compression_min_threshold,
                    (current.threshold or self.spec.compression_min_threshold)
                    // 2,
                )
                store.set_compression(
                    dataclasses.replace(
                        current, enabled=True, threshold=lowered
                    )
                )

    def _relax(self) -> None:
        """Restore the configured baseline (controller thread only)."""
        self._escalated = False
        self._relaxations.inc()
        self._level_gauge.set(0)
        for endpoint in self._endpoints:
            endpoint.coalescing = self._original_coalescing.get(id(endpoint))
        for broker in self._brokers:
            wire = getattr(broker, "wire", None)
            if wire is not None:
                wire.set_enabled(False)
        if self._admission_tight:
            self._admission_tight = False
            self._admission_gauge.set(0)
            for broker in self._brokers:
                broker.communicator.set_pressure(False)
            for store in self._stores:
                original = self._original_compression.get(id(store))
                if original is not None:
                    store.set_compression(original)

    # -- control loop ---------------------------------------------------------
    def poll_once(self) -> None:
        """One observe-decide-act step (also the unit tests' entry point)."""
        with self._lock:
            queue_pressured = self._queue_pressured()
            arena_pressured = self._arena_pressured()
            if queue_pressured or arena_pressured:
                self._pressured_polls += 1
                self._clear_polls = 0
            else:
                self._clear_polls += 1
                self._pressured_polls = 0
            if self._pressured_polls >= self.spec.escalate_after:
                self._escalate(arena_pressured)
                self._pressured_polls = 0  # re-arm (repeat escalations
                # keep doubling coalescing up to the configured cap)
            elif self._clear_polls >= self.spec.relax_after and (
                self._escalated or self._admission_tight
            ):
                self._relax()
                self._clear_polls = 0
            self._polls.inc()

    @property
    def degraded(self) -> bool:
        with self._lock:
            return self._escalated

    @property
    def admission_tightened(self) -> bool:
        with self._lock:
            return self._admission_tight

    def _run(self) -> None:
        try:
            while not self._stop.wait(self.spec.adapt_interval_s):
                self.poll_once()
        except BaseException as exc:  # noqa: BLE001 - surfaced like a workhorse
            self.error = exc

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = spawn_thread(self.name, self._run)

    def stop(self, timeout: float = 2.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()


__all__ = ["FlowController"]
