"""Message-lifecycle spans: correlate tracer events into stage latencies.

The asynchronous channel emits four tracer events per message (see
``repro.core``): ``sent`` at the producing endpoint, ``routed`` when the
broker's router dispatches the header, ``delivered`` when the destination
endpoint's receiver thread lands the message in the local receive buffer,
and ``consumed`` when the workhorse thread actually reads it.  The
:class:`SpanAggregator` correlates them by message ``seq`` into per-stage
latency histograms — the paper's "where does transmission time go"
quantities (Figs. 4–10) — broken down per MsgType and per
``(src_role, type, dst_role)`` edge aligned with ``docs/topology.json``.

Stages (named by what the duration covers):

========  =======================  =====================================
stage     interval                 meaning
========  =======================  =====================================
send      sent → routed            send buffer + header queue + routing
route     routed → delivered       ID queue + receiver thread hop
deliver   sent → delivered         end-to-end transmission
consume   delivered → consumed     receive-buffer dwell (workhorse lag)
========  =======================  =====================================

Correlation state is bounded: at most ``max_pending`` in-flight starts per
stage, FIFO-evicted (each eviction counted).  Lost end events — routine
under :class:`repro.testing.faults.FaultyLink` drops — therefore cannot
grow memory, they only increment the unmatched counters that the JSON
snapshot and Prometheus exposition report.

The aggregator can run **live** (as the ``sink`` of a
:class:`repro.core.tracing.Tracer`, seeing every event even when the
bounded ring wraps) or **offline** via :meth:`ingest` over recorded
events.  Completed edges are retained as :class:`SpanRecord` entries that
:func:`repro.analysis.topology.conformance_violations` accepts directly,
so static-vs-observed topology diffing has one code path whether it is fed
raw tracer events or span records.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..core.concurrency import make_lock
from .metrics import MetricsRegistry

#: Stage name -> (start event kind, end event kind).
STAGES: Dict[str, Tuple[str, str]] = {
    "send": ("sent", "routed"),
    "route": ("routed", "delivered"),
    "deliver": ("sent", "delivered"),
    "consume": ("delivered", "consumed"),
}

_LIFECYCLE_KINDS = ("sent", "routed", "delivered", "consumed")

#: Terminal outcomes emitted by flow-controlled queues and the router for
#: messages that will never complete their lifecycle (shed under a bulk
#: watermark, control deadline expired, rejected by a closed/dead
#: destination).  A terminal event *closes* the message's pending state —
#: a bulk shed must not leak a forever-pending (seq, dst) entry.
TERMINAL_KINDS = ("shed", "expired", "rejected")


_ROLE_CACHE: Dict[str, str] = {}


def role_of(name: str) -> str:
    """Framework role of an endpoint name (explorer/learner/controller).

    Memoized: this sits on the per-message aggregation path and endpoint
    names are a small fixed set per deployment.
    """
    role = _ROLE_CACHE.get(name)
    if role is None:
        from ..analysis.topology import role_for_name  # stdlib-only module

        role = role_for_name(name)
        _ROLE_CACHE[name] = role
    return role


@dataclass(frozen=True)
class SpanRecord:
    """One observed communication edge with its measured stage latencies.

    ``src``/``dst`` are endpoint names; ``msg_type`` is the ``str(MsgType)``
    value.  ``durations`` maps stage name -> seconds for the stages that
    completed for this (seq, dst) pair.  Conformance checking reads only
    (src, msg_type, dst) — see ``repro.analysis.topology.observed_edges``.
    """

    seq: int
    msg_type: str
    src: str
    dst: str
    durations: Tuple[Tuple[str, float], ...] = ()

    @property
    def src_role(self) -> str:
        return role_of(self.src)

    @property
    def dst_role(self) -> str:
        return role_of(self.dst)


@dataclass
class SpanStats:
    """Aggregate correlation health, exposed in snapshots and assertions."""

    matched: Dict[str, int] = field(default_factory=dict)
    unmatched_ends: Dict[str, int] = field(default_factory=dict)
    evicted_starts: Dict[str, int] = field(default_factory=dict)
    #: terminal outcome name -> messages closed by it (shed/expired/rejected)
    terminated: Dict[str, int] = field(default_factory=dict)
    negative_durations: int = 0

    def total_unmatched(self) -> int:
        return sum(self.unmatched_ends.values()) + sum(self.evicted_starts.values())

    def total_terminated(self) -> int:
        return sum(self.terminated.values())


class _PendingMap:
    """Bounded FIFO map of correlation key -> start timestamp.

    Entries that matched at least one end event are evicted silently;
    never-matched entries bump ``evicted`` so they can be reported as
    unmatched (a fan-out ``sent`` start legitimately outlives many matches,
    so eviction itself is not a failure — only eviction before any match).
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.evicted = 0
        self._entries: "OrderedDict[Any, List[Any]]" = OrderedDict()

    def put(self, key: Any, timestamp: Any) -> None:
        if key in self._entries:
            # A duplicate start (FaultyLink duplication): keep the earliest
            # so durations err on the long side rather than negative.
            return
        self._entries[key] = [timestamp, False]
        if len(self._entries) > self.capacity:
            _, (_, matched) = self._entries.popitem(last=False)
            if not matched:
                self.evicted += 1

    def peek(self, key: Any) -> Optional[Any]:
        entry = self._entries.get(key)
        if entry is None:
            return None
        entry[1] = True
        return entry[0]

    def pop(self, key: Any) -> Optional[Any]:
        entry = self._entries.pop(key, None)
        return None if entry is None else entry[0]

    def __len__(self) -> int:
        return len(self._entries)


class SpanAggregator:
    """Correlates lifecycle tracer events into registry histograms.

    Attach as a tracer sink (``Tracer(sink=aggregator.observe)``) for live
    aggregation, or feed recorded events to :meth:`ingest`.  Thread-safe:
    events may arrive from sender, router, and receiver threads at once.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        max_pending: int = 8192,
        max_records: int = 4096,
        latency_buckets=None,
    ):
        self.registry = registry
        self._lock = make_lock("obs.spans")
        self._max_pending = max_pending
        # Stage start state.  "sent"/"routed" are keyed by seq (one producer
        # event fans out to N destinations, so matches peek rather than
        # pop); "delivered" is keyed by (seq, dst) and popped on match.
        self._sent = _PendingMap(max_pending)
        self._routed = _PendingMap(max_pending)
        self._delivered = _PendingMap(max_pending)
        #: seq -> (msg_type, src, dst list) from the sent event
        self._meta = _PendingMap(max_pending)
        self._stats = SpanStats(
            matched={stage: 0 for stage in STAGES},
            unmatched_ends={stage: 0 for stage in STAGES},
            evicted_starts={stage: 0 for stage in STAGES},
            terminated={outcome: 0 for outcome in TERMINAL_KINDS},
        )
        self._records: "OrderedDict[Tuple[int, str], Dict[str, float]]" = OrderedDict()
        self._record_meta: Dict[Tuple[int, str], Tuple[str, str]] = {}
        self._max_records = max_records
        self._edges: set = set()
        kwargs = {} if latency_buckets is None else {"buckets": latency_buckets}
        self._histograms: Dict[Tuple[str, str], Any] = {}
        self._edge_histograms: Dict[Tuple[str, str, str, str], Any] = {}
        self._hist_kwargs = kwargs
        self._unmatched_counter = {
            stage: registry.counter(
                "message_spans_unmatched_total",
                {"stage": stage},
                help="lifecycle end events with no matching start",
            )
            for stage in STAGES
        }
        self._evicted_counter = {
            stage: registry.counter(
                "message_spans_evicted_total",
                {"stage": stage},
                help="pending starts FIFO-evicted before any end matched",
            )
            for stage in STAGES
        }
        self._terminal_counter = {
            outcome: registry.counter(
                "message_spans_terminal_total",
                {"outcome": outcome},
                help="messages closed by a terminal outcome "
                     "(flow-control shed/expired, routing rejected)",
            )
            for outcome in TERMINAL_KINDS
        }
        self._negative_counter = registry.counter(
            "message_spans_negative_total",
            help="stage durations that came out negative (clock skew/reorder)",
        )

    # -- event intake ------------------------------------------------------
    def observe(self, event: Any) -> None:
        """Tracer-sink entry point: one TraceEvent-shaped object."""
        kind = getattr(event, "kind", None)
        if kind not in _LIFECYCLE_KINDS:
            if kind in TERMINAL_KINDS:
                self._observe_terminal(kind, event)
            return
        detail = getattr(event, "detail", None) or {}
        seq = detail.get("seq")
        if seq is None:
            return
        timestamp = getattr(event, "timestamp", 0.0)
        source = getattr(event, "source", "") or ""
        # Histogram updates are deferred until after the correlation lock is
        # released: histograms carry their own locks, and nesting them inside
        # ours would serialize sender/router/receiver threads on the hot path.
        updates: List[Tuple[Any, float]] = []
        with self._lock:
            if kind == "sent":
                self._sent.put(seq, timestamp)
                self._meta.put(
                    seq,
                    (  # type: ignore[arg-type]
                        str(detail.get("type", "")),
                        source,
                        str(detail.get("dst", "")),
                    ),
                )
            elif kind == "routed":
                self._routed.put(seq, timestamp)
                self._close_stage("send", seq, None, timestamp, updates)
            elif kind == "delivered":
                self._delivered.put((seq, source), timestamp)
                self._close_stage("route", seq, source, timestamp, updates)
                self._close_stage("deliver", seq, source, timestamp, updates)
            elif kind == "consumed":
                self._close_stage("consume", seq, source, timestamp, updates)
            if self._sent.evicted or self._routed.evicted or self._delivered.evicted:
                self._sync_evictions()
        for histogram, duration in updates:
            histogram.observe(duration)

    def ingest(self, events: Iterable[Any]) -> SpanStats:
        """Offline path: feed recorded events; returns the current stats."""
        for event in events:
            self.observe(event)
        return self.stats()

    def _observe_terminal(self, outcome: str, event: Any) -> None:
        """A shed/expired/rejected message: close its pending state.

        Without this, a bulk shed under ``FlowControlSpec`` leaves its
        ``sent`` (and possibly ``routed``/``(seq, dst)``) entries pending
        until FIFO eviction mislabels them as unmatched.  The terminal
        event instead records a definite outcome in a labeled counter.
        """
        detail = getattr(event, "detail", None) or {}
        seq = detail.get("seq")
        if seq is None:
            return
        with self._lock:
            dsts = [d for d in str(detail.get("dst") or "").split(",") if d]
            for dst in dsts:
                self._delivered.pop((seq, dst))
            meta = self._meta.peek(seq)
            sent_dsts = (
                {d for d in str(meta[2]).split(",") if d} if meta else None
            )
            # A router reject is per-destination: when other destinations of
            # the same fan-out are still in flight, the sent/routed starts
            # must survive to match their deliveries.  peek() marks them
            # matched, so a later FIFO eviction stays silent.
            partial = (
                sent_dsts is not None and dsts and set(dsts) < sent_dsts
            )
            if partial:
                known = (
                    self._sent.peek(seq) is not None
                    or self._routed.peek(seq) is not None
                )
            else:
                known = self._sent.pop(seq) is not None
                known = (self._routed.pop(seq) is not None) or known
                self._meta.pop(seq)
            if not known:
                # Duplicate terminal (e.g. queue and router both report the
                # same rejected header) or untraced sender: count once.
                return
            self._stats.terminated[outcome] = (
                self._stats.terminated.get(outcome, 0) + 1
            )
            self._terminal_counter[outcome].inc()

    # -- correlation internals (call with lock held) -----------------------
    def _close_stage(
        self,
        stage: str,
        seq: int,
        dst: Optional[str],
        end_timestamp: float,
        updates: List[Tuple[Any, float]],
    ) -> None:
        start_kind = STAGES[stage][0]
        if start_kind == "sent":
            started = self._sent.peek(seq)
        elif start_kind == "routed":
            started = self._routed.peek(seq)
        else:  # delivered: per-destination, consumed exactly once
            started = self._delivered.pop((seq, dst))
        if started is None:
            self._stats.unmatched_ends[stage] += 1
            self._unmatched_counter[stage].inc()
            return
        duration = end_timestamp - started
        if duration < 0:
            self._stats.negative_durations += 1
            self._negative_counter.inc()
            return
        self._stats.matched[stage] += 1
        meta = self._meta.peek(seq)
        msg_type, src = (meta[0], meta[1]) if meta else ("", "")
        updates.append((self._stage_histogram(stage, msg_type), duration))
        if dst is not None:
            updates.append(
                (self._edge_histogram(stage, role_of(src), msg_type, role_of(dst)),
                 duration)
            )
            self._note_record(seq, msg_type, src, dst, stage, duration)

    def _stage_histogram(self, stage: str, msg_type: str):
        key = (stage, msg_type)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self.registry.histogram(
                "message_stage_seconds",
                {"stage": stage, "type": msg_type},
                help="per-stage message lifecycle latency",
                **self._hist_kwargs,
            )
            self._histograms[key] = histogram
        return histogram

    def _edge_histogram(self, stage: str, src_role: str, msg_type: str, dst_role: str):
        key = (stage, src_role, msg_type, dst_role)
        histogram = self._edge_histograms.get(key)
        if histogram is None:
            histogram = self.registry.histogram(
                "message_edge_stage_seconds",
                {
                    "stage": stage,
                    "src_role": src_role,
                    "type": msg_type,
                    "dst_role": dst_role,
                },
                help="per-(src_role,type,dst_role) lifecycle latency",
                **self._hist_kwargs,
            )
            self._edge_histograms[key] = histogram
        return histogram

    def _note_record(
        self, seq: int, msg_type: str, src: str, dst: str, stage: str, duration: float
    ) -> None:
        key = (seq, dst)
        durations = self._records.get(key)
        if durations is None:
            durations = {}
            self._records[key] = durations
            self._record_meta[key] = (msg_type, src)
            if len(self._records) > self._max_records:
                old_key, _ = self._records.popitem(last=False)
                self._record_meta.pop(old_key, None)
        durations[stage] = duration
        self._edges.add((src, msg_type, dst))

    def _sync_evictions(self) -> None:
        """Fold _PendingMap evictions into per-stage counters.

        An evicted ``sent`` start breaks both sent-anchored stages; the
        accounting charges it to ``deliver`` (the end-to-end stage) to avoid
        double counting.
        """
        for pending, stage in (
            (self._sent, "deliver"),
            (self._routed, "route"),
            (self._delivered, "consume"),
        ):
            while pending.evicted > 0:
                pending.evicted -= 1
                self._stats.evicted_starts[stage] += 1
                self._evicted_counter[stage].inc()

    # -- reads -------------------------------------------------------------
    def stats(self) -> SpanStats:
        with self._lock:
            return SpanStats(
                matched=dict(self._stats.matched),
                unmatched_ends=dict(self._stats.unmatched_ends),
                evicted_starts=dict(self._stats.evicted_starts),
                terminated=dict(self._stats.terminated),
                negative_durations=self._stats.negative_durations,
            )

    def records(self) -> List[SpanRecord]:
        """Completed spans (bounded, newest-first eviction order)."""
        with self._lock:
            out = []
            for (seq, dst), durations in self._records.items():
                msg_type, src = self._record_meta.get((seq, dst), ("", ""))
                out.append(
                    SpanRecord(
                        seq=seq,
                        msg_type=msg_type,
                        src=src,
                        dst=dst,
                        durations=tuple(sorted(durations.items())),
                    )
                )
            return out

    def edges(self) -> List[Tuple[str, str, str]]:
        """Observed (src, msg_type, dst) endpoint-name triples, sorted."""
        with self._lock:
            return sorted(self._edges)

    def pending_counts(self) -> Dict[str, int]:
        with self._lock:
            return {
                "sent": len(self._sent),
                "routed": len(self._routed),
                "delivered": len(self._delivered),
            }
