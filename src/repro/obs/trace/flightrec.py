"""Crash-time flight recorder: a fixed-size binary ring per process.

Commercial aircraft keep the last minutes of telemetry in a crash-survivable
ring; this module does the same for the asynchronous channel.  Every process
owns one :class:`FlightRecorder` — a preallocated ``bytearray`` of
fixed-size struct-packed records (32 bytes each: timestamp, interned kind
and source ids, seq, trace id).  Recording is a ``pack_into`` under one
lock: no allocation, no serialization, cheap enough to stay **always on**
(the overhead guard in ``tests/obs/test_trace_overhead.py`` holds it under
2% on the smoke workload).

On `TrainingFailedError`, a ``BackpressureError`` escalation, a broker
shutdown-audit failure, or ``SIGUSR2``, the ring is dumped to
``flightrec/*.bin`` (override with ``REPRO_FLIGHTREC_DIR``); the
``python -m repro.obs.trace`` CLI merges dumps from several processes into
one post-mortem timeline.  Set ``REPRO_FLIGHTREC=0`` to disable entirely.

This module is deliberately stdlib-only so ``repro.core`` hot paths can use
it without layering cycles.
"""

from __future__ import annotations

import json
import logging
import os
import signal
import struct
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

LOG = logging.getLogger("repro.obs.trace.flightrec")

#: dump-file magic + schema tag (bump together when the record layout changes)
MAGIC = b"FREC1\n"
FLIGHTREC_SCHEMA = "repro.flightrec/v1"

#: one record: ts (f64 monotonic), kind id (u32), source id (u32),
#: seq (i64, -1 when absent), trace id (u64, 0 when absent)
RECORD = struct.Struct("<dIIqQ")
RECORD_SIZE = RECORD.size

#: default ring capacity in records (8192 * 32 B = 256 KiB per process)
DEFAULT_CAPACITY = 8192

#: interned-string tables are bounded; overflow maps to id 0 ("?")
_MAX_INTERNED = 4096

_ENV_ENABLE = "REPRO_FLIGHTREC"
_ENV_CAPACITY = "REPRO_FLIGHTREC_CAPACITY"
_ENV_DIR = "REPRO_FLIGHTREC_DIR"


class FlightRecorder:
    """A bounded, allocation-free ring of binary trace records."""

    def __init__(
        self,
        process: str = "",
        capacity: int = DEFAULT_CAPACITY,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.process = process or f"pid{os.getpid()}"
        self.capacity = int(capacity)
        self._clock = clock
        self._buf = bytearray(self.capacity * RECORD_SIZE)
        self._head = 0  # total records ever written
        self._lock = threading.Lock()
        # id 0 is the overflow bucket for both tables
        self._kinds: List[str] = ["?"]
        self._kind_ids: Dict[str, int] = {"?": 0}
        self._sources: List[str] = ["?"]
        self._source_ids: Dict[str, int] = {"?": 0}

    # -- interning ----------------------------------------------------------
    def _intern(
        self, value: str, table: List[str], ids: Dict[str, int]
    ) -> int:
        # Fast path: dict reads are atomic in CPython; misses take the lock.
        found = ids.get(value)
        if found is not None:
            return found
        with self._lock:
            found = ids.get(value)
            if found is not None:
                return found
            if len(table) >= _MAX_INTERNED:
                return 0
            ids[value] = len(table)
            table.append(value)
            return ids[value]

    # -- hot path -----------------------------------------------------------
    def record(
        self, kind: str, source: str, seq: int = -1, trace: int = 0
    ) -> None:
        """Append one record, overwriting the oldest once the ring is full."""
        ts = self._clock()
        kind_id = self._kind_ids.get(kind)
        if kind_id is None:
            kind_id = self._intern(kind, self._kinds, self._kind_ids)
        source_id = self._source_ids.get(source)
        if source_id is None:
            source_id = self._intern(source, self._sources, self._source_ids)
        with self._lock:
            offset = (self._head % self.capacity) * RECORD_SIZE
            self._head += 1
            RECORD.pack_into(
                self._buf, offset, ts, kind_id, source_id,
                int(seq), int(trace) & 0xFFFFFFFFFFFFFFFF,
            )

    # -- introspection ------------------------------------------------------
    @property
    def count(self) -> int:
        """Records currently held (≤ capacity)."""
        with self._lock:
            return min(self._head, self.capacity)

    @property
    def total(self) -> int:
        """Records ever written (overwritten ones included)."""
        with self._lock:
            return self._head

    def _snapshot(self) -> Tuple[bytes, int, int, List[str], List[str]]:
        """Chronologically-ordered copy of the ring + tables."""
        with self._lock:
            head = self._head
            count = min(head, self.capacity)
            if head <= self.capacity:
                data = bytes(self._buf[: head * RECORD_SIZE])
            else:
                split = (head % self.capacity) * RECORD_SIZE
                data = bytes(self._buf[split:]) + bytes(self._buf[:split])
            return data, head, count, list(self._kinds), list(self._sources)

    def events(self) -> List[Dict[str, Any]]:
        """Decode the ring into event dicts (oldest first)."""
        data, _, count, kinds, sources = self._snapshot()
        return _decode_records(data, count, kinds, sources)

    # -- dumping ------------------------------------------------------------
    def dump(self, path: str, reason: str = "manual") -> str:
        """Write the ring to ``path`` (magic + JSON meta + raw records)."""
        data, head, count, kinds, sources = self._snapshot()
        meta = {
            "format": FLIGHTREC_SCHEMA,
            "process": self.process,
            "pid": os.getpid(),
            "reason": reason,
            "capacity": self.capacity,
            "count": count,
            "total": head,
            "overwritten": max(0, head - self.capacity),
            "kinds": kinds,
            "sources": sources,
            # Paired readings let the merger map monotonic ts to wall time.
            "wall_time": time.time(),
            "mono_time": self._clock(),
        }
        payload = json.dumps(meta, sort_keys=True).encode("utf-8")
        with open(path, "wb") as handle:
            handle.write(MAGIC)
            handle.write(struct.pack("<I", len(payload)))
            handle.write(payload)
            handle.write(data)
        return path


def _decode_records(
    data: bytes, count: int, kinds: List[str], sources: List[str]
) -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = []
    for index in range(count):
        ts, kind_id, source_id, seq, trace = RECORD.unpack_from(
            data, index * RECORD_SIZE
        )
        kind = kinds[kind_id] if kind_id < len(kinds) else "?"
        source = sources[source_id] if source_id < len(sources) else "?"
        detail: Dict[str, Any] = {}
        if seq >= 0:
            detail["seq"] = seq
        if trace:
            detail["trace"] = trace
        events.append(
            {"ts": ts, "kind": kind, "source": source, "detail": detail}
        )
    return events


def load_dump(path: str) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Read a dump file back as ``(meta, events)`` (oldest event first)."""
    with open(path, "rb") as handle:
        magic = handle.read(len(MAGIC))
        if magic != MAGIC:
            raise ValueError(f"{path}: not a flight-recorder dump")
        (meta_len,) = struct.unpack("<I", handle.read(4))
        meta = json.loads(handle.read(meta_len).decode("utf-8"))
        data = handle.read()
    count = min(int(meta.get("count", 0)), len(data) // RECORD_SIZE)
    events = _decode_records(
        data, count, list(meta.get("kinds", [])), list(meta.get("sources", []))
    )
    return meta, events


# -- per-process singleton ---------------------------------------------------
_STATE: Dict[str, Any] = {"pid": None, "recorder": None, "enabled": None}
_DUMP_COUNTER = {"n": 0}


def _env_enabled() -> bool:
    return os.environ.get(_ENV_ENABLE, "1") != "0"


def _env_capacity() -> int:
    try:
        return max(1, int(os.environ.get(_ENV_CAPACITY, DEFAULT_CAPACITY)))
    except ValueError:
        return DEFAULT_CAPACITY


def get_recorder() -> Optional[FlightRecorder]:
    """The process-wide recorder, or ``None`` when disabled.

    Re-created after fork (keyed on pid) so every explorer process gets its
    own ring instead of scribbling over an inherited copy.
    """
    pid = os.getpid()
    if _STATE["pid"] != pid:
        _STATE["pid"] = pid
        _STATE["enabled"] = _env_enabled()
        _STATE["recorder"] = (
            FlightRecorder(capacity=_env_capacity())
            if _STATE["enabled"]
            else None
        )
    return _STATE["recorder"]


def configure(
    *,
    enabled: Optional[bool] = None,
    capacity: Optional[int] = None,
    process: Optional[str] = None,
) -> Optional[FlightRecorder]:
    """Rebuild the process-wide recorder (tests and operators only)."""
    pid = os.getpid()
    _STATE["pid"] = pid
    if enabled is None:
        enabled = _env_enabled()
    _STATE["enabled"] = enabled
    if not enabled:
        _STATE["recorder"] = None
        return None
    recorder = FlightRecorder(
        process=process or "", capacity=capacity or _env_capacity()
    )
    _STATE["recorder"] = recorder
    return recorder


def set_process(name: str) -> None:
    """Label this process's recorder (shows up in dump metadata)."""
    recorder = get_recorder()
    if recorder is not None:
        recorder.process = name


def dump_dir() -> str:
    return os.environ.get(_ENV_DIR, "flightrec")


def dump_all(reason: str, directory: Optional[str] = None) -> Optional[str]:
    """Dump this process's ring to ``directory`` (best-effort).

    Called from failure paths, so it must never raise: an unwritable
    directory logs a warning and returns ``None``.
    """
    recorder = get_recorder()
    if recorder is None:
        return None
    directory = directory or dump_dir()
    _DUMP_COUNTER["n"] += 1
    filename = (
        f"{recorder.process}-{os.getpid()}-{reason}-{_DUMP_COUNTER['n']}.bin"
    )
    path = os.path.join(directory, filename)
    try:
        os.makedirs(directory, exist_ok=True)
        recorder.dump(path, reason)
    except OSError as exc:
        LOG.warning("flight recorder dump to %s failed: %s", path, exc)
        return None
    LOG.warning("flight recorder dumped to %s (reason: %s)", path, reason)
    return path


def install_signal_handler() -> bool:
    """Dump the ring on ``SIGUSR2``; best-effort (main thread only)."""
    if get_recorder() is None:
        return False

    def _handler(signum: int, frame: Any) -> None:  # pragma: no cover
        del signum, frame
        dump_all("sigusr2")

    try:
        signal.signal(signal.SIGUSR2, _handler)
    except (ValueError, AttributeError, OSError):
        return False  # non-main thread, or platform without SIGUSR2
    return True
