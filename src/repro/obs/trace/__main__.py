"""``python -m repro.obs.trace`` — offline trace tooling.

Subcommands::

    merge FILES...          join per-process traces into one timeline (JSON)
    critical-path FILES...  stage attribution + transmission-vs-train split
    export FILES... --format chrome
                            Perfetto-loadable Chrome-trace JSON
    validate TRACE.json     check an exported Chrome trace's invariants

``FILES`` are per-process trace files — JSONL rings written by
``Telemetry.export_trace`` / ``MpSession(trace_dir=...)`` or binary
flight-recorder dumps (``flightrec/*.bin``).  Directories are expanded to
every ``*.jsonl`` / ``*.bin`` inside, so ``python -m repro.obs.trace merge
flightrec/`` post-mortems a whole crash at once.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import Any, Dict, List, Optional, Tuple

from .chrome import to_chrome_trace, validate_chrome_trace
from .critical import analyze, format_report
from .events import load_trace_file
from .merge import MergedTrace, merge


def _expand_paths(paths: List[str]) -> List[str]:
    expanded: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            expanded.extend(
                sorted(glob.glob(os.path.join(path, "*.jsonl")))
                + sorted(glob.glob(os.path.join(path, "*.bin")))
            )
        else:
            expanded.append(path)
    return expanded


def _load_merged(paths: List[str], align: bool) -> MergedTrace:
    files = _expand_paths(paths)
    if not files:
        raise SystemExit("no trace files found")
    traces: List[Tuple[str, Any]] = []
    for path in files:
        process, events = load_trace_file(path)
        traces.append((process, events))
    return merge(traces, align=align)


def _emit(payload: Dict[str, Any], output: Optional[str]) -> None:
    text = json.dumps(payload, indent=2, sort_keys=True, default=str)
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {output}")
    else:
        print(text)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.trace",
        description="merge, analyze, and export distributed traces",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    merge_parser = sub.add_parser("merge", help="join per-process traces")
    merge_parser.add_argument("files", nargs="+")
    merge_parser.add_argument("-o", "--output")
    merge_parser.add_argument(
        "--no-align", action="store_true",
        help="skip clock alignment (trust raw timestamps)",
    )

    critical_parser = sub.add_parser(
        "critical-path", help="stage attribution + transmission-vs-train"
    )
    critical_parser.add_argument("files", nargs="+")
    critical_parser.add_argument("-o", "--output")
    critical_parser.add_argument(
        "--json", action="store_true", help="emit the full JSON report"
    )
    critical_parser.add_argument("--no-align", action="store_true")

    export_parser = sub.add_parser("export", help="timeline export")
    export_parser.add_argument("files", nargs="+")
    export_parser.add_argument(
        "--format", choices=("chrome",), default="chrome"
    )
    export_parser.add_argument("-o", "--output")
    export_parser.add_argument("--no-align", action="store_true")

    validate_parser = sub.add_parser(
        "validate", help="check an exported Chrome trace"
    )
    validate_parser.add_argument("trace")

    args = parser.parse_args(argv)

    if args.command == "merge":
        merged = _load_merged(args.files, align=not args.no_align)
        _emit(merged.to_dict(), args.output)
        return 0

    if args.command == "critical-path":
        merged = _load_merged(args.files, align=not args.no_align)
        report = analyze(merged)
        if args.json or args.output:
            _emit(report, args.output)
        if not args.json or args.output:
            print(format_report(report))
        return 0

    if args.command == "export":
        merged = _load_merged(args.files, align=not args.no_align)
        _emit(to_chrome_trace(merged), args.output)
        return 0

    if args.command == "validate":
        with open(args.trace, "r", encoding="utf-8") as handle:
            trace = json.load(handle)
        problems = validate_chrome_trace(trace)
        if problems:
            for problem in problems:
                print(f"INVALID: {problem}", file=sys.stderr)
            return 1
        events = trace.get("traceEvents", [])
        print(f"valid chrome trace ({len(events)} events)")
        return 0

    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":
    sys.exit(main())
