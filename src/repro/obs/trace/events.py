"""Trace-event normalization and JSONL trace files.

A *trace file* is what one process leaves behind for offline analysis:

* ``*.jsonl`` — one JSON object per line.  An optional first line
  ``{"meta": {...}}`` names the process; every other line is an event
  ``{"ts": float, "kind": str, "source": str, "detail": {...}}`` (the
  in-memory :class:`~repro.core.tracing.TraceEvent` shape).
* ``*.bin`` — a flight-recorder dump (see :mod:`.flightrec`).

:func:`load_trace_file` reads either and returns ``(process, events)``;
the merger (:mod:`.merge`) takes it from there.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional, Tuple

from . import flightrec

TRACE_SCHEMA = "repro.trace/v1"

#: message-lifecycle kinds in causal order (terminal kinds close a chain)
LIFECYCLE_KINDS = ("sent", "routed", "delivered", "consumed")
TERMINAL_KINDS = ("shed", "expired", "rejected")

_KIND_RANK = {
    kind: rank
    for rank, kind in enumerate(LIFECYCLE_KINDS + TERMINAL_KINDS)
}


def kind_rank(kind: str) -> int:
    """Causal ordering of lifecycle kinds (unknown kinds sort last)."""
    return _KIND_RANK.get(kind, len(_KIND_RANK))


def event_to_dict(event: Any) -> Dict[str, Any]:
    """Normalize a :class:`~repro.core.tracing.TraceEvent` (or dict)."""
    if isinstance(event, dict):
        return {
            "ts": float(event.get("ts", 0.0)),
            "kind": str(event.get("kind", "")),
            "source": str(event.get("source", "")),
            "detail": dict(event.get("detail") or {}),
        }
    return {
        "ts": float(event.timestamp),
        "kind": str(event.kind),
        "source": str(event.source),
        "detail": dict(event.detail),
    }


def write_events(
    path: str,
    events: Iterable[Any],
    *,
    process: Optional[str] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> str:
    """Write a JSONL trace file (meta line first when provided)."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    header: Dict[str, Any] = {"format": TRACE_SCHEMA}
    if process:
        header["process"] = process
    if meta:
        header.update(meta)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps({"meta": header}, sort_keys=True) + "\n")
        for event in events:
            handle.write(
                json.dumps(event_to_dict(event), sort_keys=True, default=str)
                + "\n"
            )
    return path


def read_events(path: str) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Read a JSONL trace file back as ``(meta, events)``."""
    meta: Dict[str, Any] = {}
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            if "meta" in obj and "kind" not in obj:
                meta = dict(obj["meta"])
                continue
            events.append(event_to_dict(obj))
    return meta, events


def load_trace_file(path: str) -> Tuple[str, List[Dict[str, Any]]]:
    """Load one per-process trace (JSONL or flight-recorder dump).

    Returns ``(process_name, events)``; the process name falls back to the
    file's basename when the file carries none.
    """
    if path.endswith(".bin"):
        meta, events = flightrec.load_dump(path)
    else:
        meta, events = read_events(path)
    process = str(
        meta.get("process")
        or os.path.splitext(os.path.basename(path))[0]
    )
    return process, events
