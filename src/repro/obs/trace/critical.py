"""Critical-path analysis over a merged trace — an automated Table 1.

The paper's Table 1 splits one training iteration into *transmission* and
*train* time by hand-instrumenting each framework.  Given a merged trace
this module derives the same split automatically:

* **message stages** come from chain event gaps — ``send`` (sent→routed:
  serialize + queue-wait), ``route`` (routed→delivered: routing + link +
  deserialize), ``deliver`` (sent→delivered: whole transmission), and
  ``dwell`` (delivered→consumed: receive-buffer wait);
* **explicit stages** come from ``stage_begin``/``stage_end`` event pairs
  (benchmarks and the mp learner emit these around transmission and train
  phases);
* **iterations** are delimited by ``train_start``/``train_end`` pairs; each
  iteration's critical path is the chain whose ``consumed`` event gated the
  train step, plus the learner's wait gap and the train duration itself.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .merge import Chain, MergedTrace

#: chain stages, as (name, start_kind, end_kind)
CHAIN_STAGES: Tuple[Tuple[str, str, str], ...] = (
    ("send", "sent", "routed"),
    ("route", "routed", "delivered"),
    ("deliver", "sent", "delivered"),
    ("dwell", "delivered", "consumed"),
)


class _StageAccumulator:
    def __init__(self) -> None:
        self._stages: Dict[str, List[float]] = {}

    def add(self, stage: str, seconds: float) -> None:
        self._stages.setdefault(stage, []).append(max(0.0, seconds))

    def summary(self) -> Dict[str, Dict[str, float]]:
        out: Dict[str, Dict[str, float]] = {}
        for stage, values in sorted(self._stages.items()):
            total = sum(values)
            out[stage] = {
                "count": float(len(values)),
                "total_s": total,
                "mean_s": total / len(values),
                "max_s": max(values),
            }
        return out

    def total(self, stage: str) -> Optional[float]:
        values = self._stages.get(stage)
        return sum(values) if values else None


def _explicit_stages(merged: MergedTrace) -> _StageAccumulator:
    """Match ``stage_begin``/``stage_end`` pairs per (source, stage)."""
    acc = _StageAccumulator()
    open_stages: Dict[Tuple[str, str], List[float]] = {}
    for event in merged.events:
        detail = event["detail"]
        if event["kind"] == "stage_begin":
            key = (event["source"], str(detail.get("stage")))
            open_stages.setdefault(key, []).append(event["ts"])
        elif event["kind"] == "stage_end":
            key = (event["source"], str(detail.get("stage")))
            starts = open_stages.get(key)
            if starts:
                acc.add(key[1], event["ts"] - starts.pop(0))
        elif event["kind"] == "stage" and "seconds" in detail:
            acc.add(str(detail.get("stage")), float(detail["seconds"]))
    return acc


def _train_sessions(merged: MergedTrace) -> List[Tuple[float, float, str]]:
    """(start_ts, end_ts, source) per train_start/train_end pair."""
    sessions: List[Tuple[float, float, str]] = []
    open_starts: Dict[str, List[float]] = {}
    for event in merged.events:
        if event["kind"] == "train_start":
            open_starts.setdefault(event["source"], []).append(event["ts"])
        elif event["kind"] == "train_end":
            starts = open_starts.get(event["source"])
            if starts:
                sessions.append((starts.pop(0), event["ts"], event["source"]))
    sessions.sort()
    return sessions


def _gating_chain(
    chains: List[Chain], window_start: float, window_end: float
) -> Optional[Tuple[Chain, float]]:
    """The chain whose ``consumed`` landed last inside the window."""
    best: Optional[Tuple[Chain, float]] = None
    for chain in chains:
        consumed = chain.last("consumed")
        if consumed is None:
            continue
        ts = consumed["ts"]
        if window_start <= ts <= window_end:
            if best is None or ts > best[1]:
                best = (chain, ts)
    return best


def analyze(merged: MergedTrace) -> Dict[str, Any]:
    """Stage attribution + per-iteration critical paths for one trace."""
    chain_acc = _StageAccumulator()
    for chain in merged.chains:
        for stage, start_kind, end_kind in CHAIN_STAGES:
            gap = chain.gap(start_kind, end_kind)
            if gap is not None:
                chain_acc.add(stage, gap)

    explicit_acc = _explicit_stages(merged)
    sessions = _train_sessions(merged)

    iterations: List[Dict[str, Any]] = []
    previous_start = float("-inf")
    for start, end, source in sessions:
        iteration: Dict[str, Any] = {
            "train_start": start,
            "train_end": end,
            "train_s": end - start,
            "source": source,
        }
        gate = _gating_chain(merged.chains, previous_start, start)
        if gate is not None:
            chain, consumed_ts = gate
            iteration["gate_trace"] = chain.trace_hex
            iteration["wait_s"] = max(0.0, start - consumed_ts)
            stages: Dict[str, float] = {}
            for stage, start_kind, end_kind in CHAIN_STAGES:
                gap = chain.gap(start_kind, end_kind)
                if gap is not None:
                    stages[stage] = gap
            iteration["stages"] = stages
        previous_start = start
        iterations.append(iteration)

    # Transmission: explicit "transmission" stages when instrumented
    # (benchmarks), else the sum of whole-chain deliver gaps.
    transmission = explicit_acc.total("transmission")
    transmission_source = "stage_events"
    if transmission is None:
        transmission = chain_acc.total("deliver") or 0.0
        transmission_source = "chain_deliver_gaps"
    train = explicit_acc.total("train")
    train_source = "stage_events"
    if train is None:
        train = sum(end - start for start, end, _ in sessions)
        train_source = "train_sessions"

    stages = chain_acc.summary()
    stages.update(explicit_acc.summary())
    return {
        "stages": stages,
        "iterations": iterations,
        "chain_stats": merged.chain_stats(),
        "transmission_vs_train": {
            "transmission_s": transmission,
            "train_s": train,
            "ratio": (transmission / train) if train else None,
            "transmission_from": transmission_source,
            "train_from": train_source,
        },
    }


def format_report(report: Dict[str, Any]) -> str:
    """Human-readable rendering of :func:`analyze` (the CLI default)."""
    lines: List[str] = []
    stages = report.get("stages", {})
    if stages:
        lines.append("stage            count      mean        total")
        for name, summary in stages.items():
            lines.append(
                f"{name:<14} {int(summary['count']):>7} "
                f"{summary['mean_s'] * 1e3:>8.3f}ms "
                f"{summary['total_s']:>10.6f}s"
            )
    split = report.get("transmission_vs_train", {})
    if split:
        ratio = split.get("ratio")
        lines.append("")
        lines.append(
            f"transmission {split.get('transmission_s', 0.0):.6f}s "
            f"({split.get('transmission_from')})  vs  "
            f"train {split.get('train_s', 0.0):.6f}s "
            f"({split.get('train_from')})"
            + (f"  ratio {ratio:.3f}" if ratio is not None else "")
        )
    chain_stats = report.get("chain_stats", {})
    if chain_stats:
        lines.append(
            f"chains: {chain_stats.get('total', 0)} total, "
            f"{chain_stats.get('complete', 0)} complete, "
            f"{chain_stats.get('open', 0)} open "
            f"({chain_stats.get('lost', 0)} lost), "
            f"terminal {chain_stats.get('terminal', {})}"
        )
    iterations = report.get("iterations", [])
    if iterations:
        lines.append(f"iterations: {len(iterations)}")
    return "\n".join(lines) if lines else "(empty trace)"
