"""Chrome-trace (Perfetto-loadable) timeline export.

Emits the Trace Event Format JSON that ``chrome://tracing`` and
https://ui.perfetto.dev consume: one *track* per event source (endpoint,
router, queue), duration slices (``B``/``E`` pairs) for each chain stage,
flow arrows (``s``/``f`` pairs keyed by trace id) across process
boundaries, and instant events for terminal outcomes.

Slices within one track are packed onto greedy non-overlapping lanes
(``tid``), so every track renders without slice nesting ambiguity and the
validator's invariants hold by construction: per-(pid, tid) timestamps are
monotonic, every ``B`` has a matching ``E``, and every flow ``f`` resolves
to an earlier ``s`` with the same id.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ...core.message import format_trace_id
from .events import TERMINAL_KINDS
from .merge import MergedTrace

CHROME_SCHEMA = "repro.trace.chrome/v1"

#: stage slices drawn per chain: (name, start_kind, end_kind).  ``deliver``
#: is deliberately absent — it is the sum of ``send`` + ``route`` and would
#: double-draw the same wall-clock interval.
_SLICES: Tuple[Tuple[str, str, str], ...] = (
    ("send", "sent", "routed"),
    ("route", "routed", "delivered"),
    ("dwell", "delivered", "consumed"),
)


class _LaneAllocator:
    """Greedy non-overlapping lane (tid) assignment per track."""

    def __init__(self) -> None:
        self._lanes: Dict[int, List[float]] = {}

    def lane(self, pid: int, start: float, end: float) -> int:
        lanes = self._lanes.setdefault(pid, [])
        for index, busy_until in enumerate(lanes):
            if start >= busy_until:
                lanes[index] = end
                return index
        lanes.append(end)
        return len(lanes) - 1


def _micros(seconds: float, origin: float) -> float:
    return max(0.0, (seconds - origin) * 1e6)


def to_chrome_trace(merged: MergedTrace) -> Dict[str, Any]:
    """Convert a merged trace into a Trace Event Format dict."""
    origin = min(
        (event["ts"] for event in merged.events), default=0.0
    )
    sources = sorted({event["source"] for event in merged.events})
    pids = {source: index + 1 for index, source in enumerate(sources)}
    lanes = _LaneAllocator()
    trace_events: List[Dict[str, Any]] = []

    for source, pid in pids.items():
        trace_events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": source},
        })

    spans: List[Dict[str, Any]] = []  # (B, E) pairs built below
    instants: List[Dict[str, Any]] = []
    flows: List[Dict[str, Any]] = []

    def add_span(
        source: str, name: str, start: float, end: float,
        args: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, int]:
        pid = pids[source]
        start_us = _micros(start, origin)
        end_us = _micros(max(end, start), origin)
        tid = lanes.lane(pid, start_us, end_us)
        spans.append({
            "name": name, "ph": "B", "pid": pid, "tid": tid,
            "ts": start_us, "cat": "trace", "args": args or {},
        })
        spans.append({
            "name": name, "ph": "E", "pid": pid, "tid": tid, "ts": end_us,
            "cat": "trace",
        })
        return pid, tid

    # -- chain stage slices + cross-process flow arrows ---------------------
    for chain in merged.chains:
        args = {"trace": chain.trace_hex}
        sent = chain.first("sent")
        delivered = chain.first("delivered")
        if sent is not None:
            args.setdefault("seq", sent["detail"].get("seq"))
            args.setdefault("type", sent["detail"].get("type"))
        for name, start_kind, end_kind in _SLICES:
            start = chain.first(start_kind)
            end = chain.first(end_kind)
            if start is None or end is None:
                continue
            add_span(start["source"], name, start["ts"], end["ts"], dict(args))
        if sent is not None and delivered is not None:
            start_us = _micros(sent["ts"], origin)
            end_us = _micros(max(delivered["ts"], sent["ts"]), origin)
            flows.append({
                "name": "msg", "ph": "s", "cat": "flow",
                "id": chain.trace_hex, "pid": pids[sent["source"]],
                "tid": 0, "ts": start_us,
            })
            flows.append({
                "name": "msg", "ph": "f", "bp": "e", "cat": "flow",
                "id": chain.trace_hex, "pid": pids[delivered["source"]],
                "tid": 0, "ts": end_us,
            })
        for event in chain.events:
            if event["kind"] in TERMINAL_KINDS:
                instants.append({
                    "name": event["kind"], "ph": "i", "s": "t",
                    "pid": pids[event["source"]], "tid": 0,
                    "ts": _micros(event["ts"], origin), "cat": "terminal",
                    "args": dict(args),
                })

    # -- explicit stage + train slices --------------------------------------
    open_stages: Dict[Tuple[str, str], List[float]] = {}
    for event in merged.events:
        kind = event["kind"]
        detail = event["detail"]
        if kind == "stage_begin":
            key = (event["source"], str(detail.get("stage")))
            open_stages.setdefault(key, []).append(event["ts"])
        elif kind == "stage_end":
            key = (event["source"], str(detail.get("stage")))
            starts = open_stages.get(key)
            if starts:
                add_span(
                    event["source"], key[1], starts.pop(0), event["ts"],
                    {k: v for k, v in detail.items() if k != "stage"},
                )
        elif kind == "train_start":
            open_stages.setdefault((event["source"], "train"), []).append(
                event["ts"]
            )
        elif kind == "train_end":
            starts = open_stages.get((event["source"], "train"))
            if starts:
                add_span(event["source"], "train", starts.pop(0), event["ts"])

    # Deterministic, validator-friendly order: by ts, with E before B at
    # equal timestamps so back-to-back lane reuse still balances.
    phase_order = {"M": 0, "E": 1, "B": 2, "s": 3, "f": 4, "i": 5}
    trace_events.extend(spans)
    trace_events.extend(flows)
    trace_events.extend(instants)
    trace_events.sort(
        key=lambda event: (
            event.get("ts", -1.0), phase_order.get(event["ph"], 9)
        )
    )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "metadata": {"format": CHROME_SCHEMA, "processes": sources},
    }


def validate_chrome_trace(trace: Any) -> List[str]:
    """Validate exported Chrome-trace JSON; returns a list of problems.

    Checks the acceptance invariants: ``traceEvents`` structure, monotonic
    timestamps per (pid, tid) track, every ``B`` closed by a matching
    ``E``, and every flow-finish ``f`` resolving to an earlier ``s`` with
    the same id (cross-process flows resolve by trace id).
    """
    problems: List[str] = []
    if not isinstance(trace, dict):
        return ["trace must be a JSON object"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    last_ts: Dict[Tuple[int, int], float] = {}
    stacks: Dict[Tuple[int, int], List[str]] = {}
    flow_starts: set = set()
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index}: not an object")
            continue
        phase = event.get("ph")
        if phase not in ("B", "E", "M", "s", "f", "i", "X"):
            problems.append(f"event {index}: unknown phase {phase!r}")
            continue
        if phase == "M":
            continue
        pid, tid = event.get("pid"), event.get("tid")
        ts = event.get("ts")
        if not isinstance(pid, int) or not isinstance(tid, int):
            problems.append(f"event {index}: missing pid/tid")
            continue
        if not isinstance(ts, (int, float)):
            problems.append(f"event {index}: missing ts")
            continue
        if phase in ("B", "E"):
            track = (pid, tid)
            previous = last_ts.get(track)
            if previous is not None and ts < previous:
                problems.append(
                    f"event {index}: ts {ts} < {previous} on track {track}"
                )
            last_ts[track] = ts
            stack = stacks.setdefault(track, [])
            if phase == "B":
                stack.append(str(event.get("name")))
            else:
                if not stack:
                    problems.append(
                        f"event {index}: E with no open B on track {track}"
                    )
                elif stack[-1] != str(event.get("name")):
                    problems.append(
                        f"event {index}: E {event.get('name')!r} does not "
                        f"close B {stack[-1]!r} on track {track}"
                    )
                    stack.pop()
                else:
                    stack.pop()
        elif phase == "s":
            flow_starts.add(event.get("id"))
        elif phase == "f":
            if event.get("id") not in flow_starts:
                problems.append(
                    f"event {index}: flow finish id {event.get('id')!r} "
                    "has no earlier start"
                )
    for track, stack in stacks.items():
        if stack:
            problems.append(
                f"track {track}: {len(stack)} unclosed B event(s): {stack}"
            )
    return problems
