"""Distributed causal tracing (docs/OBSERVABILITY.md).

* :mod:`repro.obs.trace.flightrec` — always-on per-process binary flight
  recorder ring, dumped on crashes (``flightrec/*.bin``);
* :mod:`repro.obs.trace.events` — JSONL trace files + event normalization;
* :mod:`repro.obs.trace.merge` — join per-process rings by trace id, with
  dedup, clock alignment, and lost-chain markers;
* :mod:`repro.obs.trace.critical` — per-iteration critical paths with
  stage attribution (the automated Table 1);
* :mod:`repro.obs.trace.chrome` — Perfetto-loadable Chrome-trace export
  plus a schema validator;
* ``python -m repro.obs.trace`` — the ``merge`` / ``critical-path`` /
  ``export`` / ``validate`` CLI.
"""

from .chrome import CHROME_SCHEMA, to_chrome_trace, validate_chrome_trace
from .critical import analyze, format_report
from .events import (
    TRACE_SCHEMA,
    event_to_dict,
    load_trace_file,
    read_events,
    write_events,
)
from .flightrec import (
    FLIGHTREC_SCHEMA,
    FlightRecorder,
    configure,
    dump_all,
    get_recorder,
    install_signal_handler,
    load_dump,
    set_process,
)
from .merge import Chain, MergedTrace, merge

__all__ = [
    "CHROME_SCHEMA",
    "FLIGHTREC_SCHEMA",
    "TRACE_SCHEMA",
    "Chain",
    "FlightRecorder",
    "MergedTrace",
    "analyze",
    "configure",
    "dump_all",
    "event_to_dict",
    "format_report",
    "get_recorder",
    "install_signal_handler",
    "load_dump",
    "load_trace_file",
    "merge",
    "read_events",
    "set_process",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_events",
]
