"""Join per-process trace rings into one causally-consistent timeline.

Every message carries a u64 trace id (stamped at ``make_header``), so its
events — ``sent`` in the producing process, ``routed`` in the broker,
``delivered``/``consumed`` in the consuming process, or a terminal
``shed``/``expired``/``rejected`` in a flow-controlled queue — can be
re-joined offline into a *chain* even though each process recorded them
into its own ring.

The merger:

* **dedups** events by span/trace id — a link that duplicates a message
  (see :class:`repro.testing.faults.FaultyLink`) yields two identical
  ``delivered`` records; only the earliest survives;
* **clock-aligns** processes — per-process monotonic clocks can disagree,
  so offsets are relaxed until no effect precedes its cause (on one Linux
  host ``CLOCK_MONOTONIC`` is system-wide and offsets stay ~0);
* marks chains that never reached a terminal or delivered state as
  **lost** (open spans — dropped messages under fault injection).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ...core.message import format_trace_id
from .events import TERMINAL_KINDS, event_to_dict, kind_rank

#: clock-alignment relaxation passes (see :func:`_align_clocks`)
_ALIGN_PASSES = 4


@dataclass
class Chain:
    """All events of one message's causal chain, ordered causally."""

    trace: int
    events: List[Dict[str, Any]] = field(default_factory=list)
    status: str = "open"
    lost: bool = False

    def first(self, kind: str) -> Optional[Dict[str, Any]]:
        for event in self.events:
            if event["kind"] == kind:
                return event
        return None

    def last(self, kind: str) -> Optional[Dict[str, Any]]:
        found = None
        for event in self.events:
            if event["kind"] == kind:
                found = event
        return found

    def gap(self, start_kind: str, end_kind: str) -> Optional[float]:
        """Seconds between the first ``start_kind`` and first ``end_kind``."""
        start = self.first(start_kind)
        end = self.first(end_kind)
        if start is None or end is None:
            return None
        return max(0.0, end["ts"] - start["ts"])

    @property
    def trace_hex(self) -> str:
        return format_trace_id(self.trace)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace": self.trace_hex,
            "status": self.status,
            "lost": self.lost,
            "events": self.events,
        }


@dataclass
class MergedTrace:
    """Result of :func:`merge`: aligned events plus per-message chains."""

    processes: List[str]
    offsets: Dict[str, float]
    events: List[Dict[str, Any]]
    chains: List[Chain]
    duplicates_dropped: int = 0

    def chain(self, trace: int) -> Optional[Chain]:
        for chain in self.chains:
            if chain.trace == trace:
                return chain
        return None

    def chain_stats(self) -> Dict[str, Any]:
        stats: Dict[str, Any] = {
            "total": len(self.chains),
            "complete": 0,
            "open": 0,
            "lost": 0,
            "terminal": {},
        }
        for chain in self.chains:
            if chain.status == "complete":
                stats["complete"] += 1
            elif chain.status in TERMINAL_KINDS:
                terminal = stats["terminal"]
                terminal[chain.status] = terminal.get(chain.status, 0) + 1
            else:
                stats["open"] += 1
            if chain.lost:
                stats["lost"] += 1
        return stats

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": "repro.trace.merged/v1",
            "processes": self.processes,
            "offsets": self.offsets,
            "duplicates_dropped": self.duplicates_dropped,
            "chains": [chain.to_dict() for chain in self.chains],
            "chain_stats": self.chain_stats(),
            "events": self.events,
        }


def _dedup_key(event: Dict[str, Any]) -> Optional[Tuple[Any, ...]]:
    """Identity of a message-lifecycle event; ``None`` = never dedup."""
    detail = event["detail"]
    span = detail.get("span") or detail.get("trace")
    if span is None:
        return None
    return (event["kind"], event["source"], span, detail.get("seq"))


def _align_clocks(
    by_process: Dict[str, List[Dict[str, Any]]],
) -> Dict[str, float]:
    """Per-process offsets such that no effect precedes its cause.

    Builds (cause, effect) constraints from same-trace event pairs that
    crossed a process boundary and relaxes offsets upward until every
    constraint holds (bounded passes — cycles cannot occur because the
    relation follows lifecycle order).
    """
    offsets = {process: 0.0 for process in by_process}
    # (cause_process, cause_ts, effect_process, effect_ts)
    constraints: List[Tuple[str, float, str, float]] = []
    chains: Dict[Any, List[Tuple[str, Dict[str, Any]]]] = {}
    for process, events in by_process.items():
        for event in events:
            trace = event["detail"].get("trace")
            if trace is not None:
                chains.setdefault(trace, []).append((process, event))
    for members in chains.values():
        # One representative per lifecycle kind (the earliest), in causal
        # order — concurrent same-kind events (fan-out deliveries) are not
        # ordered against each other.
        by_kind: Dict[int, Tuple[str, Dict[str, Any]]] = {}
        for process, event in members:
            rank = kind_rank(event["kind"])
            held = by_kind.get(rank)
            if held is None or event["ts"] < held[1]["ts"]:
                by_kind[rank] = (process, event)
        ordered = [by_kind[rank] for rank in sorted(by_kind)]
        for (proc_a, event_a), (proc_b, event_b) in zip(ordered, ordered[1:]):
            if proc_a != proc_b:
                constraints.append(
                    (proc_a, event_a["ts"], proc_b, event_b["ts"])
                )
    for _ in range(_ALIGN_PASSES):
        dirty = False
        for proc_a, ts_a, proc_b, ts_b in constraints:
            violation = (ts_a + offsets[proc_a]) - (ts_b + offsets[proc_b])
            if violation > 0:
                offsets[proc_b] += violation
                dirty = True
        if not dirty:
            break
    return offsets


def merge(
    traces: Sequence[Tuple[str, Sequence[Any]]], *, align: bool = True
) -> MergedTrace:
    """Merge ``[(process_name, events), ...]`` into one timeline.

    ``events`` may be :class:`~repro.core.tracing.TraceEvent` objects or
    already-normalized dicts (flight-recorder decodes, JSONL reads).
    """
    by_process: Dict[str, List[Dict[str, Any]]] = {}
    duplicates = 0
    seen: set = set()
    for process, raw_events in traces:
        bucket = by_process.setdefault(process, [])
        for raw in raw_events:
            event = event_to_dict(raw)
            key = _dedup_key(event)
            if key is not None:
                if key in seen:
                    duplicates += 1
                    continue
                seen.add(key)
            bucket.append(event)

    offsets = _align_clocks(by_process) if align else {
        process: 0.0 for process in by_process
    }

    merged_events: List[Dict[str, Any]] = []
    for process, events in by_process.items():
        offset = offsets[process]
        for event in events:
            aligned = dict(event)
            aligned["ts"] = event["ts"] + offset
            aligned["process"] = process
            merged_events.append(aligned)
    merged_events.sort(key=lambda event: event["ts"])

    chains = _build_chains(merged_events)
    return MergedTrace(
        processes=sorted(by_process),
        offsets=offsets,
        events=merged_events,
        chains=chains,
        duplicates_dropped=duplicates,
    )


def _build_chains(events: Sequence[Dict[str, Any]]) -> List[Chain]:
    grouped: Dict[int, List[Dict[str, Any]]] = {}
    for event in events:
        trace = event["detail"].get("trace")
        if trace is None:
            continue
        grouped.setdefault(int(trace), []).append(event)
    chains: List[Chain] = []
    for trace, members in sorted(grouped.items()):
        members.sort(key=lambda event: (kind_rank(event["kind"]), event["ts"]))
        kinds = {event["kind"] for event in members}
        terminal = next(
            (kind for kind in TERMINAL_KINDS if kind in kinds), None
        )
        if terminal is not None:
            status = terminal
            lost = False
        elif "consumed" in kinds:
            status = "complete"
            lost = False
        elif "delivered" in kinds:
            status = "open"  # delivered but never read (e.g. shutdown)
            lost = False
        else:
            status = "open"
            lost = True  # dropped in flight: an open span with no outcome
        chains.append(Chain(trace, members, status, lost))
    return chains
