"""Thread-safe metrics primitives: Counter, Gauge, Histogram, registry.

The unified telemetry layer (docs/OBSERVABILITY.md) hangs off one
:class:`MetricsRegistry` per run.  Instruments are identified by a metric
name plus a frozen label set — asking the registry for the same
(name, labels) pair twice returns the same instrument, so hot paths can
resolve their instrument once at attach time and then pay only a single
lock acquire + arithmetic per recording.

Design constraints, in order:

* **cheap hot path** — ``Counter.inc`` / ``Histogram.observe`` are one
  mutex and a couple of float ops; no allocation, no string formatting;
* **deterministic export** — :func:`repro.obs.exporters.snapshot` and the
  Prometheus exposition sort by (name, labels) so two identical runs
  produce byte-identical artifacts modulo the recorded values;
* **no dependencies** — stdlib only, mirroring the rest of ``repro.core``.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.concurrency import make_lock

Labels = Tuple[Tuple[str, str], ...]
"""Canonical (sorted, frozen) label representation used as part of keys."""

#: Default latency buckets (seconds): ~10µs .. 10s, roughly 1-2-5 decades.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-5, 2e-5, 5e-5,
    1e-4, 2e-4, 5e-4,
    1e-3, 2e-3, 5e-3,
    1e-2, 2e-2, 5e-2,
    1e-1, 2e-1, 5e-1,
    1.0, 2.0, 5.0, 10.0,
)

#: Default size buckets (bytes): 64B .. 64MB in powers of four.
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = tuple(
    float(64 * 4 ** power) for power in range(11)
)


def canonical_labels(labels: Optional[Dict[str, str]]) -> Labels:
    """Freeze a label dict into the registry's canonical key form."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing sum."""

    kind = "counter"

    def __init__(self, name: str, labels: Labels = (), help: str = ""):
        self.name = name
        self.labels = labels
        self.help = help
        self._lock = make_lock(f"obs.counter.{name}")
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value, optionally keeping a bounded sample series.

    The periodic sampler stores queue depths here; ``series()`` returns the
    retained ``(timestamp, value)`` samples (newest ``series_capacity``)
    for the queue-depth-over-time exports.
    """

    kind = "gauge"

    def __init__(
        self,
        name: str,
        labels: Labels = (),
        help: str = "",
        series_capacity: int = 0,
    ):
        self.name = name
        self.labels = labels
        self.help = help
        self._lock = make_lock(f"obs.gauge.{name}")
        self._value = 0.0
        self._series: Optional[Deque[Tuple[float, float]]] = (
            deque(maxlen=series_capacity) if series_capacity > 0 else None
        )

    def set(self, value: float, timestamp: Optional[float] = None) -> None:
        with self._lock:
            self._value = float(value)
            if self._series is not None and timestamp is not None:
                self._series.append((timestamp, float(value)))

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def series(self) -> List[Tuple[float, float]]:
        with self._lock:
            return list(self._series) if self._series is not None else []


class Histogram:
    """Fixed-bucket histogram with percentile estimation.

    Buckets are upper bounds (ascending); an implicit +Inf bucket catches
    overflow.  ``quantile(q)`` interpolates linearly inside the bucket that
    contains the q-th sample, which is exact enough for the latency-figure
    comparisons while keeping ``observe`` O(log buckets) with no growth.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Labels = (),
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError("histogram buckets must be non-empty and ascending")
        self.name = name
        self.labels = labels
        self.help = help
        self.bounds = bounds
        self._lock = make_lock(f"obs.histogram.{name}")
        self._counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    # -- reads -------------------------------------------------------------
    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, +Inf last."""
        with self._lock:
            counts = list(self._counts)
        cumulative: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, counts):
            running += count
            cumulative.append((bound, running))
        cumulative.append((math.inf, running + counts[-1]))
        return cumulative

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            counts = list(self._counts)
            total = self._count
            low, high = self._min, self._max
        if total == 0:
            return 0.0
        target = q * total
        running = 0.0
        for index, count in enumerate(counts):
            if running + count >= target and count > 0:
                lower = self.bounds[index - 1] if index > 0 else min(low, self.bounds[0])
                upper = self.bounds[index] if index < len(self.bounds) else high
                upper = min(upper, high) if high >= lower else upper
                fraction = (target - running) / count
                return lower + (upper - lower) * max(0.0, min(1.0, fraction))
            running += count
        return high if high > -math.inf else 0.0


class MetricsRegistry:
    """Process-local registry handing out (and retaining) instruments.

    ``namespace`` is prefixed to every metric name at export time
    (``xt_message_stage_seconds``), keeping recording sites short.
    """

    def __init__(self, namespace: str = "xt"):
        self.namespace = namespace
        self._lock = make_lock("obs.registry")
        self._metrics: Dict[Tuple[str, str, Labels], object] = {}

    def _get(self, kind: str, name: str, labels: Labels, factory):
        key = (kind, name, labels)
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                for (other_kind, other_name, _), _metric in self._metrics.items():
                    if other_name == name and other_kind != kind:
                        raise ValueError(
                            f"metric {name!r} already registered as {other_kind}"
                        )
                metric = factory()
                self._metrics[key] = metric
            return metric

    def counter(
        self, name: str, labels: Optional[Dict[str, str]] = None, help: str = ""
    ) -> Counter:
        frozen = canonical_labels(labels)
        return self._get(
            "counter", name, frozen, lambda: Counter(name, frozen, help)
        )

    def gauge(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        help: str = "",
        series_capacity: int = 0,
    ) -> Gauge:
        frozen = canonical_labels(labels)
        return self._get(
            "gauge",
            name,
            frozen,
            lambda: Gauge(name, frozen, help, series_capacity=series_capacity),
        )

    def histogram(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        frozen = canonical_labels(labels)
        return self._get(
            "histogram",
            name,
            frozen,
            lambda: Histogram(name, frozen, help, buckets=buckets),
        )

    def collect(self) -> List[object]:
        """Every registered instrument, sorted by (name, labels)."""
        with self._lock:
            metrics = list(self._metrics.values())
        return sorted(metrics, key=lambda m: (m.name, m.labels))  # type: ignore[attr-defined]

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)


def labels_dict(labels: Labels) -> Dict[str, str]:
    """Back to a plain dict (for JSON export)."""
    return dict(labels)


def merge_labels(
    base: Optional[Dict[str, str]], extra: Optional[Dict[str, str]]
) -> Dict[str, str]:
    merged: Dict[str, str] = dict(base or {})
    merged.update(extra or {})
    return merged
