"""Hyperparameter mutation and crossover strategies for PBT."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Sequence

import numpy as np


@dataclass
class HyperparameterSpace:
    """Searchable hyperparameters.

    ``continuous`` maps names to (low, high) bounds (log-uniform when both
    bounds are positive and span ≥10x); ``categorical`` maps names to the
    researcher-supplied lists of alternatives (the paper's configuration
    lists).
    """

    continuous: Dict[str, tuple] = field(default_factory=dict)
    categorical: Dict[str, Sequence[Any]] = field(default_factory=dict)

    def sample(self, rng: np.random.Generator) -> Dict[str, Any]:
        values: Dict[str, Any] = {}
        for name, (low, high) in self.continuous.items():
            if low > 0 and high / low >= 10:
                values[name] = float(np.exp(rng.uniform(np.log(low), np.log(high))))
            else:
                values[name] = float(rng.uniform(low, high))
        for name, options in self.categorical.items():
            values[name] = options[int(rng.integers(len(options)))]
        return values

    def clip(self, values: Dict[str, Any]) -> Dict[str, Any]:
        clipped = dict(values)
        for name, (low, high) in self.continuous.items():
            if name in clipped:
                clipped[name] = float(np.clip(clipped[name], low, high))
        return clipped


def mutate(
    values: Dict[str, Any],
    space: HyperparameterSpace,
    rng: np.random.Generator,
    *,
    perturb_factors: Sequence[float] = (0.8, 1.25),
    resample_prob: float = 0.25,
) -> Dict[str, Any]:
    """PBT explore step: perturb continuous values, resample categoricals."""
    mutated = dict(values)
    for name in space.continuous:
        if name not in mutated:
            continue
        if rng.random() < resample_prob:
            mutated[name] = space.sample(rng)[name]
        else:
            factor = perturb_factors[int(rng.integers(len(perturb_factors)))]
            mutated[name] = mutated[name] * factor
    for name, options in space.categorical.items():
        if rng.random() < resample_prob:
            mutated[name] = options[int(rng.integers(len(options)))]
    return space.clip(mutated)


def crossover(
    parent_a: Dict[str, Any],
    parent_b: Dict[str, Any],
    rng: np.random.Generator,
) -> Dict[str, Any]:
    """Uniform crossover of two hyperparameter combinations."""
    child: Dict[str, Any] = {}
    for name in set(parent_a) | set(parent_b):
        if name in parent_a and name in parent_b:
            child[name] = parent_a[name] if rng.random() < 0.5 else parent_b[name]
        else:
            child[name] = parent_a.get(name, parent_b.get(name))
    return child
