"""The PBT scheduler (paper §4.3).

The center controller acts as the PBT scheduler: every evolution interval
it evaluates metrics from each population, eliminates the worst, computes a
new hyperparameter combination (mutation of the best, optionally crossed
with a runner-up), and starts a replacement population carrying the best
population's DNN weights.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..core.config import XingTianConfig
from .mutation import HyperparameterSpace, crossover, mutate
from .population import Population, PopulationResult


@dataclass
class GenerationRecord:
    generation: int
    results: List[PopulationResult]
    eliminated_rank: int
    new_hyperparameters: Dict[str, Any]


@dataclass
class PBTResult:
    best_hyperparameters: Dict[str, Any]
    best_average_return: Optional[float]
    history: List[GenerationRecord] = field(default_factory=list)


class PBTScheduler:
    """Run generations of concurrent populations and evolve between them."""

    def __init__(
        self,
        base_config: XingTianConfig,
        space: HyperparameterSpace,
        *,
        num_populations: int = 4,
        evolution_interval_s: float = 2.0,
        use_crossover: bool = False,
        seed: Optional[int] = None,
    ):
        if num_populations < 2:
            raise ValueError("PBT needs at least two populations")
        self.base_config = base_config
        self.space = space
        self.num_populations = num_populations
        self.evolution_interval_s = evolution_interval_s
        self.use_crossover = use_crossover
        self._rng = np.random.default_rng(seed)
        self.populations: List[Population] = [
            Population(rank, base_config, space.sample(self._rng))
            for rank in range(num_populations)
        ]
        self._carried_weights: Dict[int, Optional[List[np.ndarray]]] = {
            population.rank: None for population in self.populations
        }

    def run(self, generations: int) -> PBTResult:
        """Run ``generations`` evolution intervals; returns the best combo."""
        history: List[GenerationRecord] = []
        for generation in range(generations):
            results = self._run_generation()
            record = self._evolve(generation, results)
            history.append(record)
        scored = [
            record.results for record in history[-1:]
        ]  # last generation's results
        final = sorted(
            scored[0], key=lambda result: _score(result), reverse=True
        )
        best = final[0]
        return PBTResult(
            best_hyperparameters=best.hyperparameters,
            best_average_return=best.average_return,
            history=history,
        )

    # -- internals ---------------------------------------------------------
    def _run_generation(self) -> List[PopulationResult]:
        for population in self.populations:
            population.start(self._carried_weights.get(population.rank))
        time.sleep(self.evolution_interval_s)
        results = []
        for population in self.populations:
            results.append(population.stop())
        return results

    def _evolve(
        self, generation: int, results: List[PopulationResult]
    ) -> GenerationRecord:
        ordered = sorted(results, key=_score, reverse=True)
        best, worst = ordered[0], ordered[-1]
        worst_population = self._by_rank(worst.rank)
        # Snapshot every population's weights before any replacement.
        weights_by_rank = {
            result.rank: self._by_rank(result.rank).weights() for result in results
        }

        if self.use_crossover and len(ordered) > 2:
            parent = crossover(
                best.hyperparameters, ordered[1].hyperparameters, self._rng
            )
        else:
            parent = best.hyperparameters
        new_hyperparameters = mutate(parent, self.space, self._rng)

        # Replace the eliminated population: new hyperparameters, best's
        # weights, same rank (a fresh broker set would be created on start).
        replacement = Population(
            worst.rank, self.base_config, new_hyperparameters
        )
        index = self.populations.index(worst_population)
        self.populations[index] = replacement
        # Every surviving population resumes from its own weights; the
        # replacement catches up from the best population's weights.
        for population in self.populations:
            if population.rank == worst.rank:
                self._carried_weights[population.rank] = weights_by_rank[best.rank]
            else:
                self._carried_weights[population.rank] = weights_by_rank[
                    population.rank
                ]
        return GenerationRecord(
            generation=generation,
            results=results,
            eliminated_rank=worst.rank,
            new_hyperparameters=new_hyperparameters,
        )

    def _by_rank(self, rank: int) -> Population:
        for population in self.populations:
            if population.rank == rank:
                return population
        raise LookupError(f"no population with rank {rank}")


def _score(result: PopulationResult) -> float:
    if result.average_return is None:
        return float("-inf")
    return result.average_return
