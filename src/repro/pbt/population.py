"""One PBT population: an isolated broker set with its own hyperparameters."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from ..cluster import Cluster, build_cluster
from ..core.config import XingTianConfig


@dataclass
class PopulationResult:
    """One population's score at the end of an evolution interval."""

    rank: int
    hyperparameters: Dict[str, Any]
    average_return: Optional[float]
    episode_count: int
    trained_steps: int


class Population:
    """A XingTian deployment running one hyperparameter combination.

    ``rank`` mirrors the paper's broker ranks: populations are fully
    isolated from one another — each gets its own brokers, learner and
    explorers (Fig. 3).
    """

    def __init__(
        self, rank: int, base_config: XingTianConfig, hyperparameters: Dict[str, Any]
    ):
        self.rank = rank
        self.hyperparameters = dict(hyperparameters)
        self.config = self._apply_hyperparameters(base_config, hyperparameters)
        self.cluster: Optional[Cluster] = None
        self._initial_weights: Optional[List[np.ndarray]] = None

    @staticmethod
    def _apply_hyperparameters(
        base: XingTianConfig, hyperparameters: Dict[str, Any]
    ) -> XingTianConfig:
        config = XingTianConfig.from_dict(base.to_dict())
        config.algorithm_config = dict(config.algorithm_config)
        config.algorithm_config.update(hyperparameters)
        return config

    # -- lifecycle ----------------------------------------------------------
    def start(self, initial_weights: Optional[List[np.ndarray]] = None) -> None:
        self.cluster = build_cluster(self.config)
        if initial_weights is not None:
            # The paper applies the best population's DNN weights to the new
            # population so it can catch up at the start of the generation.
            self.cluster.learner.algorithm.set_weights(initial_weights)
        self.cluster.start()

    def stop(self) -> PopulationResult:
        assert self.cluster is not None, "population not started"
        result = self.snapshot()
        self._final_weights = self.cluster.learner.algorithm.get_weights()
        self.cluster.stop()
        self.cluster = None
        return result

    def snapshot(self) -> PopulationResult:
        assert self.cluster is not None, "population not started"
        collector = self.cluster.center.collector
        return PopulationResult(
            rank=self.rank,
            hyperparameters=dict(self.hyperparameters),
            average_return=collector.average_return(),
            episode_count=collector.episode_count(),
            trained_steps=int(self.cluster.learner.consumed_meter.total),
        )

    def weights(self) -> List[np.ndarray]:
        if self.cluster is not None:
            return self.cluster.learner.algorithm.get_weights()
        final = getattr(self, "_final_weights", None)
        if final is None:
            raise RuntimeError("population has no weights yet")
        return final
