"""Population-based training on XingTian (paper §4.3).

XingTian supports PBT natively via isolated broker sets — one per
population — with the center controller acting as the PBT scheduler: every
evolution interval it evaluates each population's average episode return,
kills the worst population's processes, mutates a new hyperparameter
combination, and starts a replacement population seeded with the best
population's DNN weights.
"""

from .mutation import HyperparameterSpace, mutate, crossover
from .population import Population, PopulationResult
from .scheduler import PBTScheduler, PBTResult

__all__ = [
    "HyperparameterSpace",
    "mutate",
    "crossover",
    "Population",
    "PopulationResult",
    "PBTScheduler",
    "PBTResult",
]
