"""Configuration (paper §3.2.2, §4.2).

The configuration file combines the registered Environment / Model /
Algorithm / Agent implementations into a specific DRL algorithm, and
describes the deployment: which machines, where the learner lives, how many
explorers per machine.  We represent it as a dataclass tree, loadable from a
plain dict (JSON-compatible) via :meth:`XingTianConfig.from_dict`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from .errors import ConfigError


@dataclass
class MachineSpec:
    """One machine in the deployment: a name, an explorer count, and
    whether the learner runs here (exactly one machine must host it).

    ``address`` is the machine's ``host:port`` wire endpoint, used only by
    the ``wire`` transport (docs/NETWORKING.md); ``None`` binds a loopback
    listener on an ephemeral port — the two-machine-on-one-host topology
    the wire-smoke CI job measures.
    """

    name: str
    explorers: int = 1
    has_learner: bool = False
    address: Optional[str] = None

    def validate(self) -> None:
        if not self.name:
            raise ConfigError("machine name must be non-empty")
        if self.explorers < 0:
            raise ConfigError(f"machine {self.name!r}: explorers must be >= 0")
        if self.address is not None:
            host, sep, port = self.address.rpartition(":")
            if not sep or not host or not port.isdigit():
                raise ConfigError(
                    f"machine {self.name!r}: address must be host:port, "
                    f"got {self.address!r}"
                )


@dataclass
class StopCondition:
    """When the center controller shuts the run down (§3.2.2): enough
    rollout steps consumed, a target return reached, or a time budget."""

    total_env_steps: Optional[int] = None
    total_trained_steps: Optional[int] = None
    target_return: Optional[float] = None
    max_seconds: Optional[float] = None

    def validate(self) -> None:
        values = (
            self.total_env_steps,
            self.total_trained_steps,
            self.target_return,
            self.max_seconds,
        )
        if all(v is None for v in values):
            raise ConfigError("stop condition must set at least one criterion")
        for name in ("total_env_steps", "total_trained_steps", "max_seconds"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ConfigError(f"stop.{name} must be positive, got {value}")


@dataclass
class SupervisionSpec:
    """Fault-tolerance knobs (see docs/FAULT_TOLERANCE.md).

    When attached to a config, every explorer/learner sends heartbeats to
    the center controller, whose :class:`~repro.core.supervision.Supervisor`
    marks a process SUSPECT after ``suspect_after`` seconds of silence and
    DEAD after ``dead_after``, then restarts it under an exponential-backoff
    budget.  ``checkpoint_dir`` enables learner snapshots every
    ``checkpoint_every`` training sessions so a restarted learner resumes
    instead of starting over.
    """

    heartbeat_interval: float = 0.1
    suspect_after: float = 1.0
    dead_after: float = 2.5
    max_restarts: int = 3
    backoff_base: float = 0.25
    backoff_max: float = 5.0
    jitter: float = 0.0
    #: keep training on surviving explorers instead of failing the run
    allow_degraded: bool = False
    checkpoint_dir: Optional[str] = None
    checkpoint_every: int = 25
    checkpoint_keep: int = 2
    seed: Optional[int] = None

    def validate(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ConfigError("heartbeat_interval must be positive")
        if self.suspect_after <= self.heartbeat_interval:
            raise ConfigError("suspect_after must exceed heartbeat_interval")
        if self.dead_after <= self.suspect_after:
            raise ConfigError("dead_after must exceed suspect_after")
        if self.max_restarts < 0:
            raise ConfigError("max_restarts must be >= 0")
        if self.backoff_base < 0 or self.backoff_max < self.backoff_base:
            raise ConfigError("backoff_max must be >= backoff_base >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError("jitter must be in [0, 1]")
        if self.checkpoint_every < 1 or self.checkpoint_keep < 1:
            raise ConfigError("checkpoint_every and checkpoint_keep must be >= 1")


@dataclass
class CoalescingSpec:
    """Adaptive small-message coalescing knobs (see docs/PERFORMANCE.md).

    When attached to a config, every endpoint's sender thread drains its
    send buffer once per wakeup and packs consecutive sub-threshold bodies
    for the same destination set into one ``MsgType.BATCH`` store entry —
    one object-store insert, one header, one routing decision for the whole
    run.  Receivers unpack transparently; workhorses never see the
    envelope.  Disable (or set ``None`` on the config) for workloads
    dominated by large bodies, or to measure the ablation.
    """

    enabled: bool = True
    #: only bodies at most this many bytes are coalesced
    max_message_bytes: int = 4096
    #: cap on sub-messages per envelope (bounds unpack latency)
    max_batch: int = 64

    def validate(self) -> None:
        if self.max_message_bytes < 0:
            raise ConfigError("coalescing.max_message_bytes must be >= 0")
        if self.max_batch < 2:
            raise ConfigError("coalescing.max_batch must be >= 2")


@dataclass
class FlowControlSpec:
    """Overload-control knobs (see docs/FLOW_CONTROL.md).

    When attached to a config, every broker header queue, per-destination
    ID queue, and endpoint buffer becomes a two-lane bounded channel:
    control traffic (weights, commands, heartbeats, stats) overtakes bulk
    experience under load, bulk admission sheds the oldest trajectory past
    the watermark, and control admission blocks its producer up to
    ``control_deadline_s`` before failing loudly with
    :class:`~repro.core.errors.BackpressureError`.  A
    :class:`~repro.obs.flowcontroller.FlowController` polls the metrics
    registry and adapts coalescing/compression/admission at runtime.
    ``None`` (the default) keeps the seed behaviour — unbounded FIFO
    queues, no lanes, no adaptation.
    """

    enabled: bool = True
    #: max queued bulk entries per queue before shed-oldest kicks in
    bulk_watermark: int = 512
    #: max queued control entries before producers block (0 = unbounded)
    control_watermark: int = 256
    #: low watermark as a fraction of the high one (hysteresis: a blocked
    #: control put resumes only once the lane drains below low)
    low_fraction: float = 0.5
    #: seconds a control/weights producer may block awaiting admission
    control_deadline_s: float = 2.0
    #: arena occupancy fractions driving admission tightening
    arena_high_watermark: float = 0.85
    arena_low_watermark: float = 0.60
    #: bulk watermark multiplier applied while admission is tightened
    pressure_scale: float = 0.5
    # -- adaptation loop (FlowController) --
    adapt_interval_s: float = 0.05
    #: bulk depth (as a fraction of bulk_watermark) that counts as pressure
    queue_pressure_fraction: float = 0.5
    #: consecutive pressured / clear polls before escalating / relaxing
    escalate_after: int = 2
    relax_after: int = 10
    #: ceiling when the controller raises CoalescingSpec.max_message_bytes
    coalescing_max_bytes: int = 1 << 16
    #: floor when the controller lowers the store compression threshold
    compression_min_threshold: int = 1 << 14
    #: bodies below this never get wire-compressed (codec overhead floor)
    wire_compression_min_bytes: int = 1 << 10

    def validate(self) -> None:
        if self.bulk_watermark < 1:
            raise ConfigError("flow_control.bulk_watermark must be >= 1")
        if self.control_watermark < 0:
            raise ConfigError("flow_control.control_watermark must be >= 0")
        if not 0.0 < self.low_fraction <= 1.0:
            raise ConfigError("flow_control.low_fraction must be in (0, 1]")
        if self.control_deadline_s <= 0:
            raise ConfigError("flow_control.control_deadline_s must be positive")
        if not 0.0 < self.arena_low_watermark < self.arena_high_watermark <= 1.0:
            raise ConfigError(
                "flow_control arena watermarks need 0 < low < high <= 1"
            )
        if not 0.0 < self.pressure_scale <= 1.0:
            raise ConfigError("flow_control.pressure_scale must be in (0, 1]")
        if self.adapt_interval_s <= 0:
            raise ConfigError("flow_control.adapt_interval_s must be positive")
        if not 0.0 < self.queue_pressure_fraction <= 1.0:
            raise ConfigError(
                "flow_control.queue_pressure_fraction must be in (0, 1]"
            )
        if self.escalate_after < 1 or self.relax_after < 1:
            raise ConfigError(
                "flow_control.escalate_after and relax_after must be >= 1"
            )
        if self.coalescing_max_bytes < 1:
            raise ConfigError("flow_control.coalescing_max_bytes must be >= 1")
        if self.compression_min_threshold < 1:
            raise ConfigError(
                "flow_control.compression_min_threshold must be >= 1"
            )
        if self.wire_compression_min_bytes < 0:
            raise ConfigError(
                "flow_control.wire_compression_min_bytes must be >= 0"
            )


@dataclass
class TelemetrySpec:
    """Observability knobs (see docs/OBSERVABILITY.md).

    When attached to a config, the session builds a
    :class:`~repro.obs.telemetry.Telemetry` object: a metrics registry, a
    tracer feeding live message-lifecycle span aggregation, and a periodic
    sampler polling queue depths / object-store totals / endpoint
    backpressure.  The resulting snapshot lands in ``RunResult.metrics``.
    ``None`` (the default) keeps telemetry fully off — endpoints and the
    router then pay only a ``is None`` check per message.
    """

    enabled: bool = True
    sample_interval: float = 0.05
    tracer_capacity: int = 65536
    series_capacity: int = 512
    #: correlate sent→routed→delivered→consumed into latency histograms
    spans: bool = True
    max_pending_spans: int = 8192

    def validate(self) -> None:
        if self.sample_interval <= 0:
            raise ConfigError("telemetry.sample_interval must be positive")
        if self.tracer_capacity < 1:
            raise ConfigError("telemetry.tracer_capacity must be >= 1")
        if self.series_capacity < 1:
            raise ConfigError("telemetry.series_capacity must be >= 1")
        if self.max_pending_spans < 1:
            raise ConfigError("telemetry.max_pending_spans must be >= 1")


@dataclass
class XingTianConfig:
    """Full run configuration."""

    algorithm: str
    environment: str
    model: str
    agent: Optional[str] = None  # defaults to the algorithm name
    env_config: Dict[str, Any] = field(default_factory=dict)
    model_config: Dict[str, Any] = field(default_factory=dict)
    algorithm_config: Dict[str, Any] = field(default_factory=dict)
    agent_config: Dict[str, Any] = field(default_factory=dict)
    machines: List[MachineSpec] = field(
        default_factory=lambda: [MachineSpec("machine-0", explorers=1, has_learner=True)]
    )
    fragment_steps: int = 200
    stats_interval: float = 0.25
    # Communication channel knobs.
    compression_enabled: bool = True
    compression_threshold: int = 1 << 20  # paper default: compress >1MB
    # copy_on_fetch=True gives real serialize/deserialize copy isolation at
    # the object store (slow, GIL-bound); False passes references and relies
    # on copy_bandwidth for cost modelling (what benchmarks use).
    copy_on_fetch: bool = False
    copy_bandwidth: Optional[float] = None  # modelled memcpy bandwidth (bytes/s)
    nic_bandwidth: float = 118.04e6  # bytes/s, the paper's measured 1GbE
    nic_latency: float = 0.0002
    #: inter-machine transport: ``"sim"`` models NICs with throttled links
    #: (charging ``nic_bandwidth``); ``"wire"`` ships bytes over real TCP
    #: sockets between the machines' ``address`` endpoints — measured, not
    #: modelled (docs/NETWORKING.md)
    transport: str = "sim"
    stop: StopCondition = field(default_factory=lambda: StopCondition(max_seconds=10.0))
    seed: Optional[int] = None
    #: fault-tolerance layer; None keeps the seed behaviour (no supervision)
    supervision: Optional[SupervisionSpec] = None
    #: observability layer; None keeps telemetry fully off
    telemetry: Optional[TelemetrySpec] = None
    #: small-message coalescing on the endpoint hot path; None keeps the
    #: one-store-insert-per-message seed behaviour
    coalescing: Optional[CoalescingSpec] = None
    #: adaptive overload control (priority lanes, watermarks, backpressure);
    #: None keeps the unbounded seed behaviour
    flow_control: Optional[FlowControlSpec] = None

    # -- derived -------------------------------------------------------------
    @property
    def agent_name(self) -> str:
        return self.agent or self.algorithm

    @property
    def num_explorers(self) -> int:
        return sum(machine.explorers for machine in self.machines)

    @property
    def learner_machine(self) -> MachineSpec:
        learners = [machine for machine in self.machines if machine.has_learner]
        if len(learners) != 1:
            raise ConfigError(
                f"exactly one machine must host the learner, found {len(learners)}"
            )
        return learners[0]

    def explorer_names(self) -> List[str]:
        names = []
        for machine in self.machines:
            for index in range(machine.explorers):
                names.append(f"{machine.name}.explorer-{index}")
        return names

    def validate(self) -> None:
        if not self.algorithm:
            raise ConfigError("algorithm must be set")
        if not self.environment:
            raise ConfigError("environment must be set")
        if not self.model:
            raise ConfigError("model must be set")
        if not self.machines:
            raise ConfigError("at least one machine is required")
        seen = set()
        for machine in self.machines:
            machine.validate()
            if machine.name in seen:
                raise ConfigError(f"duplicate machine name {machine.name!r}")
            seen.add(machine.name)
        _ = self.learner_machine  # raises unless exactly one
        if self.num_explorers < 1:
            raise ConfigError("at least one explorer is required")
        if self.fragment_steps < 1:
            raise ConfigError("fragment_steps must be >= 1")
        if self.nic_bandwidth <= 0:
            raise ConfigError("nic_bandwidth must be positive")
        if self.transport not in ("sim", "wire"):
            raise ConfigError(
                f"transport must be 'sim' or 'wire', got {self.transport!r}"
            )
        self.stop.validate()
        if self.supervision is not None:
            self.supervision.validate()
        if self.telemetry is not None:
            self.telemetry.validate()
        if self.coalescing is not None:
            self.coalescing.validate()
        if self.flow_control is not None:
            self.flow_control.validate()

    # -- (de)serialization ------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "XingTianConfig":
        data = dict(data)
        machines = [
            spec if isinstance(spec, MachineSpec) else MachineSpec(**spec)
            for spec in data.pop("machines", [])
        ] or [MachineSpec("machine-0", explorers=1, has_learner=True)]
        stop_data = data.pop("stop", None)
        if isinstance(stop_data, StopCondition):
            stop = stop_data
        elif stop_data:
            stop = StopCondition(**stop_data)
        else:
            stop = StopCondition(max_seconds=10.0)
        supervision_data = data.pop("supervision", None)
        if isinstance(supervision_data, SupervisionSpec):
            supervision: Optional[SupervisionSpec] = supervision_data
        elif supervision_data:
            supervision = SupervisionSpec(**supervision_data)
        else:
            supervision = None
        telemetry_data = data.pop("telemetry", None)
        if isinstance(telemetry_data, TelemetrySpec):
            telemetry: Optional[TelemetrySpec] = telemetry_data
        elif telemetry_data:
            telemetry = TelemetrySpec(**telemetry_data)
        else:
            telemetry = None
        coalescing_data = data.pop("coalescing", None)
        if isinstance(coalescing_data, CoalescingSpec):
            coalescing: Optional[CoalescingSpec] = coalescing_data
        elif coalescing_data:
            coalescing = CoalescingSpec(**coalescing_data)
        else:
            coalescing = None
        flow_data = data.pop("flow_control", None)
        if isinstance(flow_data, FlowControlSpec):
            flow_control: Optional[FlowControlSpec] = flow_data
        elif flow_data:
            flow_control = FlowControlSpec(**flow_data)
        else:
            flow_control = None
        config = cls(
            machines=machines,
            stop=stop,
            supervision=supervision,
            telemetry=telemetry,
            coalescing=coalescing,
            flow_control=flow_control,
            **data,
        )
        config.validate()
        return config


def single_machine_config(
    algorithm: str,
    environment: str,
    model: str,
    *,
    explorers: int = 1,
    **overrides: Any,
) -> XingTianConfig:
    """Convenience constructor for the common one-machine deployment."""
    config = XingTianConfig(
        algorithm=algorithm,
        environment=environment,
        model=model,
        machines=[MachineSpec("machine-0", explorers=explorers, has_learner=True)],
        **overrides,
    )
    config.validate()
    return config
