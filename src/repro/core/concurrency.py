"""Concurrency factories: supervised thread spawning and checkable locks.

Framework code never constructs ``threading.Thread`` or ``threading.Lock``
directly (the ``raw-thread-creation`` lint rule enforces the former).
Instead it calls the factories here, which buys two things:

* :func:`spawn_thread` registers every framework thread in a process-wide
  registry so diagnostics and the supervision layer can enumerate what is
  actually running;
* :func:`make_lock` / :func:`make_rlock` hand out instrumented
  :class:`~repro.analysis.runtime.CheckedLock` wrappers when runtime
  concurrency checks are enabled (``REPRO_RUNTIME_CHECKS=1``, as the test
  suite does), recording the lock-acquisition graph for deadlock detection
  at zero cost to production deployments (plain stdlib locks otherwise).
"""

from __future__ import annotations

import os
import threading
import weakref
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Environment variable gating the runtime checkers (lock-order monitor and
#: the broker-shutdown refcount audit).
RUNTIME_CHECKS_ENV = "REPRO_RUNTIME_CHECKS"

_TRUTHY = {"1", "true", "yes", "on"}

_SPAWNED: "weakref.WeakSet[threading.Thread]" = weakref.WeakSet()
_SPAWNED_LOCK = threading.Lock()


def runtime_checks_enabled() -> bool:
    """True when opt-in runtime concurrency checks are active."""
    return os.environ.get(RUNTIME_CHECKS_ENV, "").strip().lower() in _TRUTHY


def spawn_thread(
    name: str,
    target: Callable[..., Any],
    *,
    args: Tuple[Any, ...] = (),
    kwargs: Optional[Dict[str, Any]] = None,
    daemon: bool = True,
    start: bool = True,
) -> threading.Thread:
    """Create (and by default start) a registered framework thread."""
    thread = threading.Thread(
        target=target, name=name, args=args, kwargs=kwargs or {}, daemon=daemon
    )
    with _SPAWNED_LOCK:
        _SPAWNED.add(thread)
    if start:
        thread.start()
    return thread


def spawned_threads(alive_only: bool = True) -> List[threading.Thread]:
    """Every thread created through :func:`spawn_thread` (still referenced)."""
    with _SPAWNED_LOCK:
        threads = list(_SPAWNED)
    if alive_only:
        threads = [thread for thread in threads if thread.is_alive()]
    return sorted(threads, key=lambda thread: thread.name)


def make_lock(name: str) -> Any:
    """A mutex — instrumented for lock-order checking when checks are on."""
    if runtime_checks_enabled():
        from ..analysis.runtime import CheckedLock  # lazy: avoids import cycle

        return CheckedLock(name)
    return threading.Lock()


def make_rlock(name: str) -> Any:
    """A re-entrant mutex — instrumented when checks are on."""
    if runtime_checks_enabled():
        from ..analysis.runtime import CheckedRLock  # lazy: avoids import cycle

        return CheckedRLock(name)
    return threading.RLock()
