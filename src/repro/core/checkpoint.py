"""Periodic learner checkpointing for fault tolerance.

The API docs promise "periodic checkpointing for fault tolerance"
(:mod:`repro.api.algorithm`); the :class:`Checkpointer` makes it real.  The
learner calls :meth:`maybe_save` after every training session; every
``every_train_steps`` sessions the full algorithm state — DNN weights,
optimizer moment buffers, and the train counter — is written atomically to a
numbered file.  After a learner death the supervisor rebuilds the learner
from its factory and calls :meth:`restore_latest` so training resumes from
the last snapshot instead of from scratch.
"""

from __future__ import annotations

import os
import re
from typing import List, Optional

from ..api.algorithm import Algorithm
from .concurrency import make_lock
from .errors import CheckpointError

_CKPT_PATTERN = re.compile(r"^(?P<name>.+)-(?P<step>\d+)\.ckpt$")


class Checkpointer:
    """Rotating, atomic snapshots of an algorithm's training state.

    Files are named ``<name>-<train_count>.ckpt`` inside ``directory``; only
    the newest ``keep`` snapshots are retained.  All methods are thread-safe:
    the learner workhorse saves while the supervisor may concurrently look
    for the latest snapshot to restore.
    """

    def __init__(
        self,
        directory: str,
        *,
        every_train_steps: int = 25,
        keep: int = 2,
        name: str = "learner",
    ):
        if every_train_steps < 1:
            raise CheckpointError("every_train_steps must be >= 1")
        if keep < 1:
            raise CheckpointError("keep must be >= 1")
        self.directory = os.path.abspath(directory)
        self.every_train_steps = every_train_steps
        self.keep = keep
        self.name = name
        self._lock = make_lock("checkpointer")
        self._last_saved_count: Optional[int] = None
        self.saves = 0
        self.restores = 0
        os.makedirs(self.directory, exist_ok=True)

    # -- saving -------------------------------------------------------------
    def maybe_save(self, algorithm: Algorithm) -> Optional[str]:
        """Save when ``every_train_steps`` sessions passed since the last save.

        Returns the checkpoint path when one was written, else ``None``.
        """
        count = algorithm.train_count
        with self._lock:
            last = self._last_saved_count
        if last is not None and count - last < self.every_train_steps:
            return None
        return self.save(algorithm)

    def save(self, algorithm: Algorithm) -> str:
        """Unconditionally snapshot ``algorithm``; prunes old snapshots."""
        count = algorithm.train_count
        path = os.path.join(self.directory, f"{self.name}-{count}.ckpt")
        algorithm.save_checkpoint(path)
        with self._lock:
            self._last_saved_count = count
            self.saves += 1
        self._prune()
        return path

    def _prune(self) -> None:
        for stale in self.checkpoint_paths()[: -self.keep]:
            try:
                os.unlink(stale)
            except OSError:
                pass  # already gone, or being read — never fail a save on it

    # -- restoring ----------------------------------------------------------
    def checkpoint_paths(self) -> List[str]:
        """Existing snapshot paths, oldest first."""
        found = []
        try:
            entries = os.listdir(self.directory)
        except OSError:
            return []
        for entry in entries:
            match = _CKPT_PATTERN.match(entry)
            if match is not None and match.group("name") == self.name:
                found.append((int(match.group("step")), entry))
        return [os.path.join(self.directory, entry) for _, entry in sorted(found)]

    def latest_path(self) -> Optional[str]:
        paths = self.checkpoint_paths()
        return paths[-1] if paths else None

    def restore_latest(self, algorithm: Algorithm) -> bool:
        """Restore the newest snapshot into ``algorithm``.

        Returns ``False`` when no snapshot exists yet (a learner that died
        before the first save restarts from scratch — still a valid restart).
        """
        path = self.latest_path()
        if path is None:
            return False
        algorithm.restore_checkpoint(path)
        with self._lock:
            self.restores += 1
        return True
