"""Pooled shared-memory arena: size-class free lists over long-lived slabs.

Creating and unlinking one ``multiprocessing.shared_memory`` segment per
message is the dominant fixed cost of the SHM data path: every send pays a
``shm_open``/``ftruncate``/``mmap`` round trip plus an ``unlink`` on
release.  The :class:`SlabArena` replaces that churn with a small set of
long-lived segments ("slabs") carved into power-of-two size classes.
Allocation pops a block off the matching free list; release pushes it back
— no syscalls on the steady-state path.

Occupancy is bounded (``capacity_bytes``): when every free list is empty
and growing would exceed the budget, :meth:`alloc` raises
:class:`ArenaExhaustedError` so callers can fall back to a dedicated
segment instead of growing without bound.  Double frees and foreign
handles raise :class:`ArenaError`.  The arena is leak-audited at shutdown
through the same machinery as the object store: :meth:`leak_report` /
:meth:`assert_balanced` mirror :class:`~repro.core.object_store.ObjectStore`.

**Sanitizer.**  Under ``REPRO_RUNTIME_CHECKS=1`` (or ``sanitize=True``)
the arena arms a use-after-free sanitizer for the zero-copy pipeline:

* *generation tags* — every ``(segment, offset)`` location carries a
  monotonically increasing generation; a stale :class:`BlockHandle` from a
  previous incarnation of the block raises :class:`ArenaError` on
  :meth:`view`/:meth:`free` instead of silently aliasing the new tenant;
* *poison-on-free* — freed block bytes are memset to ``0xDB`` so a dangling
  view reads obviously-corrupt data rather than plausible stale payloads;
* *quarantine* — freed blocks sit out ``quarantine_depth`` subsequent
  frees (``REPRO_ARENA_QUARANTINE``) before rejoining the LIFO free list,
  widening the window in which stale handles fault instead of aliasing;
* *view registration* — consumers exporting zero-copy views
  (:meth:`register_export`, or ``deserialize(..., view_registry=...)`` via
  :meth:`export_registry`) make :meth:`free`/:meth:`close` raise while any
  exported view is still alive, instead of leaving it dangling.

All sanitizer state is behind one ``self._sanitize`` flag; with checks off
the steady-state alloc/free path is unchanged.
"""

from __future__ import annotations

import itertools
import os
from collections import deque
from dataclasses import dataclass, replace
from typing import Any, Deque, Dict, List, Optional, Tuple

from .concurrency import make_lock, runtime_checks_enabled
from .errors import ObjectStoreError, RefcountLeakError

_ARENA_COUNTER = itertools.count()

#: Default size classes: 4 KB … 4 MB in powers of two.
DEFAULT_MIN_BLOCK = 1 << 12
DEFAULT_MAX_BLOCK = 1 << 22
#: Blocks carved per slab per size class.
DEFAULT_SLAB_BLOCKS = 8
#: Default occupancy bound across all slabs (including huge blocks).
DEFAULT_CAPACITY = 1 << 28  # 256 MB

#: Environment knob for the sanitizer's free-list quarantine depth.
QUARANTINE_ENV = "REPRO_ARENA_QUARANTINE"
#: Blocks held back per size class before re-entering the free list.
DEFAULT_QUARANTINE_DEPTH = 4
#: Fill pattern for freed blocks under the sanitizer.
POISON_BYTE = 0xDB


def _drop_segment(segment: Any) -> None:
    """Close + unlink a segment, tolerating still-alive consumer views.

    A caller may hold a (now stale) ``Block.buf`` view when its block is
    freed; ``mmap.close`` then raises ``BufferError``.  The POSIX unlink
    still reclaims the name immediately and the mapping itself dies with
    the last view's garbage collection.
    """
    try:
        segment.close()
    except BufferError:
        pass
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass


class ArenaError(ObjectStoreError):
    """Bad arena usage: double free, foreign handle, closed arena."""


class ArenaExhaustedError(ArenaError):
    """Allocation would exceed the arena's occupancy bound."""


@dataclass(frozen=True)
class BlockHandle:
    """A serializable reference to one arena block.

    ``segment`` is the slab's OS shared-memory name, so any process that
    learns a handle can attach and read the block without copies.  ``size``
    is the usable byte count (the size class, or the exact size for huge
    blocks); ``huge`` marks blocks with a dedicated segment that is
    unlinked on free rather than recycled.  ``generation`` counts how many
    times this location has been recycled — under the sanitizer a handle
    whose generation lags the location's current one is *stale* (its block
    was freed, and possibly reallocated to someone else) and faults fast.
    """

    segment: str
    offset: int
    size: int
    huge: bool = False
    generation: int = 0


@dataclass
class Block:
    """An allocated block: its handle plus a writable view of its memory."""

    handle: BlockHandle
    buf: memoryview

    def release(self) -> None:
        """Drop the view.  Writers release before the reader can free the
        block, so huge-block unlinks never race an exported buffer."""
        self.buf.release()


class SlabArena:
    """Thread-safe slab allocator over shared-memory segments."""

    def __init__(
        self,
        *,
        name: str = "arena",
        min_block: int = DEFAULT_MIN_BLOCK,
        max_block: int = DEFAULT_MAX_BLOCK,
        slab_blocks: int = DEFAULT_SLAB_BLOCKS,
        capacity_bytes: int = DEFAULT_CAPACITY,
        sanitize: Optional[bool] = None,
        quarantine_depth: Optional[int] = None,
    ):
        from multiprocessing import shared_memory  # local import: optional path

        if min_block < 1 or max_block < min_block:
            raise ArenaError("need 1 <= min_block <= max_block")
        if slab_blocks < 1:
            raise ArenaError("slab_blocks must be >= 1")
        self._shared_memory = shared_memory
        # The pid keeps OS-level slab names collision-free across processes
        # (the counter alone restarts in forked children).
        self.name = f"{name}-{os.getpid()}-{next(_ARENA_COUNTER)}"
        self._slab_blocks = slab_blocks
        self._capacity_bytes = capacity_bytes
        self._classes: List[int] = []
        size = min_block
        while size < max_block:
            self._classes.append(size)
            size <<= 1
        self._classes.append(max_block)
        self._lock = make_lock(f"{self.name}.freelists")
        #: size class -> free handles (LIFO for cache warmth)
        self._free: Dict[int, List[BlockHandle]] = {
            cls: [] for cls in self._classes
        }
        #: slab segment name -> SharedMemory
        self._slabs: Dict[str, Any] = {}
        #: (segment, offset) -> handle for live allocations
        self._allocated: Dict[Tuple[str, int], BlockHandle] = {}
        self._slab_bytes = 0
        self._allocated_bytes = 0
        self._closed = False
        self.total_alloc = 0
        self.total_free = 0
        self.total_slabs = 0
        self.total_fallback = 0  # exhaustion signals surfaced to callers
        self.total_huge = 0  # huge-block allocations (dedicated segments)
        # -- sanitizer (opt-in; defaults follow REPRO_RUNTIME_CHECKS) --------
        self._sanitize = runtime_checks_enabled() if sanitize is None else sanitize
        if quarantine_depth is None:
            quarantine_depth = int(
                os.environ.get(QUARANTINE_ENV, DEFAULT_QUARANTINE_DEPTH)
            )
        self._quarantine_depth = max(0, quarantine_depth)
        #: size class -> freed blocks sitting out their quarantine window
        self._quarantine: Dict[int, Deque[BlockHandle]] = {
            cls: deque() for cls in self._classes
        }
        #: (segment, offset) -> current generation of that location
        self._generations: Dict[Tuple[str, int], int] = {}
        #: (segment, offset) -> export token -> registered view (None: counted)
        self._exports: Dict[Tuple[str, int], Dict[int, Optional[memoryview]]] = {}
        self._export_tokens = itertools.count(1)
        self.stale_handle_faults = 0  # generation mismatches caught
        # Occupancy watermarks (fractions of capacity).  Purely advisory:
        # the arena latches a pressure flag for the FlowController to poll,
        # with hysteresis so the signal does not flap around the threshold.
        self._high_watermark = 1.0
        self._low_watermark = 1.0
        self._pressure = False
        self.pressure_events = 0

    # -- watermarks ------------------------------------------------------------
    def set_watermarks(self, high_fraction: float, low_fraction: float) -> None:
        """Arm occupancy watermarks (fractions of ``capacity_bytes``).

        Pressure latches when live allocated bytes cross the high fraction
        and clears below the low fraction (hysteresis).  Defaults leave the
        arena unarmed: both at 1.0, so pressure never latches.
        """
        if not 0.0 < low_fraction <= high_fraction <= 1.0:
            raise ArenaError("need 0 < low_fraction <= high_fraction <= 1")
        with self._lock:
            self._high_watermark = high_fraction
            self._low_watermark = low_fraction
            self._update_pressure()

    def _update_pressure(self) -> None:
        """Re-evaluate the pressure latch (lock held)."""
        occupancy = self._allocated_bytes / max(1, self._capacity_bytes)
        if self._pressure:
            if occupancy < self._low_watermark:
                self._pressure = False
        elif occupancy >= self._high_watermark:
            self._pressure = True
            self.pressure_events += 1

    @property
    def pressure(self) -> bool:
        with self._lock:
            return self._pressure

    # -- sizing ---------------------------------------------------------------
    def _size_class(self, nbytes: int) -> int:
        for cls in self._classes:
            if nbytes <= cls:
                return cls
        return -1  # huge

    @property
    def max_block(self) -> int:
        return self._classes[-1]

    # -- allocation -----------------------------------------------------------
    def alloc(self, nbytes: int) -> Block:
        """Reserve a block of at least ``nbytes``; raises
        :class:`ArenaExhaustedError` when growth would exceed capacity."""
        if nbytes < 1:
            nbytes = 1
        cls = self._size_class(nbytes)
        with self._lock:
            if self._closed:
                raise ArenaError(f"arena {self.name!r} is closed")
            if cls == -1:
                handle = self._alloc_huge(nbytes)
                self.total_huge += 1
            else:
                free = self._free[cls]
                if not free:
                    quarantine = self._quarantine[cls]
                    if quarantine:
                        # Quarantine delays reuse; it never costs capacity.
                        # Recycle the oldest held-back block rather than
                        # growing a new slab at steady state.
                        free.append(quarantine.popleft())
                    else:
                        self._grow(cls)
                    free = self._free[cls]
                handle = free.pop()
                if self._sanitize:
                    # Recycled handles carry the generation they were freed
                    # at; stamp the location's current generation so this
                    # tenant's handle is the only valid one.
                    current = self._generations.get(
                        (handle.segment, handle.offset), 0
                    )
                    if handle.generation != current:
                        handle = replace(handle, generation=current)
            self._allocated[(handle.segment, handle.offset)] = handle
            self._allocated_bytes += handle.size
            self.total_alloc += 1
            self._update_pressure()
            segment = self._slabs[handle.segment]
        view = memoryview(segment.buf)[handle.offset : handle.offset + handle.size]
        return Block(handle, view)

    def _new_segment(self, nbytes: int) -> Any:
        name = f"xt-{self.name}-{self.total_slabs}"
        self.total_slabs += 1
        return self._shared_memory.SharedMemory(name=name, create=True, size=nbytes)

    def _grow(self, cls: int) -> None:
        """Carve one new slab for size class ``cls`` (lock held)."""
        slab_size = cls * self._slab_blocks
        if self._slab_bytes + slab_size > self._capacity_bytes:
            self.total_fallback += 1
            raise ArenaExhaustedError(
                f"arena {self.name!r} exhausted: {self._slab_bytes}B of slabs "
                f"+ {slab_size}B would exceed the {self._capacity_bytes}B bound"
            )
        segment = self._new_segment(slab_size)
        self._slabs[segment.name] = segment
        self._slab_bytes += slab_size
        free = self._free[cls]
        for index in range(self._slab_blocks):
            free.append(BlockHandle(segment.name, index * cls, cls))

    def _alloc_huge(self, nbytes: int) -> BlockHandle:
        """One dedicated segment for an over-max-class body (lock held)."""
        if self._slab_bytes + nbytes > self._capacity_bytes:
            self.total_fallback += 1
            raise ArenaExhaustedError(
                f"arena {self.name!r} exhausted: huge block of {nbytes}B "
                f"would exceed the {self._capacity_bytes}B bound"
            )
        segment = self._new_segment(nbytes)
        self._slabs[segment.name] = segment
        self._slab_bytes += nbytes
        return BlockHandle(segment.name, 0, nbytes, huge=True)

    # -- access ----------------------------------------------------------------
    def view(self, handle: BlockHandle) -> memoryview:
        """Writable view of a live block (readers slice what they need)."""
        key = (handle.segment, handle.offset)
        with self._lock:
            if self._closed:
                raise ArenaError(f"arena {self.name!r} is closed")
            if key not in self._allocated:
                raise ArenaError(f"unknown or freed block {handle}")
            if self._sanitize:
                self._check_generation(handle, key, "view")
            segment = self._slabs[handle.segment]
        return memoryview(segment.buf)[handle.offset : handle.offset + handle.size]

    def free(self, handle: BlockHandle) -> None:
        """Return a block to its free list (or unlink a huge block).

        Under the sanitizer a stale-generation handle and a free with live
        exported views both raise :class:`ArenaError` — the caller is about
        to recycle memory somebody can still read.
        """
        unlink = None
        key = (handle.segment, handle.offset)
        with self._lock:
            if self._closed:
                raise ArenaError(f"arena {self.name!r} is closed")
            if self._sanitize and key in self._allocated:
                self._check_generation(handle, key, "free")
                self._check_exports(key)
            live = self._allocated.pop(key, None)
            if live is None:
                raise ArenaError(
                    f"double free or foreign handle on arena {self.name!r}: {handle}"
                )
            self._allocated_bytes -= live.size
            self.total_free += 1
            self._update_pressure()
            if self._sanitize:
                self._generations[key] = self._generations.get(key, 0) + 1
                self._exports.pop(key, None)
                self._poison(live)
            if live.huge:
                unlink = self._slabs.pop(live.segment)
                self._slab_bytes -= live.size
            elif self._sanitize and self._quarantine_depth > 0:
                quarantine = self._quarantine[live.size]
                quarantine.append(live)
                while len(quarantine) > self._quarantine_depth:
                    self._free[live.size].append(quarantine.popleft())
            else:
                self._free[live.size].append(live)
        if unlink is not None:
            _drop_segment(unlink)

    # -- sanitizer internals (lock held) ----------------------------------------
    def _check_generation(
        self, handle: BlockHandle, key: Tuple[str, int], op: str
    ) -> None:
        current = self._generations.get(key, 0)
        if handle.generation != current:
            self.stale_handle_faults += 1
            raise ArenaError(
                f"stale handle on arena {self.name!r}: {op} of {handle} at "
                f"generation {handle.generation}, but the block is at "
                f"generation {current} (freed and reallocated since)"
            )

    def _check_exports(self, key: Tuple[str, int]) -> None:
        live = self._live_exports(key)
        if live:
            raise ArenaError(
                f"releasing block {key[0]}:{key[1]} on arena {self.name!r} "
                f"with {live} live exported view(s) — release the views "
                "before freeing the block"
            )

    def _live_exports(self, key: Tuple[str, int]) -> int:
        """Count still-alive registered views, pruning released ones."""
        entries = self._exports.get(key)
        if not entries:
            return 0
        live = 0
        for token, view in list(entries.items()):
            if view is None:
                live += 1  # count-based export: live until unregistered
                continue
            try:
                view.nbytes  # noqa: B018 - released views raise ValueError
            except ValueError:
                del entries[token]
            else:
                live += 1
        if not entries:
            self._exports.pop(key, None)
        return live

    def _poison(self, live: BlockHandle) -> None:
        segment = self._slabs.get(live.segment)
        if segment is None:  # pragma: no cover - defensive
            return
        try:
            memoryview(segment.buf)[
                live.offset : live.offset + live.size
            ] = bytes([POISON_BYTE]) * live.size
        except (ValueError, BufferError):  # pragma: no cover - defensive
            pass

    # -- view export registration ------------------------------------------------
    def register_export(
        self, handle: BlockHandle, view: Optional[memoryview] = None
    ) -> int:
        """Record an exported zero-copy view of ``handle``'s block.

        Returns a token for :meth:`unregister_export`.  With a ``view`` the
        registration expires by itself once the view is ``release()``-d;
        without one it is a plain count the exporter must balance.  While
        any registered view is alive, :meth:`free` and :meth:`close` raise
        instead of recycling the memory under the reader.  No-op (token 0)
        when the sanitizer is off.
        """
        if not self._sanitize:
            return 0
        key = (handle.segment, handle.offset)
        with self._lock:
            if self._closed:
                raise ArenaError(f"arena {self.name!r} is closed")
            if key not in self._allocated:
                raise ArenaError(f"unknown or freed block {handle}")
            self._check_generation(handle, key, "export")
            token = next(self._export_tokens)
            self._exports.setdefault(key, {})[token] = view
            return token

    def unregister_export(self, handle: BlockHandle, token: int) -> None:
        """Balance a :meth:`register_export` (idempotent, closed-safe)."""
        if not self._sanitize or token == 0:
            return
        key = (handle.segment, handle.offset)
        with self._lock:
            entries = self._exports.get(key)
            if entries is not None:
                entries.pop(token, None)
                if not entries:
                    self._exports.pop(key, None)

    def export_registry(self, handle: BlockHandle) -> "ExportRegistry":
        """A ``deserialize(..., view_registry=...)`` adapter for ``handle``.

        Every read-only buffer the deserializer creates over this block is
        registered, so freeing the block while any of those views is alive
        raises instead of dangling.
        """
        return ExportRegistry(self, handle)

    # -- audit -----------------------------------------------------------------
    def leak_report(self) -> List[Tuple[str, int, int]]:
        """``(segment:offset, count, size)`` per live block — the
        object-store audit shape, so the same tooling inspects both.  The
        count charges a huge block its dedicated segment *and* its block
        (it leaks both on a missed free); pooled blocks count 1.
        """
        with self._lock:
            return [
                (f"{segment}:{offset}", 2 if handle.huge else 1, handle.size)
                for (segment, offset), handle in sorted(self._allocated.items())
            ]

    def assert_balanced(self, context: str = "") -> None:
        leaks = self.leak_report()
        if not leaks:
            return
        where = f" at {context}" if context else ""
        if self._sanitize:
            # Distinguish the actionable case: the block is unfreed
            # *because* a consumer still holds a zero-copy view of it.
            with self._lock:
                pinned = [
                    key for key in list(self._exports) if self._live_exports(key)
                ]
            if pinned:
                names = ", ".join(f"{seg}:{off}" for seg, off in pinned[:10])
                raise ArenaError(
                    f"arena {self.name!r}{where}: {len(pinned)} block(s) "
                    f"pinned by live exported view(s): {names} — release "
                    "the views before shutdown"
                )
        detail = ", ".join(
            f"{block_id} ({nbytes}B)" for block_id, _, nbytes in leaks[:10]
        )
        more = "" if len(leaks) <= 10 else f" … and {len(leaks) - 10} more"
        raise RefcountLeakError(
            f"arena {self.name!r} block imbalance{where}: {len(leaks)} "
            f"unfreed block(s): {detail}{more}"
        )

    def stats(self) -> Dict[str, int]:
        """Occupancy gauges for telemetry sampling.

        ``free_blocks`` includes quarantined blocks — they are free
        capacity, just not immediately reusable; ``quarantined_blocks``
        breaks them out.  ``huge_blocks`` counts live dedicated-segment
        allocations (also in ``allocated_blocks``); ``total_huge`` is the
        cumulative huge-allocation counter.
        """
        with self._lock:
            quarantined = sum(len(q) for q in self._quarantine.values())
            return {
                "allocated_blocks": len(self._allocated),
                "allocated_bytes": self._allocated_bytes,
                "slab_bytes": self._slab_bytes,
                "capacity_bytes": self._capacity_bytes,
                "free_blocks": sum(len(free) for free in self._free.values())
                + quarantined,
                "quarantined_blocks": quarantined,
                "huge_blocks": sum(
                    1 for handle in self._allocated.values() if handle.huge
                ),
                "total_huge": self.total_huge,
                "live_exports": sum(len(views) for views in self._exports.values()),
                "stale_handle_faults": self.stale_handle_faults,
                "pressure": int(self._pressure),
                "pressure_events": self.pressure_events,
            }

    # -- lifecycle --------------------------------------------------------------
    def close(self) -> None:
        """Unlink every slab.  Idempotent; live blocks become invalid.

        Under the sanitizer, closing while registered zero-copy views are
        still alive raises — those views would dangle over unlinked
        segments otherwise.
        """
        with self._lock:
            if self._closed:
                return
            if self._sanitize:
                live = sum(self._live_exports(key) for key in list(self._exports))
                if live:
                    raise ArenaError(
                        f"closing arena {self.name!r} with {live} live "
                        "exported view(s) — consumers must release "
                        "zero-copy views before shutdown"
                    )
            self._closed = True
            slabs = list(self._slabs.values())
            self._slabs.clear()
            self._allocated.clear()
            for free in self._free.values():
                free.clear()
            for quarantine in self._quarantine.values():
                quarantine.clear()
            self._exports.clear()
            self._slab_bytes = 0
            self._allocated_bytes = 0
        for segment in slabs:
            _drop_segment(segment)

    @property
    def sanitizing(self) -> bool:
        """Whether the use-after-free sanitizer is armed."""
        return self._sanitize

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed


class ExportRegistry:
    """Registers zero-copy views of one block as they are created.

    The shape :func:`repro.core.serialization.deserialize` expects from its
    ``view_registry`` argument: one ``register(view)`` per read-only buffer
    it exports.  Registered views expire automatically when released; the
    arena refuses to free or close under any that are still alive.
    """

    __slots__ = ("_arena", "_handle", "tokens")

    def __init__(self, arena: SlabArena, handle: BlockHandle):
        self._arena = arena
        self._handle = handle
        self.tokens: List[int] = []

    def register(self, view: memoryview) -> None:
        self.tokens.append(self._arena.register_export(self._handle, view))

    def release(self) -> None:
        """Drop every registration without waiting for view GC."""
        for token in self.tokens:
            self._arena.unregister_export(self._handle, token)
        self.tokens.clear()
