"""Pooled shared-memory arena: size-class free lists over long-lived slabs.

Creating and unlinking one ``multiprocessing.shared_memory`` segment per
message is the dominant fixed cost of the SHM data path: every send pays a
``shm_open``/``ftruncate``/``mmap`` round trip plus an ``unlink`` on
release.  The :class:`SlabArena` replaces that churn with a small set of
long-lived segments ("slabs") carved into power-of-two size classes.
Allocation pops a block off the matching free list; release pushes it back
— no syscalls on the steady-state path.

Occupancy is bounded (``capacity_bytes``): when every free list is empty
and growing would exceed the budget, :meth:`alloc` raises
:class:`ArenaExhaustedError` so callers can fall back to a dedicated
segment instead of growing without bound.  Double frees and foreign
handles raise :class:`ArenaError`.  The arena is leak-audited at shutdown
through the same machinery as the object store: :meth:`leak_report` /
:meth:`assert_balanced` mirror :class:`~repro.core.object_store.ObjectStore`.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from .concurrency import make_lock
from .errors import ObjectStoreError, RefcountLeakError

_ARENA_COUNTER = itertools.count()

#: Default size classes: 4 KB … 4 MB in powers of two.
DEFAULT_MIN_BLOCK = 1 << 12
DEFAULT_MAX_BLOCK = 1 << 22
#: Blocks carved per slab per size class.
DEFAULT_SLAB_BLOCKS = 8
#: Default occupancy bound across all slabs (including huge blocks).
DEFAULT_CAPACITY = 1 << 28  # 256 MB


def _drop_segment(segment: Any) -> None:
    """Close + unlink a segment, tolerating still-alive consumer views.

    A caller may hold a (now stale) ``Block.buf`` view when its block is
    freed; ``mmap.close`` then raises ``BufferError``.  The POSIX unlink
    still reclaims the name immediately and the mapping itself dies with
    the last view's garbage collection.
    """
    try:
        segment.close()
    except BufferError:
        pass
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass


class ArenaError(ObjectStoreError):
    """Bad arena usage: double free, foreign handle, closed arena."""


class ArenaExhaustedError(ArenaError):
    """Allocation would exceed the arena's occupancy bound."""


@dataclass(frozen=True)
class BlockHandle:
    """A serializable reference to one arena block.

    ``segment`` is the slab's OS shared-memory name, so any process that
    learns a handle can attach and read the block without copies.  ``size``
    is the usable byte count (the size class, or the exact size for huge
    blocks); ``huge`` marks blocks with a dedicated segment that is
    unlinked on free rather than recycled.
    """

    segment: str
    offset: int
    size: int
    huge: bool = False


@dataclass
class Block:
    """An allocated block: its handle plus a writable view of its memory."""

    handle: BlockHandle
    buf: memoryview

    def release(self) -> None:
        """Drop the view.  Writers release before the reader can free the
        block, so huge-block unlinks never race an exported buffer."""
        self.buf.release()


class SlabArena:
    """Thread-safe slab allocator over shared-memory segments."""

    def __init__(
        self,
        *,
        name: str = "arena",
        min_block: int = DEFAULT_MIN_BLOCK,
        max_block: int = DEFAULT_MAX_BLOCK,
        slab_blocks: int = DEFAULT_SLAB_BLOCKS,
        capacity_bytes: int = DEFAULT_CAPACITY,
    ):
        from multiprocessing import shared_memory  # local import: optional path

        if min_block < 1 or max_block < min_block:
            raise ArenaError("need 1 <= min_block <= max_block")
        if slab_blocks < 1:
            raise ArenaError("slab_blocks must be >= 1")
        self._shared_memory = shared_memory
        # The pid keeps OS-level slab names collision-free across processes
        # (the counter alone restarts in forked children).
        self.name = f"{name}-{os.getpid()}-{next(_ARENA_COUNTER)}"
        self._slab_blocks = slab_blocks
        self._capacity_bytes = capacity_bytes
        self._classes: List[int] = []
        size = min_block
        while size < max_block:
            self._classes.append(size)
            size <<= 1
        self._classes.append(max_block)
        self._lock = make_lock(f"{self.name}.freelists")
        #: size class -> free handles (LIFO for cache warmth)
        self._free: Dict[int, List[BlockHandle]] = {
            cls: [] for cls in self._classes
        }
        #: slab segment name -> SharedMemory
        self._slabs: Dict[str, Any] = {}
        #: (segment, offset) -> handle for live allocations
        self._allocated: Dict[Tuple[str, int], BlockHandle] = {}
        self._slab_bytes = 0
        self._allocated_bytes = 0
        self._closed = False
        self.total_alloc = 0
        self.total_free = 0
        self.total_slabs = 0
        self.total_fallback = 0  # exhaustion signals surfaced to callers
        # Occupancy watermarks (fractions of capacity).  Purely advisory:
        # the arena latches a pressure flag for the FlowController to poll,
        # with hysteresis so the signal does not flap around the threshold.
        self._high_watermark = 1.0
        self._low_watermark = 1.0
        self._pressure = False
        self.pressure_events = 0

    # -- watermarks ------------------------------------------------------------
    def set_watermarks(self, high_fraction: float, low_fraction: float) -> None:
        """Arm occupancy watermarks (fractions of ``capacity_bytes``).

        Pressure latches when live allocated bytes cross the high fraction
        and clears below the low fraction (hysteresis).  Defaults leave the
        arena unarmed: both at 1.0, so pressure never latches.
        """
        if not 0.0 < low_fraction <= high_fraction <= 1.0:
            raise ArenaError("need 0 < low_fraction <= high_fraction <= 1")
        with self._lock:
            self._high_watermark = high_fraction
            self._low_watermark = low_fraction
            self._update_pressure()

    def _update_pressure(self) -> None:
        """Re-evaluate the pressure latch (lock held)."""
        occupancy = self._allocated_bytes / max(1, self._capacity_bytes)
        if self._pressure:
            if occupancy < self._low_watermark:
                self._pressure = False
        elif occupancy >= self._high_watermark:
            self._pressure = True
            self.pressure_events += 1

    @property
    def pressure(self) -> bool:
        with self._lock:
            return self._pressure

    # -- sizing ---------------------------------------------------------------
    def _size_class(self, nbytes: int) -> int:
        for cls in self._classes:
            if nbytes <= cls:
                return cls
        return -1  # huge

    @property
    def max_block(self) -> int:
        return self._classes[-1]

    # -- allocation -----------------------------------------------------------
    def alloc(self, nbytes: int) -> Block:
        """Reserve a block of at least ``nbytes``; raises
        :class:`ArenaExhaustedError` when growth would exceed capacity."""
        if nbytes < 1:
            nbytes = 1
        cls = self._size_class(nbytes)
        with self._lock:
            if self._closed:
                raise ArenaError(f"arena {self.name!r} is closed")
            if cls == -1:
                handle = self._alloc_huge(nbytes)
            else:
                free = self._free[cls]
                if not free:
                    self._grow(cls)
                    free = self._free[cls]
                handle = free.pop()
            self._allocated[(handle.segment, handle.offset)] = handle
            self._allocated_bytes += handle.size
            self.total_alloc += 1
            self._update_pressure()
            segment = self._slabs[handle.segment]
        view = memoryview(segment.buf)[handle.offset : handle.offset + handle.size]
        return Block(handle, view)

    def _new_segment(self, nbytes: int) -> Any:
        name = f"xt-{self.name}-{self.total_slabs}"
        self.total_slabs += 1
        return self._shared_memory.SharedMemory(name=name, create=True, size=nbytes)

    def _grow(self, cls: int) -> None:
        """Carve one new slab for size class ``cls`` (lock held)."""
        slab_size = cls * self._slab_blocks
        if self._slab_bytes + slab_size > self._capacity_bytes:
            self.total_fallback += 1
            raise ArenaExhaustedError(
                f"arena {self.name!r} exhausted: {self._slab_bytes}B of slabs "
                f"+ {slab_size}B would exceed the {self._capacity_bytes}B bound"
            )
        segment = self._new_segment(slab_size)
        self._slabs[segment.name] = segment
        self._slab_bytes += slab_size
        free = self._free[cls]
        for index in range(self._slab_blocks):
            free.append(BlockHandle(segment.name, index * cls, cls))

    def _alloc_huge(self, nbytes: int) -> BlockHandle:
        """One dedicated segment for an over-max-class body (lock held)."""
        if self._slab_bytes + nbytes > self._capacity_bytes:
            self.total_fallback += 1
            raise ArenaExhaustedError(
                f"arena {self.name!r} exhausted: huge block of {nbytes}B "
                f"would exceed the {self._capacity_bytes}B bound"
            )
        segment = self._new_segment(nbytes)
        self._slabs[segment.name] = segment
        self._slab_bytes += nbytes
        return BlockHandle(segment.name, 0, nbytes, huge=True)

    # -- access ----------------------------------------------------------------
    def view(self, handle: BlockHandle) -> memoryview:
        """Writable view of a live block (readers slice what they need)."""
        with self._lock:
            if (handle.segment, handle.offset) not in self._allocated:
                raise ArenaError(f"unknown or freed block {handle}")
            segment = self._slabs[handle.segment]
        return memoryview(segment.buf)[handle.offset : handle.offset + handle.size]

    def free(self, handle: BlockHandle) -> None:
        """Return a block to its free list (or unlink a huge block)."""
        unlink = None
        with self._lock:
            live = self._allocated.pop((handle.segment, handle.offset), None)
            if live is None:
                raise ArenaError(
                    f"double free or foreign handle on arena {self.name!r}: {handle}"
                )
            self._allocated_bytes -= live.size
            self.total_free += 1
            self._update_pressure()
            if live.huge:
                unlink = self._slabs.pop(live.segment)
                self._slab_bytes -= live.size
            else:
                self._free[live.size].append(live)
        if unlink is not None:
            _drop_segment(unlink)

    # -- audit -----------------------------------------------------------------
    def leak_report(self) -> List[Tuple[str, int, int]]:
        """``(segment:offset, 1, size)`` per live block — the object-store
        audit shape, so the same tooling inspects both."""
        with self._lock:
            return [
                (f"{segment}:{offset}", 1, handle.size)
                for (segment, offset), handle in sorted(self._allocated.items())
            ]

    def assert_balanced(self, context: str = "") -> None:
        leaks = self.leak_report()
        if not leaks:
            return
        where = f" at {context}" if context else ""
        detail = ", ".join(
            f"{block_id} ({nbytes}B)" for block_id, _, nbytes in leaks[:10]
        )
        more = "" if len(leaks) <= 10 else f" … and {len(leaks) - 10} more"
        raise RefcountLeakError(
            f"arena {self.name!r} block imbalance{where}: {len(leaks)} "
            f"unfreed block(s): {detail}{more}"
        )

    def stats(self) -> Dict[str, int]:
        """Occupancy gauges for telemetry sampling."""
        with self._lock:
            return {
                "allocated_blocks": len(self._allocated),
                "allocated_bytes": self._allocated_bytes,
                "slab_bytes": self._slab_bytes,
                "capacity_bytes": self._capacity_bytes,
                "free_blocks": sum(len(free) for free in self._free.values()),
                "pressure": int(self._pressure),
                "pressure_events": self.pressure_events,
            }

    # -- lifecycle --------------------------------------------------------------
    def close(self) -> None:
        """Unlink every slab.  Idempotent; live blocks become invalid."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            slabs = list(self._slabs.values())
            self._slabs.clear()
            self._allocated.clear()
            for free in self._free.values():
                free.clear()
            self._slab_bytes = 0
            self._allocated_bytes = 0
        for segment in slabs:
            _drop_segment(segment)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed
