"""Statistics: throughput meters, latency recorders, collectors.

The center controller collects and visualizes statistics from explorers and
the learner (§3.2.2).  These helpers also produce the measurements behind
the paper's figures: throughput-over-time series (Figs. 8–10a), latency
breakdowns (Figs. 8–10b), and wait-time CDFs (Fig. 8c).
"""

from __future__ import annotations

import time
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .concurrency import make_lock


class ThroughputMeter:
    """Counts events (bytes, rollout steps, messages) against wall time.

    ``record(n)`` adds ``n`` units; ``rate()`` is units/second since start;
    ``series(bucket)`` returns a (t, rate) time series bucketed at ``bucket``
    seconds, which is what the throughput-over-time figures plot.

    Memory is bounded: once more than ``max_events`` samples are held, the
    sample list is compacted — events falling in the same
    ``compaction_resolution`` window merge into one aggregate sample at the
    window midpoint (doubling the resolution until the list fits).  Totals
    and rates stay exact; ``series(bucket)`` stays exact for any ``bucket``
    at least as coarse as the (reported) ``resolution``.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,
        *,
        max_events: int = 8192,
        compaction_resolution: float = 0.25,
    ):
        if max_events < 2:
            raise ValueError("max_events must be >= 2")
        if compaction_resolution <= 0:
            raise ValueError("compaction_resolution must be positive")
        self._clock = clock
        self._lock = make_lock("stats.throughput_meter")
        self._events: List[Tuple[float, float]] = []
        self._total = 0.0
        self._start = clock()
        self._max_events = max_events
        self._resolution = compaction_resolution
        self._compacted = False

    def record(self, amount: float = 1.0) -> None:
        now = self._clock()
        with self._lock:
            self._events.append((now, amount))
            self._total += amount
            if len(self._events) > self._max_events:
                self._compact_locked()

    def record_many(self, amounts: Sequence[float]) -> None:
        """Record a batch of events sharing one timestamp.

        A drained queue batch arrives within microseconds, far inside any
        ``series()`` bucket, so the samples merge into one aggregate event:
        one clock read and one lock acquisition instead of ``len(amounts)``
        — the hot-path variant used by the endpoint threads.
        """
        if not amounts:
            return
        subtotal = sum(amounts)
        now = self._clock()
        with self._lock:
            self._events.append((now, subtotal))
            self._total += subtotal
            if len(self._events) > self._max_events:
                self._compact_locked()

    def _compact_locked(self) -> None:
        """Merge samples into ``self._resolution`` windows (growing the
        resolution until the list is at most half of ``max_events``)."""
        self._compacted = True
        while True:
            buckets: Dict[int, float] = {}
            for timestamp, amount in self._events:
                index = int((timestamp - self._start) / self._resolution)
                buckets[index] = buckets.get(index, 0.0) + amount
            if len(buckets) <= self._max_events // 2:
                break
            self._resolution *= 2.0
        self._events = [
            (self._start + (index + 0.5) * self._resolution, amount)
            for index, amount in sorted(buckets.items())
        ]

    @property
    def resolution(self) -> Optional[float]:
        """Coarsest compaction window applied so far (None if never)."""
        with self._lock:
            return self._resolution if self._compacted else None

    @property
    def total(self) -> float:
        with self._lock:
            return self._total

    def elapsed(self) -> float:
        return max(self._clock() - self._start, 1e-12)

    def rate(self) -> float:
        """Average units per second over the meter's lifetime."""
        return self.total / self.elapsed()

    def series(self, bucket: float = 1.0) -> List[Tuple[float, float]]:
        """Bucketed (time_offset, units_per_second) series."""
        if bucket <= 0:
            raise ValueError("bucket must be positive")
        with self._lock:
            events = list(self._events)
        if not events:
            return []
        buckets: Dict[int, float] = {}
        for timestamp, amount in events:
            index = int((timestamp - self._start) / bucket)
            buckets[index] = buckets.get(index, 0.0) + amount
        return [(index * bucket, amount / bucket) for index, amount in sorted(buckets.items())]


class LatencyRecorder:
    """Accumulates latency samples and reports means, quantiles, and CDFs."""

    def __init__(self, name: str = ""):
        self.name = name
        self._lock = make_lock("stats.latency_recorder")
        self._samples: List[float] = []

    def record(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(seconds)

    def record_many(self, seconds: Sequence[float]) -> None:
        """Append a batch of samples under one lock acquisition."""
        if not seconds:
            return
        with self._lock:
            self._samples.extend(seconds)

    def time(self):
        """Context manager that records the elapsed time of its block."""
        return _Timer(self)

    @property
    def count(self) -> int:
        with self._lock:
            return len(self._samples)

    def mean(self) -> float:
        with self._lock:
            if not self._samples:
                return 0.0
            return sum(self._samples) / len(self._samples)

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            if not self._samples:
                return 0.0
            ordered = sorted(self._samples)
        index = min(int(q * len(ordered)), len(ordered) - 1)
        return ordered[index]

    def cdf(self, points: Optional[Sequence[float]] = None) -> List[Tuple[float, float]]:
        """(value, fraction_of_samples <= value) pairs — Fig. 8(c)'s curve."""
        with self._lock:
            ordered = sorted(self._samples)
        if not ordered:
            return []
        if points is None:
            points = ordered
        total = len(ordered)
        return [(point, bisect_right(ordered, point) / total) for point in points]

    def fraction_below(self, threshold: float) -> float:
        """Fraction of samples strictly below ``threshold`` seconds."""
        with self._lock:
            if not self._samples:
                return 0.0
            below = sum(1 for sample in self._samples if sample < threshold)
            return below / len(self._samples)

    def samples(self) -> List[float]:
        with self._lock:
            return list(self._samples)


class _Timer:
    def __init__(self, recorder: LatencyRecorder):
        self._recorder = recorder
        self._start = 0.0

    def __enter__(self):
        self._start = time.monotonic()
        return self

    def __exit__(self, *exc):
        self._recorder.record(time.monotonic() - self._start)
        return False


@dataclass
class ProcessStats:
    """One statistics report from a workhorse thread, sent periodically as a
    STATS message to the center controller."""

    source: str
    steps: int = 0
    episodes: int = 0
    episode_returns: List[float] = field(default_factory=list)
    messages_sent: int = 0
    bytes_sent: int = 0
    train_iterations: int = 0
    extra: Dict[str, float] = field(default_factory=dict)


class StatsCollector:
    """Aggregates :class:`ProcessStats` reports at the center controller.

    Tracks total consumed rollout steps (the stop condition "the learner has
    consumed enough rollout steps", §3.2.2) and recent average episode
    return ("explorers have received the target return").
    """

    def __init__(self, return_window: int = 100):
        self._lock = make_lock("stats.collector")
        self._reports: List[ProcessStats] = []
        self._returns: List[float] = []
        self._return_window = return_window
        self.total_env_steps = 0
        self.total_trained_steps = 0
        self.total_train_iterations = 0
        # Fault-tolerance counters (filled by the supervisor).
        self.failures = 0
        self.restarts = 0
        self._failures_by: Dict[str, int] = {}
        self._restarts_by: Dict[str, int] = {}

    def add(self, report: ProcessStats) -> None:
        with self._lock:
            self._reports.append(report)
            self._returns.extend(report.episode_returns)
            self.total_env_steps += report.steps
            self.total_train_iterations += report.train_iterations
            self.total_trained_steps += int(report.extra.get("trained_steps", 0))

    def average_return(self) -> Optional[float]:
        with self._lock:
            if not self._returns:
                return None
            window = self._returns[-self._return_window :]
            return sum(window) / len(window)

    def episode_count(self) -> int:
        with self._lock:
            return len(self._returns)

    def returns(self) -> List[float]:
        with self._lock:
            return list(self._returns)

    def report_count(self) -> int:
        with self._lock:
            return len(self._reports)

    # -- fault-tolerance accounting ----------------------------------------
    def record_failure(self, source: str) -> None:
        """Count one detected worker death (crash or missed heartbeats)."""
        with self._lock:
            self.failures += 1
            self._failures_by[source] = self._failures_by.get(source, 0) + 1

    def record_restart(self, source: str) -> None:
        """Count one successful worker restart."""
        with self._lock:
            self.restarts += 1
            self._restarts_by[source] = self._restarts_by.get(source, 0) + 1

    def failure_counts(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._failures_by)

    def restart_counts(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._restarts_by)
