"""Body compression.

The paper compresses message bodies larger than 1 MB with LZ4 when they are
inserted into the object store, and decompresses on fetch (§4.1).  LZ4 is not
available offline, so the default codec is zlib at a fast level — the same
architectural role (CPU-for-bandwidth trade at the store boundary) with the
same threshold policy.  A null codec disables compression entirely.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Tuple

DEFAULT_THRESHOLD = 1 << 20  # 1 MB, the paper's default

_HDR_RAW = b"R"
_HDR_ZLIB = b"Z"


class Codec:
    """Interface for body codecs."""

    name = "abstract"

    def compress(self, data: bytes) -> bytes:
        raise NotImplementedError

    def decompress(self, data: bytes) -> bytes:
        raise NotImplementedError


class NullCodec(Codec):
    """Pass-through codec (compression disabled)."""

    name = "null"

    def compress(self, data: bytes) -> bytes:
        return data

    def decompress(self, data: bytes) -> bytes:
        return data


class ZlibCodec(Codec):
    """zlib codec at a fast level — the offline stand-in for LZ4."""

    name = "zlib"

    def __init__(self, level: int = 1):
        if not 0 <= level <= 9:
            raise ValueError(f"zlib level must be in [0, 9], got {level}")
        self.level = level

    def compress(self, data: bytes) -> bytes:
        return zlib.compress(data, self.level)

    def decompress(self, data: bytes) -> bytes:
        return zlib.decompress(data)


_CODECS: Dict[str, Codec] = {}


def register_codec(codec: Codec) -> None:
    _CODECS[codec.name] = codec


register_codec(NullCodec())
register_codec(ZlibCodec())


def get_codec(name: str) -> Codec:
    try:
        return _CODECS[name]
    except KeyError:
        raise KeyError(f"unknown codec {name!r}; known: {sorted(_CODECS)}") from None


@dataclass
class CompressionPolicy:
    """When and how to compress serialized bodies.

    ``threshold`` — only bodies at least this many bytes are compressed
    (paper default: 1 MB).  ``enabled=False`` or ``threshold=None`` disables
    compression regardless of size.
    """

    enabled: bool = True
    threshold: int = DEFAULT_THRESHOLD
    codec: str = "zlib"

    def should_compress(self, nbytes: int) -> bool:
        """Whether a body of ``nbytes`` would be compressed by :meth:`encode`.

        The zero-copy store path asks this *before* materializing a frame:
        bodies below the threshold are scatter-gathered straight into their
        destination buffer (with a raw prefix), and only would-be-compressed
        bodies pay a contiguous intermediate copy for the codec.
        """
        return (
            self.enabled and self.threshold is not None and nbytes >= self.threshold
        )

    def encode(self, data: bytes) -> Tuple[bytes, bool]:
        """Maybe-compress ``data``; returns (framed bytes, compressed?).

        The one-byte frame prefix makes :meth:`decode` self-describing, so a
        receiver does not need to know the sender's policy.
        """
        if self.should_compress(len(data)):
            return _HDR_ZLIB + get_codec(self.codec).compress(data), True
        return _HDR_RAW + data, False

    def decode(self, data: bytes) -> bytes:
        """Inverse of :meth:`encode`."""
        prefix, payload = data[:1], data[1:]
        if prefix == _HDR_RAW:
            return bytes(payload)
        if prefix == _HDR_ZLIB:
            return get_codec(self.codec).decompress(payload)
        raise ValueError(f"unknown compression frame prefix {prefix!r}")


def disabled_policy() -> CompressionPolicy:
    """A policy that never compresses."""
    return CompressionPolicy(enabled=False)
