"""Message tracing for debugging the asynchronous channel.

A :class:`Tracer` records timestamped events (message sent, routed,
delivered, consumed; training sessions; broadcasts) into a bounded ring so
a misbehaving deployment can be inspected post-mortem.  Attach one to any
number of components; recording is lock-protected and cheap enough to stay
on in tests.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

from .concurrency import make_lock


@dataclass
class TraceEvent:
    timestamp: float
    kind: str
    source: str
    detail: Dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Bounded in-memory event log."""

    def __init__(self, capacity: int = 10_000, clock: Callable[[], float] = time.monotonic):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._lock = make_lock("tracer")
        self._clock = clock
        self.enabled = True

    def record(self, kind: str, source: str, **detail: Any) -> None:
        if not self.enabled:
            return
        event = TraceEvent(self._clock(), kind, source, detail)
        with self._lock:
            self._events.append(event)

    # -- queries -----------------------------------------------------------
    def events(
        self,
        kind: Optional[str] = None,
        source: Optional[str] = None,
    ) -> List[TraceEvent]:
        with self._lock:
            snapshot = list(self._events)
        return [
            event
            for event in snapshot
            if (kind is None or event.kind == kind)
            and (source is None or event.source == source)
        ]

    def count(self, kind: Optional[str] = None) -> int:
        return len(self.events(kind=kind))

    def kinds(self) -> Dict[str, int]:
        with self._lock:
            snapshot = list(self._events)
        histogram: Dict[str, int] = {}
        for event in snapshot:
            histogram[event.kind] = histogram.get(event.kind, 0) + 1
        return histogram

    def span(self, start_kind: str, end_kind: str, key: str) -> List[float]:
        """Durations between matching start/end events correlated by
        ``detail[key]`` (e.g. a message seq): transmission latencies."""
        starts: Dict[Any, float] = {}
        durations: List[float] = []
        with self._lock:
            snapshot = list(self._events)
        for event in snapshot:
            correlation = event.detail.get(key)
            if correlation is None:
                continue
            if event.kind == start_kind:
                starts[correlation] = event.timestamp
            elif event.kind == end_kind and correlation in starts:
                durations.append(event.timestamp - starts.pop(correlation))
        return durations

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def format(self, limit: int = 50) -> str:
        with self._lock:
            snapshot = list(self._events)[-limit:]
        if not snapshot:
            return "(no trace events)"
        origin = snapshot[0].timestamp
        lines = []
        for event in snapshot:
            detail = " ".join(f"{k}={v}" for k, v in event.detail.items())
            lines.append(
                f"+{event.timestamp - origin:9.4f}s  {event.kind:<12} "
                f"{event.source:<24} {detail}"
            )
        return "\n".join(lines)


class TracingEndpointMixin:
    """Hook points components call when a tracer is attached."""

    tracer: Optional[Tracer] = None

    def trace(self, kind: str, source: str, **detail: Any) -> None:
        if self.tracer is not None:
            self.tracer.record(kind, source, **detail)
