"""Message tracing for debugging the asynchronous channel.

A :class:`Tracer` records timestamped events (message sent, routed,
delivered, consumed; training sessions; broadcasts) into a bounded ring so
a misbehaving deployment can be inspected post-mortem.  Attach one to any
number of components; recording is lock-protected and cheap enough to stay
on in tests.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

from .concurrency import make_lock


@dataclass
class TraceEvent:
    timestamp: float
    kind: str
    source: str
    detail: Dict[str, Any] = field(default_factory=dict)


@dataclass
class SpanReport:
    """Result of :meth:`Tracer.span_report`: durations plus match health.

    ``unmatched_starts`` counts start events that never saw an end (lost or
    dropped messages — routine under fault injection), ``unmatched_ends``
    end events with no recorded start (start fell out of the ring or the
    bounded pending map), and ``evicted_starts`` the starts discarded when
    more than ``max_pending`` were simultaneously in flight.
    """

    durations: List[float] = field(default_factory=list)
    unmatched_starts: int = 0
    unmatched_ends: int = 0
    evicted_starts: int = 0

    @property
    def unmatched(self) -> int:
        return self.unmatched_starts + self.unmatched_ends + self.evicted_starts


class Tracer:
    """Bounded in-memory event log.

    ``sink`` (optional) is called with every recorded event *outside* the
    ring lock — the telemetry layer hangs its live span aggregation off
    this, seeing every event even after the ring wraps.  Sinks must be
    thread-safe and cheap; a raising sink disables itself rather than
    poisoning the hot path.
    """

    def __init__(
        self,
        capacity: int = 10_000,
        clock: Callable[[], float] = time.monotonic,
        sink: Optional[Callable[[TraceEvent], None]] = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._lock = make_lock("tracer")
        self._clock = clock
        self._sink = sink
        self.enabled = True

    def record(self, kind: str, source: str, **detail: Any) -> None:
        if not self.enabled:
            return
        event = TraceEvent(self._clock(), kind, source, detail)
        with self._lock:
            self._events.append(event)
        if self._sink is not None:
            try:
                self._sink(event)
            except Exception:  # noqa: BLE001 - a broken sink must not kill senders
                self._sink = None

    # -- queries -----------------------------------------------------------
    def events(
        self,
        kind: Optional[str] = None,
        source: Optional[str] = None,
    ) -> List[TraceEvent]:
        with self._lock:
            snapshot = list(self._events)
        return [
            event
            for event in snapshot
            if (kind is None or event.kind == kind)
            and (source is None or event.source == source)
        ]

    def count(self, kind: Optional[str] = None) -> int:
        return len(self.events(kind=kind))

    def kinds(self) -> Dict[str, int]:
        with self._lock:
            snapshot = list(self._events)
        histogram: Dict[str, int] = {}
        for event in snapshot:
            histogram[event.kind] = histogram.get(event.kind, 0) + 1
        return histogram

    def span(self, start_kind: str, end_kind: str, key: str) -> List[float]:
        """Durations between matching start/end events correlated by
        ``detail[key]`` (e.g. a message seq): transmission latencies."""
        return self.span_report(start_kind, end_kind, key).durations

    def span_report(
        self,
        start_kind: str,
        end_kind: str,
        key: str,
        *,
        max_pending: int = 4096,
    ) -> SpanReport:
        """Like :meth:`span` but bounded and accounting for lost events.

        At most ``max_pending`` unmatched start timestamps are held at once;
        the oldest is evicted (and counted) beyond that, so a flood of
        starts whose end events were dropped — e.g. messages lost by a
        :class:`repro.testing.faults.FaultyLink` — cannot grow memory with
        the trace length.  The report carries the unmatched counts so
        callers can see correlation health instead of silently missing data.
        """
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        starts: "OrderedDict[Any, float]" = OrderedDict()
        report = SpanReport()
        with self._lock:
            snapshot = list(self._events)
        for event in snapshot:
            correlation = event.detail.get(key)
            if correlation is None:
                continue
            if event.kind == start_kind:
                if correlation in starts:
                    # Duplicate start: the superseded one can never match.
                    report.unmatched_starts += 1
                starts[correlation] = event.timestamp
                if len(starts) > max_pending:
                    starts.popitem(last=False)
                    report.evicted_starts += 1
            elif event.kind == end_kind:
                started = starts.pop(correlation, None)
                if started is None:
                    report.unmatched_ends += 1
                else:
                    report.durations.append(event.timestamp - started)
        report.unmatched_starts += len(starts)
        return report

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def format(self, limit: int = 50) -> str:
        with self._lock:
            snapshot = list(self._events)[-limit:]
        if not snapshot:
            return "(no trace events)"
        origin = snapshot[0].timestamp
        lines = []
        for event in snapshot:
            detail = " ".join(f"{k}={v}" for k, v in event.detail.items())
            lines.append(
                f"+{event.timestamp - origin:9.4f}s  {event.kind:<12} "
                f"{event.source:<24} {detail}"
            )
        return "\n".join(lines)


def flight_recorder() -> Optional[Any]:
    """The process-wide flight recorder, or ``None`` when disabled.

    Lazy import: the recorder lives in :mod:`repro.obs.trace.flightrec`
    (obs layers on core), but core hot paths — endpoint, router, broker —
    record into it.  Resolved at component construction time, never at
    module import time, so layering stays acyclic.
    """
    try:
        from ..obs.trace.flightrec import get_recorder
    except Exception:  # noqa: BLE001 - recorder is strictly best-effort
        return None
    return get_recorder()


def flight_dump(reason: str) -> None:
    """Best-effort crash dump of this process's flight-recorder ring."""
    try:
        from ..obs.trace.flightrec import dump_all
    except Exception:  # noqa: BLE001 - recorder is strictly best-effort
        return
    dump_all(reason)


class TracingEndpointMixin:
    """Hook points components call when a tracer is attached."""

    tracer: Optional[Tracer] = None

    def trace(self, kind: str, source: str, **detail: Any) -> None:
        if self.tracer is not None:
            self.tracer.record(kind, source, **detail)
