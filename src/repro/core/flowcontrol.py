"""Adaptive overload control: priority lanes, watermarks, backpressure.

The broker degrades *gracefully* instead of silently when producers outrun
consumers (docs/FLOW_CONTROL.md).  Three pieces live here:

* :class:`LaneChannel` — the bounded two-lane primitive every flow-aware
  queue is built on.  The **control** lane (weights, commands, heartbeats,
  stats) drains first and blocks its producer with a deadline at the high
  watermark; the **bulk** lane (rollouts, generic data, batch envelopes)
  sheds its *oldest* entry past the watermark — in DRL the freshest
  trajectory is the most on-policy one, so old experience is the right
  thing to lose.  Within a lane FIFO order is untouched, so
  per-(destination, lane) ordering is exactly what it was without lanes.

* :class:`LaneHeaderQueue` — a drop-in for
  :class:`~repro.core.communicator.HeaderQueue` carrying header dicts.
  Shed headers still own their senders' object-store shares; a ``reclaim``
  callback releases them so bounded admission never turns into a refcount
  leak.

* :class:`FlowSendBuffer` / :class:`FlowReceiveBuffer` — drop-ins for the
  endpoint's :class:`~repro.core.buffers.MessageBuffer` subclasses, and
  :class:`WireCompressor` — the broker's adaptive fabric-boundary codec
  the :class:`~repro.obs.flowcontroller.FlowController` switches on when
  link throughput sags.

Everything is opt-in via :class:`~repro.core.config.FlowControlSpec`; with
the spec unset none of these classes is ever constructed.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from enum import Enum
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Sequence, Tuple

from .compression import get_codec
from .concurrency import make_lock
from .config import FlowControlSpec
from .errors import BackpressureError, BufferClosedError
from .message import DST, LANE, OBJECT_ID, SEQ, TRACE, TYPE, WIRE_CODEC, Message, MsgType
from .ownership import receives_ownership
from .serialization import deserialize, serialize
from .tracing import Tracer

#: Terminal trace-event kinds: a message that hits one of these will never
#: see "delivered"/"consumed", so span aggregation closes its pending state
#: instead of leaking it (see repro.obs.spans and docs/OBSERVABILITY.md).
TERMINAL_SHED = "shed"
TERMINAL_EXPIRED = "expired"
TERMINAL_REJECTED = "rejected"
TERMINAL_KINDS = frozenset({TERMINAL_SHED, TERMINAL_EXPIRED, TERMINAL_REJECTED})


class Lane(str, Enum):
    """Priority lanes: control overtakes bulk under load."""

    CONTROL = "control"
    BULK = "bulk"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Message types that ride the control lane.  Weight broadcasts are control
#: traffic: a stale-weights explorer produces off-policy rollouts, which is
#: strictly worse than a late trajectory.
CONTROL_TYPES = frozenset(
    {MsgType.WEIGHTS, MsgType.COMMAND, MsgType.HEARTBEAT, MsgType.STATS}
)


def lane_of(msg_type: Any) -> Lane:
    """The lane a message type rides (unknown types default to bulk)."""
    try:
        msg_type = MsgType(msg_type)
    except (ValueError, TypeError):
        return Lane.BULK
    return Lane.CONTROL if msg_type in CONTROL_TYPES else Lane.BULK


def header_lane(header: Dict[str, Any]) -> Lane:
    """The lane of a header: its stamped LANE field, else its type's lane."""
    stamped = header.get(LANE)
    if stamped is not None:
        try:
            return Lane(stamped)
        except ValueError:
            return Lane.BULK
    return lane_of(header.get(TYPE))


class _LaneCounters:
    """Per-lane accounting, mutated only under the channel lock."""

    __slots__ = ("put", "got", "shed", "blocked", "block_seconds", "expired")

    def __init__(self) -> None:
        self.put = 0
        self.got = 0
        self.shed = 0
        self.blocked = 0
        self.block_seconds = 0.0
        self.expired = 0


class LaneChannel:
    """Bounded two-lane channel with watermark admission control.

    ``control_watermark == 0`` leaves the control lane unbounded (used by
    per-destination ID queues, where blocking would stall the router for
    every destination; the bound is enforced upstream at the broker header
    queue).  ``set_pressure(True)`` scales the bulk watermark by
    ``pressure_scale`` — the admission-tightening hook the FlowController
    pulls when arena occupancy crosses its watermark.
    """

    def __init__(
        self,
        name: str,
        *,
        bulk_watermark: int,
        control_watermark: int,
        low_fraction: float = 0.5,
        pressure_scale: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.name = name
        self._clock = clock
        self._bulk_high = max(1, int(bulk_watermark))
        self._control_high = max(0, int(control_watermark))
        # The release point must sit strictly below the gate point or the
        # hysteresis latch opens the instant it closes (degenerate at
        # control_watermark == 1, where the low watermark must be 0).
        self._control_low = min(
            max(0, self._control_high - 1),
            int(self._control_high * low_fraction),
        )
        self._pressure_scale = pressure_scale
        self._lock = make_lock(f"flow.{name}")
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._lanes: Dict[Lane, Deque[Any]] = {
            Lane.CONTROL: deque(),
            Lane.BULK: deque(),
        }
        self._counters = {Lane.CONTROL: _LaneCounters(), Lane.BULK: _LaneCounters()}
        self._gated = False  # control-lane hysteresis latch
        self._pressure = False
        self._closed = False

    # -- admission -----------------------------------------------------------
    def _effective_bulk_high(self) -> int:
        if self._pressure:
            return max(1, int(self._bulk_high * self._pressure_scale))
        return self._bulk_high

    def _control_gated(self) -> bool:
        """Hysteresis: gate at the high watermark, release below the low."""
        depth = len(self._lanes[Lane.CONTROL])
        if self._gated:
            if depth <= self._control_low:
                self._gated = False
        elif depth >= self._control_high:
            self._gated = True
        return self._gated

    def offer(
        self, item: Any, lane: Lane, *, deadline_s: Optional[float] = None
    ) -> Tuple[bool, List[Any]]:
        """Admit ``item`` to ``lane``; returns ``(admitted, shed)``.

        Bulk admission always succeeds on an open channel but may shed the
        oldest queued bulk entries (returned so the caller can reclaim any
        resources they own — never under the channel lock).  Control
        admission blocks until the lane drains below its low watermark, the
        channel closes (``admitted=False``), or ``deadline_s`` elapses
        (:class:`~repro.core.errors.BackpressureError`).
        """
        shed: List[Any] = []
        with self._lock:
            if self._closed:
                return False, shed
            counters = self._counters[lane]
            queue = self._lanes[lane]
            if lane is Lane.BULK:
                high = self._effective_bulk_high()
                while len(queue) >= high:
                    shed.append(queue.popleft())
                    counters.shed += 1
                queue.append(item)
                counters.put += 1
                self._not_empty.notify()
                return True, shed
            if self._control_high > 0 and self._control_gated():
                counters.blocked += 1
                wait_start = self._clock()
                deadline = (
                    None if deadline_s is None else wait_start + deadline_s
                )
                try:
                    while not self._closed and self._control_gated():
                        if deadline is None:
                            self._not_full.wait(1.0)
                            continue
                        remaining = deadline - self._clock()
                        if remaining <= 0:
                            counters.expired += 1
                            raise BackpressureError(
                                f"channel {self.name!r}: control-lane "
                                f"admission deadline ({deadline_s}s) expired "
                                f"at depth {len(queue)}"
                            )
                        self._not_full.wait(remaining)
                finally:
                    counters.block_seconds += self._clock() - wait_start
                if self._closed:
                    return False, shed
            queue.append(item)
            counters.put += 1
            self._not_empty.notify()
            return True, shed

    # -- consumption ---------------------------------------------------------
    def _pop_locked(self) -> Tuple[bool, Any]:
        for lane in (Lane.CONTROL, Lane.BULK):
            queue = self._lanes[lane]
            if queue:
                item = queue.popleft()
                self._counters[lane].got += 1
                if lane is Lane.CONTROL:
                    self._not_full.notify()
                return True, item
        return False, None

    def take(self, timeout: Optional[float] = None) -> Optional[Any]:
        """Blocking control-first pop; None on timeout or once closed+empty."""
        deadline = None if timeout is None else self._clock() + timeout
        with self._lock:
            while True:
                found, item = self._pop_locked()
                if found:
                    return item
                if self._closed:
                    return None
                if deadline is None:
                    self._not_empty.wait(1.0)
                    continue
                remaining = deadline - self._clock()
                if remaining <= 0:
                    return None
                self._not_empty.wait(remaining)

    def take_many(
        self, max_items: int, timeout: Optional[float] = None
    ) -> List[Any]:
        """One blocking :meth:`take` plus a same-lock control-first drain."""
        first = self.take(timeout=timeout)
        if first is None:
            return []
        items = [first]
        if max_items <= 1:
            return items
        with self._lock:
            while len(items) < max_items:
                found, item = self._pop_locked()
                if not found:
                    break
                items.append(item)
        return items

    def drain(self) -> List[Any]:
        """Pop everything without blocking (control lane first)."""
        with self._lock:
            items = list(self._lanes[Lane.CONTROL]) + list(self._lanes[Lane.BULK])
            self._lanes[Lane.CONTROL].clear()
            self._lanes[Lane.BULK].clear()
            self._not_full.notify_all()
            return items

    # -- pressure / lifecycle -------------------------------------------------
    def set_pressure(self, active: bool) -> List[Any]:
        """Tighten (or relax) bulk admission; returns freshly shed entries."""
        shed: List[Any] = []
        with self._lock:
            if self._pressure == active:
                return shed
            self._pressure = active
            if active:
                queue = self._lanes[Lane.BULK]
                high = self._effective_bulk_high()
                counters = self._counters[Lane.BULK]
                while len(queue) > high:
                    shed.append(queue.popleft())
                    counters.shed += 1
            return shed

    @property
    def pressure(self) -> bool:
        with self._lock:
            return self._pressure

    def close(self) -> None:
        """Close and wake every blocked producer and consumer."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    # -- introspection --------------------------------------------------------
    def qsize(self) -> int:
        with self._lock:
            return sum(len(queue) for queue in self._lanes.values())

    def lane_depths(self) -> Dict[str, int]:
        with self._lock:
            return {str(lane): len(queue) for lane, queue in self._lanes.items()}

    def flow_stats(self) -> Dict[str, float]:
        """Backpressure accounting for the telemetry sampler."""
        with self._lock:
            stats: Dict[str, float] = {"pressure": float(self._pressure)}
            for lane, counters in self._counters.items():
                prefix = str(lane)
                stats[f"{prefix}_depth"] = float(len(self._lanes[lane]))
                stats[f"{prefix}_put"] = float(counters.put)
                stats[f"{prefix}_got"] = float(counters.got)
                stats[f"{prefix}_shed"] = float(counters.shed)
                stats[f"{prefix}_blocked"] = float(counters.blocked)
                stats[f"{prefix}_block_seconds"] = counters.block_seconds
                stats[f"{prefix}_expired"] = float(counters.expired)
            return stats


#: How a flow-aware queue treats its control lane.
CONTROL_BLOCK = "block"  # block-with-deadline (header queue, send buffer)
CONTROL_UNBOUNDED = "unbounded"  # never block (ID queues, receive buffer)


class LaneHeaderQueue:
    """Flow-controlled drop-in for :class:`~repro.core.communicator.HeaderQueue`.

    Headers are stamped with their lane on admission.  ``reclaim`` is
    invoked (outside the channel lock) for every shed header so its
    object-store shares are released — bounded admission must not leak.

    Ownership of *rejected* headers depends on the control policy:

    * ``CONTROL_BLOCK`` (the broker header queue) — the queue owns every
      header handed to ``put``: shed, deadline-expired, and
      rejected-on-close headers are all reclaimed internally, and
      :meth:`join_producers` lets ``Broker.stop()`` wait until every
      blocked producer has been woken *and* finished reclaiming, so the
      shutdown refcount audit is deterministic.
    * ``CONTROL_UNBOUNDED`` (per-destination ID queues) — the classic
      ``HeaderQueue`` contract: the caller releases on a ``False`` return
      (the router already does exactly that for dead destinations).
    """

    def __init__(
        self,
        name: str,
        spec: FlowControlSpec,
        *,
        reclaim: Optional[Callable[[Dict[str, Any]], None]] = None,
        control_policy: str = CONTROL_BLOCK,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.name = name
        self._spec = spec
        self._reclaim = reclaim
        self._blocking = control_policy == CONTROL_BLOCK
        self._clock = clock
        self._channel = LaneChannel(
            name,
            bulk_watermark=spec.bulk_watermark,
            control_watermark=spec.control_watermark if self._blocking else 0,
            low_fraction=spec.low_fraction,
            pressure_scale=spec.pressure_scale,
            clock=clock,
        )
        self._inflight = 0
        self._inflight_lock = make_lock(f"{name}.inflight")
        self._inflight_idle = threading.Condition(self._inflight_lock)
        #: optional :class:`Tracer` — records one terminal event per header
        #: this queue sheds, expires, or rejects, so span aggregation sees a
        #: definite outcome instead of a forever-pending entry
        self.tracer: Optional[Tracer] = None

    def _record_terminal(
        self, outcome: str, headers: Sequence[Dict[str, Any]]
    ) -> None:
        tracer = self.tracer
        if tracer is None or not headers:
            return
        for header in headers:
            tracer.record(
                outcome, self.name,
                seq=header.get(SEQ), trace=header.get(TRACE),
                dst=",".join(header.get(DST) or ()),
                type=str(header.get(TYPE)), lane=header.get(LANE),
            )

    @receives_ownership("shed headers still carry their senders' shares")
    def _reclaim_all(self, shed: Sequence[Dict[str, Any]]) -> None:
        if self._reclaim is None:
            return
        for header in shed:
            self._reclaim(header)

    def _enter_put(self) -> None:
        with self._inflight_lock:
            self._inflight += 1

    def _exit_put(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1
            if self._inflight == 0:
                self._inflight_idle.notify_all()

    def put(self, header: Dict[str, Any]) -> bool:
        """Admit one header; ``False`` when dropped (queue closed).

        See the class docstring for who releases a rejected header's
        shares: this queue itself under ``CONTROL_BLOCK``, the caller
        under ``CONTROL_UNBOUNDED``.
        """
        self._enter_put()
        try:
            return self._put_locked_out(header)
        finally:
            self._exit_put()

    def _put_locked_out(self, header: Dict[str, Any]) -> bool:
        lane = header_lane(header)
        header[LANE] = str(lane)
        deadline = (
            self._spec.control_deadline_s
            if self._blocking and lane is Lane.CONTROL
            else None
        )
        try:
            admitted, shed = self._channel.offer(
                header, lane, deadline_s=deadline
            )
        except BackpressureError:
            self._record_terminal(TERMINAL_EXPIRED, [header])
            if self._blocking:
                self._reclaim_all([header])
            raise
        self._record_terminal(TERMINAL_SHED, shed)
        self._reclaim_all(shed)
        if not admitted and self._blocking:
            # Non-blocking (ID-queue) rejects are terminal-traced by the
            # caller, who owns the header's shares on a False return.
            self._record_terminal(TERMINAL_REJECTED, [header])
            self._reclaim_all([header])
        return admitted

    def put_many(self, headers: Sequence[Dict[str, Any]]) -> int:
        """Admit several headers; returns how many were enqueued.

        Unlike ``HeaderQueue.put_many`` (all-or-nothing on an unbounded
        queue), bounded admission can stop part-way: when the queue closes
        mid-batch the count is returned, and when a control deadline
        expires the raised :class:`BackpressureError` carries it as
        ``accepted``.  Under ``CONTROL_BLOCK`` the unenqueued remainder is
        reclaimed here; under ``CONTROL_UNBOUNDED`` the caller releases
        ``headers[accepted:]``.
        """
        self._enter_put()
        try:
            accepted = 0
            total = len(headers)
            for index, header in enumerate(headers):
                try:
                    if not self._put_locked_out(header):
                        break
                except BackpressureError as exc:
                    if self._blocking:
                        self._record_terminal(
                            TERMINAL_REJECTED, headers[index + 1 :]
                        )
                        self._reclaim_all(headers[index + 1 :])
                    exc.accepted = accepted
                    raise
                accepted += 1
            if accepted < total and self._blocking:
                # _put_locked_out reclaimed the rejected header itself;
                # the untried remainder is reclaimed here.
                self._record_terminal(
                    TERMINAL_REJECTED, headers[accepted + 1 :]
                )
                self._reclaim_all(headers[accepted + 1 :])
            return accepted
        finally:
            self._exit_put()

    def join_producers(self, timeout: float = 2.0) -> bool:
        """Wait until no ``put``/``put_many`` is in flight.

        Called by ``Broker.stop()`` after :meth:`close`: once this returns
        ``True``, every producer woken by the close has finished reclaiming
        its rejected headers, so a refcount audit cannot race them.
        """
        deadline = self._clock() + timeout
        with self._inflight_lock:
            while self._inflight > 0:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    return False
                self._inflight_idle.wait(remaining)
        return True

    def get(self, timeout: Optional[float] = None) -> Optional[Dict[str, Any]]:
        return self._channel.take(timeout=timeout)

    def get_many(
        self, max_items: int, timeout: Optional[float] = None
    ) -> List[Dict[str, Any]]:
        return self._channel.take_many(max_items, timeout=timeout)

    @receives_ownership("drained headers still carry their senders' shares")
    def drain(self) -> List[Dict[str, Any]]:
        return self._channel.drain()

    def set_pressure(self, active: bool) -> None:
        shed = self._channel.set_pressure(active)
        self._record_terminal(TERMINAL_SHED, shed)
        self._reclaim_all(shed)

    def close(self) -> None:
        self._channel.close()

    @property
    def closed(self) -> bool:
        return self._channel.closed

    def qsize(self) -> int:
        return self._channel.qsize()

    def lane_depths(self) -> Dict[str, int]:
        return self._channel.lane_depths()

    def flow_stats(self) -> Dict[str, float]:
        return self._channel.flow_stats()


class FlowMessageBuffer:
    """Flow-controlled drop-in for :class:`~repro.core.buffers.MessageBuffer`.

    Holds whole :class:`~repro.core.message.Message` objects (no
    object-store shares, so sheds only lose the message itself).  ``put``
    raises :class:`~repro.core.errors.BufferClosedError` on a closed
    buffer — including a blocked control put woken by ``close()`` — which
    existing shutdown paths already treat as the end of the world
    (``RuntimeError`` subclass).
    """

    def __init__(
        self,
        name: str,
        spec: FlowControlSpec,
        *,
        control_policy: str = CONTROL_BLOCK,
        on_shed: Optional[Callable[[Message], None]] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.name = name
        self._spec = spec
        self._blocking = control_policy == CONTROL_BLOCK
        self._on_shed = on_shed
        self._channel = LaneChannel(
            f"buffer.{name}",
            bulk_watermark=spec.bulk_watermark,
            control_watermark=spec.control_watermark if self._blocking else 0,
            low_fraction=spec.low_fraction,
            pressure_scale=spec.pressure_scale,
            clock=clock,
        )
        self.total_put = 0
        self.total_got = 0
        self.total_shed = 0
        self._totals_lock = make_lock(f"buffer.{name}.totals")

    def put(self, message: Message, timeout: Optional[float] = None) -> None:
        del timeout  # admission is watermark-driven, not queue.Full-driven
        if self._channel.closed:
            raise BufferClosedError(f"buffer {self.name!r} is closed")
        lane = lane_of(message.msg_type)
        message.header[LANE] = str(lane)
        deadline = (
            self._spec.control_deadline_s
            if self._blocking and lane is Lane.CONTROL
            else None
        )
        admitted, shed = self._channel.offer(message, lane, deadline_s=deadline)
        if shed:
            with self._totals_lock:
                self.total_shed += len(shed)
            if self._on_shed is not None:
                for lost in shed:
                    self._on_shed(lost)
        if not admitted:
            raise BufferClosedError(
                f"buffer {self.name!r} closed while a send awaited admission"
            )
        with self._totals_lock:
            self.total_put += 1

    def put_many(self, messages: Sequence[Message]) -> None:
        for message in messages:
            self.put(message)

    def get(self, timeout: Optional[float] = None) -> Optional[Message]:
        message = self._channel.take(timeout=timeout)
        if message is not None:
            with self._totals_lock:
                self.total_got += 1
        return message

    def get_many(
        self, max_items: int, timeout: Optional[float] = None
    ) -> List[Message]:
        messages = self._channel.take_many(max_items, timeout=timeout)
        if messages:
            with self._totals_lock:
                self.total_got += len(messages)
        return messages

    def get_nowait(self) -> Optional[Message]:
        return self.get(timeout=0.0) if not self.empty() else None

    def drain(self) -> Iterator[Message]:
        while True:
            message = self.get(timeout=0.0)
            if message is None:
                return
            yield message

    def empty(self) -> bool:
        return self._channel.qsize() == 0

    def qsize(self) -> int:
        return self._channel.qsize()

    def lane_depths(self) -> Dict[str, int]:
        return self._channel.lane_depths()

    def flow_stats(self) -> Dict[str, float]:
        return self._channel.flow_stats()

    def close(self) -> None:
        self._channel.close()

    @property
    def closed(self) -> bool:
        return self._channel.closed


class FlowSendBuffer(FlowMessageBuffer):
    """Send-side staging with real producer backpressure.

    Control/weights sends block the *workhorse* at the watermark (deadline
    bounded — this is where "explicit backpressure propagated to senders"
    reaches the API surface); bulk trajectory sends shed the oldest staged
    rollout instead.
    """

    def __init__(self, name: str, spec: FlowControlSpec, **kwargs: Any):
        super().__init__(name, spec, control_policy=CONTROL_BLOCK, **kwargs)


class FlowReceiveBuffer(FlowMessageBuffer):
    """Receive-side staging: control consumed first, bulk bounded.

    The receiver thread must never block on a deadline (it would stall
    deliveries for every lane), so the control lane is unbounded here — its
    volume is already bounded upstream by the header-queue watermark.  A
    slow consumer sheds its own oldest bulk deliveries, which keeps memory
    bounded end-to-end instead of moving the unbounded queue one hop
    downstream.
    """

    def __init__(self, name: str, spec: FlowControlSpec, **kwargs: Any):
        super().__init__(name, spec, control_policy=CONTROL_UNBOUNDED, **kwargs)


class WireCompressor:
    """Adaptive fabric-boundary compression for bulk-lane bodies.

    Off by default; the FlowController enables it when a link's throughput
    sags (CPU-for-bandwidth, the same trade the store-level
    :class:`~repro.core.compression.CompressionPolicy` makes at rest).
    ``encode`` serializes+compresses the body and rewrites the wire byte
    count, so a throttled NIC model charges the compressed size; ``decode``
    on the receiving broker restores the original body before routing.
    """

    def __init__(self, name: str, *, codec: str = "zlib", min_bytes: int = 1 << 10):
        self.name = name
        self.codec = codec
        self.min_bytes = min_bytes
        self._enabled = False
        self._lock = make_lock(f"wire.{name}")
        self.compressed_total = 0
        self.bytes_in = 0
        self.bytes_out = 0

    @property
    def enabled(self) -> bool:
        with self._lock:
            return self._enabled

    def set_enabled(self, active: bool) -> None:
        with self._lock:
            self._enabled = active

    def wants(self, header: Dict[str, Any], body: Any, nbytes: int) -> bool:
        return (
            self.enabled
            and body is not None
            and nbytes >= self.min_bytes
            and header.get(WIRE_CODEC) is None
            and header_lane(header) is Lane.BULK
        )

    def encode(
        self, header: Dict[str, Any], body: Any, nbytes: int
    ) -> Tuple[Dict[str, Any], Any, int]:
        blob = get_codec(self.codec).compress(serialize(body))
        header = dict(header)
        header[WIRE_CODEC] = self.codec
        with self._lock:
            self.compressed_total += 1
            self.bytes_in += max(0, int(nbytes))
            self.bytes_out += len(blob)
        return header, blob, len(blob)

    def decode(
        self, header: Dict[str, Any], body: Any
    ) -> Tuple[Dict[str, Any], Any]:
        return wire_decode(header, body)

    def stats(self) -> Dict[str, float]:
        with self._lock:
            return {
                "enabled": float(self._enabled),
                "compressed_total": float(self.compressed_total),
                "bytes_in": float(self.bytes_in),
                "bytes_out": float(self.bytes_out),
            }


def wire_decode(header: Dict[str, Any], body: Any) -> Tuple[Dict[str, Any], Any]:
    """Restore a body the sending broker compressed at the fabric boundary.

    Driven purely by the header's ``WIRE_CODEC`` stamp so a receiving broker
    decodes correctly regardless of its own wire-compression state.
    """
    codec = header.get(WIRE_CODEC)
    if codec is None:
        return header, body
    restored = deserialize(get_codec(codec).decompress(body))
    header = dict(header)
    header[WIRE_CODEC] = None
    return header, restored


def release_header_shares(
    store: Any, header: Dict[str, Any], *, shares: Optional[int] = None
) -> None:
    """Release ``shares`` object-store refcounts held by ``header``.

    ``shares=None`` releases the full destination fan-out (a header that
    never crossed the router still owns one share per destination); ID
    queues pass ``shares=1`` (the router already split the fan-out).
    Already-released bodies are tolerated — reclamation races shutdown.
    """
    object_id = header.get(OBJECT_ID)
    if object_id is None:
        return
    if shares is None:
        shares = max(1, len(header.get(DST) or ()))
    for _ in range(shares):
        try:
            store.release(object_id)
        except Exception:  # noqa: BLE001 - already freed (late shed/shutdown)
            break
