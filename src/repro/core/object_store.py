"""Object stores backing the shared-memory communicator.

The broker's shared-memory communicator keeps message bodies inside an
object store so that cross-process communication is zero-copy: only object
IDs travel through queues (§3.2.1).  Two implementations are provided:

* :class:`InMemoryObjectStore` — bodies stored by reference in one address
  space.  Used by the default thread-backed deployment; "zero-copy" is
  literal because consumers receive the same object.  Reference counting
  mirrors the broadcast fan-out: a body inserted for N destinations is
  freed after N fetch-and-release cycles.

* :class:`SharedMemoryObjectStore` — bodies serialized into
  ``multiprocessing.shared_memory``, the closest stdlib analogue of the
  paper's Arrow/Plasma store, usable across real OS processes.  Bodies are
  scatter-gathered directly into blocks of a pooled
  :class:`~repro.core.arena.SlabArena` (no per-message segment creation, no
  intermediate ``bytes``); the legacy one-segment-per-message path remains
  as the arena-exhaustion fallback and as the ``use_arena=False`` baseline
  the ablation benchmarks compare against.

Both ``put`` methods accept an optional precomputed
:class:`~repro.core.serialization.Frame` so senders that already framed the
body (to size its header) never pickle it a second time.
"""

from __future__ import annotations

import itertools
import logging
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from .arena import ArenaError, BlockHandle, SlabArena
from .compression import _HDR_RAW, _HDR_ZLIB, CompressionPolicy, disabled_policy
from .concurrency import make_lock
from .errors import ObjectStoreError, RefcountLeakError, UnknownObjectError
from .ownership import borrows_view
from .serialization import Frame, deserialize, make_frame, serialize

_OBJECT_COUNTER = itertools.count()

_LOG = logging.getLogger(__name__)


def _new_object_id(prefix: str) -> str:
    return f"{prefix}-{next(_OBJECT_COUNTER)}"


@dataclass
class _Entry:
    body: Any
    refcount: int
    nbytes: int
    compressed: bool = False


class ObjectStore:
    """Interface: insert a body for N consumers, fetch by ID, release.

    ``nbytes`` is an optional caller-supplied payload size used purely for
    cost accounting when the store itself does not serialize.  ``frame`` is
    an optional predigested scatter-gather descriptor of ``body`` — stores
    that serialize reuse it instead of re-framing the same object.
    """

    def put(
        self,
        body: Any,
        refcount: int = 1,
        nbytes: Optional[int] = None,
        frame: Optional[Frame] = None,
    ) -> str:
        raise NotImplementedError

    def get(self, object_id: str) -> Any:
        raise NotImplementedError

    def release(self, object_id: str) -> None:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def close(self, audit: bool = False) -> None:
        """Free any OS-backed resources (segments, arena slabs).

        A no-op for stores that only hold Python references; called by the
        communicator when its broker stops.  Must be idempotent.
        """

    def leak_report(self) -> List[Tuple[str, int, int]]:
        """``(object_id, refcount, nbytes)`` for every unreleased entry.

        At a clean shutdown — every consumer drained its queues and released
        what it fetched — this is empty.  Anything left is a refcount leak.
        """
        raise NotImplementedError

    def assert_balanced(self, context: str = "") -> None:
        """Raise :class:`RefcountLeakError` unless all refcounts balanced.

        This is the shutdown hook the runtime refcount auditor drives (see
        :func:`repro.analysis.runtime.audit_object_store`); the broker calls
        it at :meth:`~repro.core.broker.Broker.stop` when runtime checks are
        enabled.
        """
        leaks = self.leak_report()
        if not leaks:
            return
        where = f" at {context}" if context else ""
        detail = ", ".join(
            f"{object_id} (refcount={refcount}, {nbytes}B)"
            for object_id, refcount, nbytes in leaks[:10]
        )
        more = "" if len(leaks) <= 10 else f" … and {len(leaks) - 10} more"
        raise RefcountLeakError(
            f"object store refcount imbalance{where}: {len(leaks)} "
            f"unreleased object(s): {detail}{more}"
        )


class InMemoryObjectStore(ObjectStore):
    """Reference-passing store for thread-backed deployments.

    When ``copy_on_fetch`` is true, bodies take a serialize/deserialize round
    trip on ``get`` so consumers cannot alias the producer's object — this
    models the copy semantics of a real cross-process store and is what the
    data-transmission benchmarks use to charge realistic costs.
    """

    def __init__(
        self,
        *,
        copy_on_fetch: bool = False,
        compression: Optional[CompressionPolicy] = None,
        capacity_bytes: Optional[int] = None,
        copy_bandwidth: Optional[float] = None,
    ):
        self._entries: Dict[str, _Entry] = {}
        self._lock = make_lock("object_store.in_memory")
        self._copy_on_fetch = copy_on_fetch
        self._compression = compression or disabled_policy()
        self._capacity_bytes = capacity_bytes
        if copy_bandwidth is not None and copy_bandwidth <= 0:
            raise ObjectStoreError("copy_bandwidth must be positive")
        self._copy_bandwidth = copy_bandwidth
        self._used_bytes = 0
        self._total_refcounts = 0
        self.total_put = 0
        self.total_get = 0

    def _charge_copy(self, nbytes: int) -> None:
        """Model serialize/deserialize memory-bandwidth cost.

        Real pickling under CPython holds the GIL, which would serialize the
        very copies whose overlap the paper studies.  When ``copy_bandwidth``
        is set (bytes/s), the store charges the modelled copy time as a
        sleep — which releases the GIL, letting sender/receiver threads
        overlap exactly the way out-of-GIL memcpy/compression do in the real
        system.  Benchmarks set the same bandwidth for every framework under
        comparison; unit tests leave it off.
        """
        if self._copy_bandwidth is not None and nbytes > 0:
            time.sleep(nbytes / self._copy_bandwidth)

    def put(
        self,
        body: Any,
        refcount: int = 1,
        nbytes: Optional[int] = None,
        frame: Optional[Frame] = None,
    ) -> str:
        if refcount < 1:
            raise ObjectStoreError(f"refcount must be >= 1, got {refcount}")
        if self._copy_on_fetch:
            blob = frame.to_bytes() if frame is not None else serialize(body)
            framed, compressed = self._compression.encode(blob)
            stored: Any = framed
            nbytes = len(framed)
            self._charge_copy(nbytes)
        else:
            # Reference-passing mode: no real serialization, but still charge
            # the modelled copy cost for the declared payload size so that
            # comparisons against RPC-based baselines are apples-to-apples.
            stored = body
            compressed = False
            nbytes = int(nbytes or 0)
            self._charge_copy(nbytes)
        object_id = _new_object_id("obj")
        with self._lock:
            if (
                self._capacity_bytes is not None
                and self._used_bytes + nbytes > self._capacity_bytes
            ):
                raise ObjectStoreError(
                    f"object store over capacity: {self._used_bytes + nbytes} "
                    f"> {self._capacity_bytes} bytes"
                )
            self._entries[object_id] = _Entry(stored, refcount, nbytes, compressed)
            self._used_bytes += nbytes
            self._total_refcounts += refcount
            self.total_put += 1
        return object_id

    def get(self, object_id: str) -> Any:
        with self._lock:
            entry = self._entries.get(object_id)
            if entry is None:
                raise UnknownObjectError(object_id)
            self.total_get += 1
            body = entry.body
            nbytes = entry.nbytes
        if self._copy_on_fetch:
            self._charge_copy(nbytes)
            return deserialize(self._compression.decode(body))
        self._charge_copy(nbytes)
        return body

    def release(self, object_id: str) -> None:
        with self._lock:
            entry = self._entries.get(object_id)
            if entry is None:
                raise UnknownObjectError(object_id)
            entry.refcount -= 1
            self._total_refcounts -= 1
            if entry.refcount <= 0:
                del self._entries[object_id]
                self._used_bytes -= entry.nbytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def leak_report(self) -> List[Tuple[str, int, int]]:
        with self._lock:
            return [
                (object_id, entry.refcount, entry.nbytes)
                for object_id, entry in sorted(self._entries.items())
            ]

    @property
    def used_bytes(self) -> int:
        with self._lock:
            return self._used_bytes

    @property
    def outstanding_refcounts(self) -> int:
        """Sum of refcounts across live entries, maintained incrementally.

        O(1) so the telemetry sampler can poll it without scanning the store
        under its lock (``leak_report`` contends with the data path).
        """
        with self._lock:
            return self._total_refcounts

    @property
    def compression(self) -> CompressionPolicy:
        return self._compression

    def set_compression(self, policy: CompressionPolicy) -> None:
        """Swap the copy-on-fetch compression policy (atomic ref swap).

        Safe at runtime only because stored blobs are self-describing
        (codec frame prefix): decode never consults the current policy's
        threshold, and ``decode`` on any :class:`CompressionPolicy`
        dispatches on the prefix byte.
        """
        self._compression = policy


#: Where a SHM entry's bytes live: an arena block or a dedicated segment.
_Location = Tuple[str, Union[BlockHandle, str]]
_LOC_ARENA = "arena"
_LOC_SEGMENT = "segment"


class SharedMemoryObjectStore(ObjectStore):
    """Object store over ``multiprocessing.shared_memory``.

    The fast path scatter-gathers each body's frame directly into a pooled
    :class:`~repro.core.arena.SlabArena` block — one raw-prefix byte plus
    the frame segments, no intermediate ``bytes`` object, no per-message
    segment creation.  Bodies the compression policy wants compressed are
    materialized once for the codec; arena exhaustion (or
    ``use_arena=False``) falls back to the legacy dedicated-segment path.
    The creating process owns block/segment reclamation, driven by the
    refcounts it tracks.
    """

    def __init__(
        self,
        *,
        compression: Optional[CompressionPolicy] = None,
        use_arena: bool = True,
        arena: Optional[SlabArena] = None,
    ):
        from multiprocessing import shared_memory  # local import: optional path

        self._shared_memory = shared_memory
        self._compression = compression or disabled_policy()
        self._refcounts: Dict[str, int] = {}
        self._sizes: Dict[str, int] = {}
        self._locations: Dict[str, _Location] = {}
        self._total_refcounts = 0
        self._lock = make_lock("object_store.shm")
        if arena is not None:
            self._arena: Optional[SlabArena] = arena
        elif use_arena:
            self._arena = SlabArena(name="store")
        else:
            self._arena = None
        self.total_arena_put = 0
        self.total_segment_put = 0
        #: segment-path puts forced by arena exhaustion specifically — the
        #: silent-degradation signal (total_segment_put also counts bodies
        #: that *chose* the segment path: compressed, or ``use_arena=False``)
        self.total_overflow_put = 0
        self._overflow_warned = False

    @property
    def arena(self) -> Optional[SlabArena]:
        return self._arena

    @property
    def compression(self) -> CompressionPolicy:
        return self._compression

    def set_compression(self, policy: CompressionPolicy) -> None:
        """Swap the at-rest compression policy (FlowController adaptation).

        An atomic reference swap: in-flight puts finish under whichever
        policy they read; entries already stored are self-describing (the
        frame prefix byte), so reads never depend on the current policy.
        """
        self._compression = policy

    def arena_stats(self) -> Dict[str, int]:
        """Occupancy gauges for the telemetry sampler (empty: arena off)."""
        if self._arena is None:
            return {}
        return self._arena.stats()

    # -- write paths --------------------------------------------------------
    def _write_arena(self, frame: Frame) -> Optional[Tuple[BlockHandle, int]]:
        """Scatter-gather ``frame`` into an arena block (None: fall back)."""
        assert self._arena is not None
        total = 1 + frame.nbytes  # raw-compression prefix + frame
        try:
            block = self._arena.alloc(total)
        except ArenaError:
            return None  # exhausted (or closed): dedicated-segment fallback
        block.buf[0:1] = _HDR_RAW
        frame.serialize_into(block.buf[1:total])
        block.release()  # no exported view may outlive the block (huge unlink)
        return block.handle, total

    def _write_segment(self, framed: bytes) -> str:
        """Legacy path: one dedicated segment per body."""
        name = _new_object_id("xtshm")
        segment = self._shared_memory.SharedMemory(
            name=name, create=True, size=max(1, len(framed))
        )
        try:
            segment.buf[: len(framed)] = framed
        finally:
            segment.close()
        return name

    def put(
        self,
        body: Any,
        refcount: int = 1,
        nbytes: Optional[int] = None,
        frame: Optional[Frame] = None,
    ) -> str:
        del nbytes  # the real serialization below defines the size
        if refcount < 1:
            raise ObjectStoreError(f"refcount must be >= 1, got {refcount}")
        if frame is None:
            frame = make_frame(body)
        location: Optional[_Location] = None
        total = 0
        wanted_arena = self._arena is not None and not self._compression.should_compress(
            frame.nbytes
        )
        if wanted_arena:
            written = self._write_arena(frame)
            if written is not None:
                handle, total = written
                location = (_LOC_ARENA, handle)
                self.total_arena_put += 1
        if location is None:
            if wanted_arena:
                # Arena exhausted: degrade loudly, not silently — the
                # per-message segment path pays the full shm_open/unlink
                # round trip the arena exists to avoid.
                self.total_overflow_put += 1
                if not self._overflow_warned:
                    self._overflow_warned = True
                    _LOG.warning(
                        "shared-memory store: arena exhausted, falling back "
                        "to per-message overflow segments (%dB body); "
                        "counted in total_overflow_put from here on",
                        frame.nbytes,
                    )
            framed, _ = self._compression.encode(frame.to_bytes())
            total = len(framed)
            location = (_LOC_SEGMENT, self._write_segment(framed))
            self.total_segment_put += 1
        object_id = _new_object_id("xtobj")
        with self._lock:
            self._refcounts[object_id] = refcount
            self._sizes[object_id] = total
            self._locations[object_id] = location
            self._total_refcounts += refcount
        return object_id

    # -- read path ----------------------------------------------------------
    def get(self, object_id: str) -> Any:
        with self._lock:
            size = self._sizes.get(object_id)
            location = self._locations.get(object_id)
        if size is None or location is None:
            raise UnknownObjectError(object_id)
        kind, where = location
        if kind == _LOC_ARENA:
            assert self._arena is not None and isinstance(where, BlockHandle)
            # Pin the block for the duration of the decode: a concurrent
            # release() of the final refcount now raises in the releasing
            # thread (sanitizer mode) instead of recycling memory we are
            # still parsing.
            token = self._arena.register_export(where)
            try:
                view = self._arena.view(where)[:size]
                return self._decode_view(view)
            finally:
                self._arena.unregister_export(where, token)
        assert isinstance(where, str)
        try:
            segment = self._shared_memory.SharedMemory(name=where)
        except FileNotFoundError:
            raise UnknownObjectError(object_id) from None
        try:
            return self._decode_view(memoryview(segment.buf)[:size])
        finally:
            segment.close()

    @borrows_view("decodes in place; only copied buffers leave the call")
    def _decode_view(self, view: memoryview) -> Any:
        """Deserialize a framed body straight from shared memory.

        Raw bodies skip the contiguous ``decode`` copy entirely — the
        deserializer parses the view in place and copies only the array
        buffers (mandatory here: the block is recycled after release).
        """
        prefix = bytes(view[0:1])
        if prefix == _HDR_RAW:
            return deserialize(view[1:], copy=True)
        if prefix == _HDR_ZLIB:
            return deserialize(self._compression.decode(bytes(view)))
        raise ObjectStoreError(f"unknown compression frame prefix {prefix!r}")

    # -- release ------------------------------------------------------------
    def release(self, object_id: str) -> None:
        location: Optional[_Location] = None
        with self._lock:
            if object_id not in self._refcounts:
                raise UnknownObjectError(object_id)
            self._refcounts[object_id] -= 1
            self._total_refcounts -= 1
            if self._refcounts[object_id] <= 0:
                del self._refcounts[object_id]
                del self._sizes[object_id]
                location = self._locations.pop(object_id)
        if location is None:
            return
        kind, where = location
        if kind == _LOC_ARENA:
            assert self._arena is not None and isinstance(where, BlockHandle)
            self._arena.free(where)
            return
        assert isinstance(where, str)
        try:
            segment = self._shared_memory.SharedMemory(name=where)
        except FileNotFoundError:
            return
        segment.close()
        segment.unlink()

    def __len__(self) -> int:
        with self._lock:
            return len(self._refcounts)

    @property
    def outstanding_refcounts(self) -> int:
        with self._lock:
            return self._total_refcounts

    @property
    def used_bytes(self) -> int:
        with self._lock:
            return sum(self._sizes.values())

    def leak_report(self) -> List[Tuple[str, int, int]]:
        with self._lock:
            return [
                (object_id, refcount, self._sizes.get(object_id, 0))
                for object_id, refcount in sorted(self._refcounts.items())
            ]

    def close(self, audit: bool = False) -> None:
        """Free every remaining entry and the arena's slabs.

        With ``audit`` the arena's block accounting is checked first —
        after all refcounts were balanced, every arena block must have been
        freed, or the store leaked slab space.
        """
        with self._lock:
            locations = list(self._locations.values())
            self._refcounts.clear()
            self._sizes.clear()
            self._locations.clear()
            self._total_refcounts = 0
        for kind, where in locations:
            if kind != _LOC_SEGMENT:
                continue
            assert isinstance(where, str)
            try:
                segment = self._shared_memory.SharedMemory(name=where)
            except FileNotFoundError:
                continue
            segment.close()
            segment.unlink()
        if self._arena is not None:
            if audit and not locations:
                self._arena.assert_balanced(context="store close")
            self._arena.close()
