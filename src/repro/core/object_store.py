"""Object stores backing the shared-memory communicator.

The broker's shared-memory communicator keeps message bodies inside an
object store so that cross-process communication is zero-copy: only object
IDs travel through queues (§3.2.1).  Two implementations are provided:

* :class:`InMemoryObjectStore` — bodies stored by reference in one address
  space.  Used by the default thread-backed deployment; "zero-copy" is
  literal because consumers receive the same object.  Reference counting
  mirrors the broadcast fan-out: a body inserted for N destinations is
  freed after N fetch-and-release cycles.

* :class:`SharedMemoryObjectStore` — bodies serialized into
  ``multiprocessing.shared_memory`` segments, the closest stdlib analogue of
  the paper's Arrow/Plasma store, usable across real OS processes.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from .compression import CompressionPolicy, disabled_policy
from .concurrency import make_lock
from .errors import ObjectStoreError, RefcountLeakError, UnknownObjectError
from .serialization import deserialize, serialize

_OBJECT_COUNTER = itertools.count()


def _new_object_id(prefix: str) -> str:
    return f"{prefix}-{next(_OBJECT_COUNTER)}"


@dataclass
class _Entry:
    body: Any
    refcount: int
    nbytes: int
    compressed: bool = False


class ObjectStore:
    """Interface: insert a body for N consumers, fetch by ID, release.

    ``nbytes`` is an optional caller-supplied payload size used purely for
    cost accounting when the store itself does not serialize.
    """

    def put(self, body: Any, refcount: int = 1, nbytes: Optional[int] = None) -> str:
        raise NotImplementedError

    def get(self, object_id: str) -> Any:
        raise NotImplementedError

    def release(self, object_id: str) -> None:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def leak_report(self) -> List[Tuple[str, int, int]]:
        """``(object_id, refcount, nbytes)`` for every unreleased entry.

        At a clean shutdown — every consumer drained its queues and released
        what it fetched — this is empty.  Anything left is a refcount leak.
        """
        raise NotImplementedError

    def assert_balanced(self, context: str = "") -> None:
        """Raise :class:`RefcountLeakError` unless all refcounts balanced.

        This is the shutdown hook the runtime refcount auditor drives (see
        :func:`repro.analysis.runtime.audit_object_store`); the broker calls
        it at :meth:`~repro.core.broker.Broker.stop` when runtime checks are
        enabled.
        """
        leaks = self.leak_report()
        if not leaks:
            return
        where = f" at {context}" if context else ""
        detail = ", ".join(
            f"{object_id} (refcount={refcount}, {nbytes}B)"
            for object_id, refcount, nbytes in leaks[:10]
        )
        more = "" if len(leaks) <= 10 else f" … and {len(leaks) - 10} more"
        raise RefcountLeakError(
            f"object store refcount imbalance{where}: {len(leaks)} "
            f"unreleased object(s): {detail}{more}"
        )


class InMemoryObjectStore(ObjectStore):
    """Reference-passing store for thread-backed deployments.

    When ``copy_on_fetch`` is true, bodies take a serialize/deserialize round
    trip on ``get`` so consumers cannot alias the producer's object — this
    models the copy semantics of a real cross-process store and is what the
    data-transmission benchmarks use to charge realistic costs.
    """

    def __init__(
        self,
        *,
        copy_on_fetch: bool = False,
        compression: Optional[CompressionPolicy] = None,
        capacity_bytes: Optional[int] = None,
        copy_bandwidth: Optional[float] = None,
    ):
        self._entries: Dict[str, _Entry] = {}
        self._lock = make_lock("object_store.in_memory")
        self._copy_on_fetch = copy_on_fetch
        self._compression = compression or disabled_policy()
        self._capacity_bytes = capacity_bytes
        if copy_bandwidth is not None and copy_bandwidth <= 0:
            raise ObjectStoreError("copy_bandwidth must be positive")
        self._copy_bandwidth = copy_bandwidth
        self._used_bytes = 0
        self._total_refcounts = 0
        self.total_put = 0
        self.total_get = 0

    def _charge_copy(self, nbytes: int) -> None:
        """Model serialize/deserialize memory-bandwidth cost.

        Real pickling under CPython holds the GIL, which would serialize the
        very copies whose overlap the paper studies.  When ``copy_bandwidth``
        is set (bytes/s), the store charges the modelled copy time as a
        sleep — which releases the GIL, letting sender/receiver threads
        overlap exactly the way out-of-GIL memcpy/compression do in the real
        system.  Benchmarks set the same bandwidth for every framework under
        comparison; unit tests leave it off.
        """
        if self._copy_bandwidth is not None and nbytes > 0:
            time.sleep(nbytes / self._copy_bandwidth)

    def put(self, body: Any, refcount: int = 1, nbytes: Optional[int] = None) -> str:
        if refcount < 1:
            raise ObjectStoreError(f"refcount must be >= 1, got {refcount}")
        if self._copy_on_fetch:
            blob = serialize(body)
            framed, compressed = self._compression.encode(blob)
            stored: Any = framed
            nbytes = len(framed)
            self._charge_copy(nbytes)
        else:
            # Reference-passing mode: no real serialization, but still charge
            # the modelled copy cost for the declared payload size so that
            # comparisons against RPC-based baselines are apples-to-apples.
            stored = body
            compressed = False
            nbytes = int(nbytes or 0)
            self._charge_copy(nbytes)
        object_id = _new_object_id("obj")
        with self._lock:
            if (
                self._capacity_bytes is not None
                and self._used_bytes + nbytes > self._capacity_bytes
            ):
                raise ObjectStoreError(
                    f"object store over capacity: {self._used_bytes + nbytes} "
                    f"> {self._capacity_bytes} bytes"
                )
            self._entries[object_id] = _Entry(stored, refcount, nbytes, compressed)
            self._used_bytes += nbytes
            self._total_refcounts += refcount
            self.total_put += 1
        return object_id

    def get(self, object_id: str) -> Any:
        with self._lock:
            entry = self._entries.get(object_id)
            if entry is None:
                raise UnknownObjectError(object_id)
            self.total_get += 1
            body = entry.body
            nbytes = entry.nbytes
        if self._copy_on_fetch:
            self._charge_copy(nbytes)
            return deserialize(self._compression.decode(body))
        self._charge_copy(nbytes)
        return body

    def release(self, object_id: str) -> None:
        with self._lock:
            entry = self._entries.get(object_id)
            if entry is None:
                raise UnknownObjectError(object_id)
            entry.refcount -= 1
            self._total_refcounts -= 1
            if entry.refcount <= 0:
                del self._entries[object_id]
                self._used_bytes -= entry.nbytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def leak_report(self) -> List[Tuple[str, int, int]]:
        with self._lock:
            return [
                (object_id, entry.refcount, entry.nbytes)
                for object_id, entry in sorted(self._entries.items())
            ]

    @property
    def used_bytes(self) -> int:
        with self._lock:
            return self._used_bytes

    @property
    def outstanding_refcounts(self) -> int:
        """Sum of refcounts across live entries, maintained incrementally.

        O(1) so the telemetry sampler can poll it without scanning the store
        under its lock (``leak_report`` contends with the data path).
        """
        with self._lock:
            return self._total_refcounts


class SharedMemoryObjectStore(ObjectStore):
    """Object store over ``multiprocessing.shared_memory`` segments.

    Each body is serialized (and maybe compressed) into its own shared
    segment; the object ID is the segment name, so any process that learns
    the ID can attach and read without copying through a pipe.  The creating
    process owns unlinking, driven by refcounts it tracks.
    """

    def __init__(self, *, compression: Optional[CompressionPolicy] = None):
        from multiprocessing import shared_memory  # local import: optional path

        self._shared_memory = shared_memory
        self._compression = compression or disabled_policy()
        self._refcounts: Dict[str, int] = {}
        self._sizes: Dict[str, int] = {}
        self._total_refcounts = 0
        self._lock = make_lock("object_store.shm")

    def put(self, body: Any, refcount: int = 1, nbytes: Optional[int] = None) -> str:
        del nbytes  # the real serialization below defines the size
        if refcount < 1:
            raise ObjectStoreError(f"refcount must be >= 1, got {refcount}")
        framed, _ = self._compression.encode(serialize(body))
        name = _new_object_id("xtshm")
        segment = self._shared_memory.SharedMemory(
            name=name, create=True, size=max(1, len(framed))
        )
        try:
            segment.buf[: len(framed)] = framed
        finally:
            segment.close()
        with self._lock:
            self._refcounts[name] = refcount
            self._sizes[name] = len(framed)
            self._total_refcounts += refcount
        return name

    def get(self, object_id: str) -> Any:
        with self._lock:
            size = self._sizes.get(object_id)
        if size is None:
            raise UnknownObjectError(object_id)
        try:
            segment = self._shared_memory.SharedMemory(name=object_id)
        except FileNotFoundError:
            raise UnknownObjectError(object_id) from None
        try:
            framed = bytes(segment.buf[:size])
        finally:
            segment.close()
        return deserialize(self._compression.decode(framed))

    def release(self, object_id: str) -> None:
        with self._lock:
            if object_id not in self._refcounts:
                raise UnknownObjectError(object_id)
            self._refcounts[object_id] -= 1
            self._total_refcounts -= 1
            done = self._refcounts[object_id] <= 0
            if done:
                del self._refcounts[object_id]
                del self._sizes[object_id]
        if done:
            try:
                segment = self._shared_memory.SharedMemory(name=object_id)
            except FileNotFoundError:
                return
            segment.close()
            segment.unlink()

    def __len__(self) -> int:
        with self._lock:
            return len(self._refcounts)

    @property
    def outstanding_refcounts(self) -> int:
        with self._lock:
            return self._total_refcounts

    def leak_report(self) -> List[Tuple[str, int, int]]:
        with self._lock:
            return [
                (object_id, refcount, self._sizes.get(object_id, 0))
                for object_id, refcount in sorted(self._refcounts.items())
            ]

    def close(self) -> None:
        """Unlink every remaining segment (cleanup for tests/shutdown)."""
        with self._lock:
            names = list(self._refcounts)
            self._refcounts.clear()
            self._sizes.clear()
            self._total_refcounts = 0
        for name in names:
            try:
                segment = self._shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                continue
            segment.close()
            segment.unlink()
