"""Terminal visualization of run statistics.

The center controller "collects and visualizes statistics from explorers
and the learner" (§3.2.2).  These helpers render the collected series as
plain-text charts: sparklines for compact progress lines and axis plots for
run summaries — no plotting dependency required.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """Render values as a one-line unicode sparkline.

    ``width`` caps the number of characters by averaging adjacent buckets.
    """
    values = [float(v) for v in values]
    if not values:
        return ""
    if width is not None and width > 0 and len(values) > width:
        bucket = len(values) / width
        values = [
            sum(values[int(i * bucket) : max(int((i + 1) * bucket), int(i * bucket) + 1)])
            / max(len(values[int(i * bucket) : max(int((i + 1) * bucket), int(i * bucket) + 1)]), 1)
            for i in range(width)
        ]
    low, high = min(values), max(values)
    span = high - low
    if span <= 0:
        return _SPARK_CHARS[0] * len(values)
    steps = len(_SPARK_CHARS) - 1
    return "".join(
        _SPARK_CHARS[int(round((v - low) / span * steps))] for v in values
    )


def ascii_plot(
    series: Sequence[Tuple[float, float]],
    *,
    width: int = 60,
    height: int = 12,
    title: str = "",
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Render an (x, y) series as an ASCII scatter/line chart."""
    if not series:
        return f"{title}: (empty series)"
    xs = [float(x) for x, _ in series]
    ys = [float(y) for _, y in series]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - x_low) / x_span * (width - 1))
        row = height - 1 - int((y - y_low) / y_span * (height - 1))
        grid[row][col] = "*"

    lines: List[str] = []
    if title:
        lines.append(title)
    label_width = max(len(f"{y_high:.3g}"), len(f"{y_low:.3g}"))
    for index, row in enumerate(grid):
        if index == 0:
            label = f"{y_high:.3g}".rjust(label_width)
        elif index == height - 1:
            label = f"{y_low:.3g}".rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    footer = f"{x_low:.3g}".ljust(width // 2) + f"{x_high:.3g}".rjust(width // 2)
    lines.append(" " * (label_width + 2) + footer)
    if x_label or y_label:
        lines.append(" " * (label_width + 2) + f"[x: {x_label}]  [y: {y_label}]")
    return "\n".join(lines)


def render_run_summary(result: Any) -> str:
    """Visualize a :class:`repro.runtime.RunResult` for the terminal."""
    lines = [
        f"run finished: {result.shutdown_reason}",
        f"  elapsed {result.elapsed_s:.1f}s | trained steps "
        f"{result.total_trained_steps} | sessions {result.train_sessions} | "
        f"episodes {result.episode_count}",
    ]
    if result.average_return is not None:
        lines.append(f"  average episode return: {result.average_return:.2f}")
    if result.returns:
        lines.append(f"  returns   {sparkline(result.returns, width=60)}")
    if result.throughput_series:
        lines.append(
            f"  steps/s   {sparkline([y for _, y in result.throughput_series], width=60)}"
        )
        lines.append(
            ascii_plot(
                result.throughput_series,
                title="  learner throughput over time",
                x_label="s",
                y_label="steps/s",
            )
        )
    lines.append(
        f"  learner mean wait {result.mean_wait_s * 1e3:.2f}ms | "
        f"mean train {result.mean_train_s * 1e3:.2f}ms"
    )
    return "\n".join(lines)
