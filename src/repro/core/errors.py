"""Framework exceptions.

All errors raised by the framework derive from :class:`XingTianError` so
callers can catch framework failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class XingTianError(Exception):
    """Base class for all framework errors."""


class ConfigError(XingTianError):
    """Raised when a configuration file or object is invalid."""


class TransportError(XingTianError):
    """Raised when a communication channel fails."""


class ObjectStoreError(XingTianError):
    """Raised on object-store failures (unknown ID, store full, ...)."""


class UnknownObjectError(ObjectStoreError):
    """Raised when an object ID is not present in the object store."""


class RoutingError(XingTianError):
    """Raised when a message cannot be routed to its destination."""


class UnknownDestinationError(RoutingError):
    """Raised when a message names a destination no broker knows about."""


class LifecycleError(XingTianError):
    """Raised on invalid lifecycle transitions (start twice, use after stop)."""


class RegistryError(XingTianError):
    """Raised when a registry lookup or registration fails."""


class CheckpointError(XingTianError):
    """Raised when saving or restoring a checkpoint fails."""
