"""Framework exceptions.

All errors raised by the framework derive from :class:`XingTianError` so
callers can catch framework failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class XingTianError(Exception):
    """Base class for all framework errors."""


class ConfigError(XingTianError):
    """Raised when a configuration file or object is invalid."""


class TransportError(XingTianError):
    """Raised when a communication channel fails."""


class BackpressureError(TransportError):
    """Raised when a control-lane send cannot be admitted before its deadline.

    Bounded admission (docs/FLOW_CONTROL.md) blocks control/weights
    producers at the high watermark; if the queue has not drained below the
    low watermark within the configured deadline the put fails loudly with
    this error instead of waiting forever.  ``accepted`` carries how many
    headers of a batched put were admitted before the expiry so callers can
    release the object-store shares of the unenqueued remainder.
    """

    def __init__(self, message: str, accepted: int = 0):
        super().__init__(message)
        self.accepted = accepted


class BufferClosedError(TransportError, RuntimeError):
    """Raised by flow-controlled buffers on ``put`` after ``close()``.

    Subclasses ``RuntimeError`` so existing callers that treat a closed
    :class:`~repro.core.buffers.MessageBuffer` as a shutdown signal keep
    working; blocked senders woken by a shutdown observe this instead of
    hanging until their backpressure deadline.
    """


class ObjectStoreError(XingTianError):
    """Raised on object-store failures (unknown ID, store full, ...)."""


class UnknownObjectError(ObjectStoreError):
    """Raised when an object ID is not present in the object store."""


class RoutingError(XingTianError):
    """Raised when a message cannot be routed to its destination."""


class UnknownDestinationError(RoutingError):
    """Raised when a message names a destination no broker knows about."""


class LifecycleError(XingTianError):
    """Raised on invalid lifecycle transitions (start twice, use after stop)."""


class RegistryError(XingTianError):
    """Raised when a registry lookup or registration fails."""


class CheckpointError(XingTianError):
    """Raised when saving or restoring a checkpoint fails."""


class WorkerCrashedError(XingTianError):
    """Raised when a workhorse thread died from an exception.

    Wraps the original exception (available as ``__cause__``) so a crash
    captured inside a worker thread cannot be silently lost at ``join``.
    """


class RefcountLeakError(ObjectStoreError):
    """Raised by the shutdown refcount audit when object-store refs are
    unbalanced: a body was inserted for N consumers but fewer than N
    fetch-and-release cycles happened, stranding it in the store."""


class LockOrderError(XingTianError):
    """Raised (in strict mode) by the runtime lock-order monitor when the
    lock-acquisition graph contains a cycle — two threads can take the same
    locks in opposite orders, a potential deadlock."""


class AnalysisError(XingTianError):
    """Raised on static-analysis engine failures (bad baseline file, ...)."""


class TrainingFailedError(XingTianError):
    """Raised when a run can no longer make progress.

    The supervisor raises this instead of letting ``wait()`` spin forever:
    workers are dead and the restart budget is exhausted (§3.2.2 promises a
    stop decision; a dead deployment must produce one too).
    """
