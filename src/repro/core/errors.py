"""Framework exceptions.

All errors raised by the framework derive from :class:`XingTianError` so
callers can catch framework failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class XingTianError(Exception):
    """Base class for all framework errors."""


class ConfigError(XingTianError):
    """Raised when a configuration file or object is invalid."""


class TransportError(XingTianError):
    """Raised when a communication channel fails."""


class ObjectStoreError(XingTianError):
    """Raised on object-store failures (unknown ID, store full, ...)."""


class UnknownObjectError(ObjectStoreError):
    """Raised when an object ID is not present in the object store."""


class RoutingError(XingTianError):
    """Raised when a message cannot be routed to its destination."""


class UnknownDestinationError(RoutingError):
    """Raised when a message names a destination no broker knows about."""


class LifecycleError(XingTianError):
    """Raised on invalid lifecycle transitions (start twice, use after stop)."""


class RegistryError(XingTianError):
    """Raised when a registry lookup or registration fails."""


class CheckpointError(XingTianError):
    """Raised when saving or restoring a checkpoint fails."""


class WorkerCrashedError(XingTianError):
    """Raised when a workhorse thread died from an exception.

    Wraps the original exception (available as ``__cause__``) so a crash
    captured inside a worker thread cannot be silently lost at ``join``.
    """


class TrainingFailedError(XingTianError):
    """Raised when a run can no longer make progress.

    The supervisor raises this instead of letting ``wait()`` spin forever:
    workers are dead and the restart budget is exhausted (§3.2.2 promises a
    stop decision; a dead deployment must produce one too).
    """
