"""The shared-memory communicator (§3.2.1).

The broker process creates a shared-memory communicator holding:

* a **header queue** — senders push message headers here the instant a body
  has been inserted into the object store;
* an **object store** — message bodies live here for zero-copy transfer;
* one **ID queue per explorer/learner process** — the router drops headers
  (carrying the body's object ID) into the queues of all destinations.

All queues expose a blocking ``get`` so monitoring threads run event-driven:
the moment a header lands, the blocked ``get`` returns and transmission
continues immediately (§4.1).
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Dict, List, Optional, Sequence

from .concurrency import make_lock, runtime_checks_enabled
from .config import FlowControlSpec
from .errors import RoutingError
from .flowcontrol import (
    CONTROL_UNBOUNDED,
    LaneHeaderQueue,
    release_header_shares,
)
from .object_store import InMemoryObjectStore, ObjectStore
from .ownership import receives_ownership


class HeaderQueue:
    """A closeable blocking queue of message headers."""

    _CLOSED = object()

    def __init__(self, name: str = "", maxsize: int = 0):
        self.name = name
        self._queue: "queue.Queue[Any]" = queue.Queue(maxsize=maxsize)
        self._closed = threading.Event()

    def put(self, header: Dict[str, Any]) -> bool:
        """Enqueue ``header``; returns ``False`` when dropped (queue closed).

        Callers that inserted a body into the object store on behalf of this
        header must release its refcount when the put is dropped, or the
        body leaks (the destination will never fetch-and-release it).
        """
        if self._closed.is_set():
            return False  # drop late headers during shutdown
        self._queue.put(header)
        return True

    def get(self, timeout: Optional[float] = None) -> Optional[Dict[str, Any]]:
        """Blocking get; returns ``None`` on timeout or once closed."""
        try:
            item = self._queue.get(timeout=timeout)
        except queue.Empty:
            return None
        if item is self._CLOSED:
            self._queue.put(self._CLOSED)  # wake any other waiters
            return None
        return item

    def put_many(self, headers: Sequence[Dict[str, Any]]) -> bool:
        """Enqueue several headers under one lock acquisition.

        Returns ``False`` (enqueuing nothing) when the queue is closed —
        the same all-or-nothing drop contract as :meth:`put`, so callers
        release every affected refcount, not a guessed subset.  Bounded
        queues fall back to per-item blocking puts.
        """
        if self._closed.is_set():
            return False
        if not headers:
            return True
        inner = self._queue
        if inner.maxsize > 0:
            for header in headers:
                inner.put(header)
            return True
        with inner.mutex:
            inner.queue.extend(headers)
            inner.unfinished_tasks += len(headers)
            inner.not_empty.notify(len(headers))
        return True

    def get_many(
        self, max_items: int, timeout: Optional[float] = None
    ) -> List[Dict[str, Any]]:
        """One blocking :meth:`get` plus a same-lock drain up to
        ``max_items`` — consumers (router, receiver threads) amortize the
        queue lock over a whole wakeup's worth of headers."""
        first = self.get(timeout=timeout)
        if first is None:
            return []
        items = [first]
        if max_items <= 1:
            return items
        inner = self._queue
        with inner.mutex:
            while len(items) < max_items and inner._qsize():
                item = inner.queue[0]
                if item is self._CLOSED:
                    break  # leave the sentinel for other waiters
                inner.queue.popleft()
                inner.not_full.notify()
                items.append(item)
        return items

    def close(self) -> None:
        if not self._closed.is_set():
            self._closed.set()
            self._queue.put(self._CLOSED)

    @receives_ownership("drained headers still carry their senders' shares")
    def drain(self) -> List[Dict[str, Any]]:
        """Pop and return every queued header without blocking.

        Used at endpoint shutdown to recover headers nobody will consume so
        their object-store refcounts can be released.  Sentinel markers are
        discarded; one is re-inserted afterwards when the queue is closed so
        late waiters still wake up.
        """
        items: List[Dict[str, Any]] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is self._CLOSED:
                continue
            items.append(item)
        if self._closed.is_set():
            self._queue.put(self._CLOSED)
        return items

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def qsize(self) -> int:
        return self._queue.qsize()


class ShareMemCommunicator:
    """Header queue + object store + per-destination ID queues.

    The communicator is algorithm-agnostic: it never inspects bodies, only
    headers (§3.2.1).  Destination processes register to receive an ID
    queue; the router resolves header destinations to these queues.
    """

    def __init__(
        self,
        name: str = "communicator",
        store: Optional[ObjectStore] = None,
        *,
        flow: Optional[FlowControlSpec] = None,
    ):
        self.name = name
        self.flow = flow if flow is not None and flow.enabled else None
        self.object_store: ObjectStore = store if store is not None else InMemoryObjectStore()
        if self.flow is not None:
            # Senders feel backpressure here: control blocks with a
            # deadline, bulk sheds its oldest headers (whose shares the
            # reclaim callback releases — bounded admission must not leak).
            self.header_queue: Any = LaneHeaderQueue(
                f"{name}.headers", self.flow, reclaim=self._reclaim_header
            )
        else:
            self.header_queue = HeaderQueue(f"{name}.headers")
        self._id_queues: Dict[str, Any] = {}
        self._lock = make_lock(f"{name}.registry")
        self._tracer: Any = None

    # -- tracing -----------------------------------------------------------
    def set_tracer(self, tracer: Any) -> None:
        """Attach a tracer to every flow-controlled queue (current and
        future): shed/expired/rejected headers then leave terminal trace
        events instead of silently vanishing.  A no-op for plain queues —
        they never drop admitted headers."""
        with self._lock:
            self._tracer = tracer
            queues = list(self._id_queues.values())
        for queue in [self.header_queue, *queues]:
            if isinstance(queue, LaneHeaderQueue):
                queue.tracer = tracer

    # -- flow-control reclaim ----------------------------------------------
    @receives_ownership("shed headers still carry their senders' shares")
    def _reclaim_header(self, header: Dict[str, Any]) -> None:
        """Release every share of a header shed before it crossed the router."""
        release_header_shares(self.object_store, header)

    @receives_ownership("shed headers still carry one routed share")
    def _reclaim_routed_header(self, header: Dict[str, Any]) -> None:
        """Release the single share of a header shed from an ID queue."""
        release_header_shares(self.object_store, header, shares=1)

    # -- registration -----------------------------------------------------
    def register(self, process_name: str) -> Any:
        """Create (or return) the ID queue for a local process."""
        with self._lock:
            id_queue = self._id_queues.get(process_name)
            if id_queue is None:
                if self.flow is not None:
                    # ID queues never block the router (one slow
                    # destination must not stall every other lane), so
                    # their control lane is unbounded; the broker header
                    # queue already bounds control volume upstream.
                    id_queue = LaneHeaderQueue(
                        f"{self.name}.id.{process_name}",
                        self.flow,
                        reclaim=self._reclaim_routed_header,
                        control_policy=CONTROL_UNBOUNDED,
                    )
                    id_queue.tracer = self._tracer
                else:
                    id_queue = HeaderQueue(f"{self.name}.id.{process_name}")
                self._id_queues[process_name] = id_queue
            return id_queue

    def unregister(self, process_name: str) -> None:
        with self._lock:
            id_queue = self._id_queues.pop(process_name, None)
        if id_queue is not None:
            id_queue.close()

    def id_queue(self, process_name: str) -> Any:
        with self._lock:
            try:
                return self._id_queues[process_name]
            except KeyError:
                raise RoutingError(
                    f"no ID queue registered for {process_name!r} on {self.name!r}"
                ) from None

    def local_names(self) -> List[str]:
        with self._lock:
            return list(self._id_queues)

    def queue_depths(self) -> Dict[str, int]:
        """Current depth of every per-process ID queue (telemetry probe)."""
        with self._lock:
            queues = dict(self._id_queues)
        return {name: id_queue.qsize() for name, id_queue in queues.items()}

    def lane_depths(self) -> Dict[str, Dict[str, int]]:
        """Per-lane depth of every flow-controlled queue (telemetry probe).

        Empty when flow control is off — plain queues have no lanes.
        """
        if self.flow is None:
            return {}
        with self._lock:
            queues = dict(self._id_queues)
        depths = {"headers": self.header_queue.lane_depths()}
        for name, id_queue in queues.items():
            depths[f"id.{name}"] = id_queue.lane_depths()
        return depths

    def flow_stats(self) -> Dict[str, Dict[str, float]]:
        """Backpressure counters of every flow-controlled queue."""
        if self.flow is None:
            return {}
        with self._lock:
            queues = dict(self._id_queues)
        stats = {"headers": self.header_queue.flow_stats()}
        for name, id_queue in queues.items():
            stats[f"id.{name}"] = id_queue.flow_stats()
        return stats

    def set_pressure(self, active: bool) -> None:
        """Tighten (or relax) bulk admission on every flow-controlled queue.

        Pulled by the FlowController when arena occupancy crosses its high
        watermark; a no-op without flow control.
        """
        if self.flow is None:
            return
        with self._lock:
            queues = list(self._id_queues.values())
        self.header_queue.set_pressure(active)
        for id_queue in queues:
            id_queue.set_pressure(active)

    def is_local(self, process_name: str) -> bool:
        with self._lock:
            return process_name in self._id_queues

    @receives_ownership("parked headers still carry their senders' shares")
    def drain_parked(self) -> List[Dict[str, Any]]:
        """Pop every header still parked in any ID queue (shutdown path).

        Each returned header holds one object-store refcount share that its
        destination will never fetch-and-release; the broker releases them
        so the shutdown refcount audit measures real accounting bugs, not
        teardown order.
        """
        with self._lock:
            queues = list(self._id_queues.values())
        headers: List[Dict[str, Any]] = []
        for id_queue in queues:
            headers.extend(id_queue.drain())
        return headers

    # -- shutdown ----------------------------------------------------------
    def close(self) -> None:
        self.header_queue.close()
        with self._lock:
            queues = list(self._id_queues.values())
        for id_queue in queues:
            id_queue.close()
        # OS-backed stores hold segments / arena slabs that outlive their
        # entries; in-memory stores make this a no-op.  Under runtime checks
        # the close also audits the arena's block accounting.
        self.object_store.close(audit=runtime_checks_enabled())
