"""The learner process (§3.2.1).

Hosts the trainer workhorse thread — almost symmetric to the explorer.  The
trainer consumes ROLLOUT messages from the local receive buffer (into which
the asynchronous channel has already pushed them, possibly while a previous
training session was still running — the overlap the paper exploits),
feeds them to the :class:`Algorithm`, trains whenever the algorithm says it
is ready, and stages WEIGHTS broadcasts.

Instrumented with exactly the quantities the paper's figures report:

* consumed rollout steps/second (throughput, Figs. 8–10a);
* *actual wait* — time the trainer spends blocked on data before a training
  session starts (Figs. 8–10b and the CDF in Fig. 8c);
* per-session training time.
"""

from __future__ import annotations

import time
from typing import Any, Callable, List, Optional

from ..api.algorithm import Algorithm
from .broker import Broker
from .checkpoint import Checkpointer
from .endpoint import ProcessEndpoint, WorkhorseThread
from .errors import WorkerCrashedError
from .message import CMD_SHUTDOWN, MsgType, make_message
from .serialization import payload_nbytes
from .stats import LatencyRecorder, ProcessStats, ThroughputMeter


class LearnerProcess:
    """The learner: endpoint + trainer thread + an :class:`Algorithm`."""

    def __init__(
        self,
        name: str,
        broker: Broker,
        algorithm_factory: Callable[[], Algorithm],
        explorer_names: List[str],
        *,
        controller_name: Optional[str] = None,
        stats_interval: float = 0.5,
        broadcast_initial_weights: bool = True,
        heartbeat_interval: Optional[float] = None,
        checkpointer: Optional[Checkpointer] = None,
    ):
        self.name = name
        self.endpoint = ProcessEndpoint(name, broker)
        self.algorithm = algorithm_factory()
        self.explorer_names = list(explorer_names)
        self.controller_name = controller_name
        self.stats_interval = stats_interval
        self._broadcast_initial = broadcast_initial_weights
        #: seconds between HEARTBEAT messages to the controller (None = off)
        self.heartbeat_interval = heartbeat_interval
        self._last_heartbeat = time.monotonic()
        self.heartbeats_sent = 0
        #: periodic weight + optimizer-state snapshots for crash recovery
        self.checkpointer = checkpointer
        self.workhorse = WorkhorseThread(f"{name}.trainer", self._step)
        # Instrumentation (the paper's Figs. 8-10 quantities).
        self.consumed_meter = ThroughputMeter()
        self.wait_recorder = LatencyRecorder(f"{name}.actual-wait")
        self.train_recorder = LatencyRecorder(f"{name}.train-time")
        self.train_sessions = 0
        self.broadcasts = 0
        self._wait_started: Optional[float] = None
        self._last_stats = time.monotonic()
        self._trained_steps_since_stats = 0
        self._sessions_since_stats = 0
        # Telemetry instruments (None until attach_metrics).
        self._wait_histogram: Optional[Any] = None
        self._train_histogram: Optional[Any] = None
        self._sessions_counter: Optional[Any] = None
        self._trained_steps_counter: Optional[Any] = None
        self._broadcasts_counter: Optional[Any] = None

    def attach_metrics(self, registry: Any) -> None:
        """Register trainer wait/train histograms and progress counters."""
        labels = {"process": self.name}
        self._wait_histogram = registry.histogram(
            "trainer_wait_seconds", labels,
            help="actual wait: idle time before a training session starts",
        )
        self._train_histogram = registry.histogram(
            "trainer_train_seconds", labels,
            help="wall time of one training session",
        )
        self._sessions_counter = registry.counter(
            "trainer_train_sessions_total", labels,
            help="completed training sessions",
        )
        self._trained_steps_counter = registry.counter(
            "trainer_trained_steps_total", labels,
            help="rollout steps consumed by training",
        )
        self._broadcasts_counter = registry.counter(
            "trainer_broadcasts_total", labels,
            help="weight broadcasts staged for explorers",
        )

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        self.endpoint.start()
        if self._broadcast_initial:
            self._broadcast(self.explorer_names)
        self.workhorse.start()

    def stop(self, timeout: float = 5.0) -> None:
        self.workhorse.stop()
        self.endpoint.stop(timeout=timeout)
        self.workhorse.join(timeout=timeout)

    def join(self, timeout: Optional[float] = None, *, raise_on_error: bool = True) -> None:
        """Wait for the trainer; re-raise a captured crash by default."""
        self.workhorse.join(timeout=timeout)
        error = self.workhorse.error
        if raise_on_error and error is not None:
            raise WorkerCrashedError(
                f"learner {self.name!r} workhorse crashed: {error!r}"
            ) from error

    # -- trainer loop -----------------------------------------------------------
    def _step(self) -> bool:
        self._maybe_send_heartbeat()
        if self._wait_started is None:
            self._wait_started = time.monotonic()
        message = self.endpoint.receive(timeout=0.05)
        if message is None:
            if self.endpoint.receive_buffer.closed or self.workhorse.stopping:
                return False
            return True
        if message.msg_type == MsgType.COMMAND:
            return getattr(message.body, "name", None) != CMD_SHUTDOWN
        if message.msg_type != MsgType.ROLLOUT:
            return True

        steps = len(message.body.get("reward", ())) if message.body else 0
        self.algorithm.prepare_data(message.body, source=message.src)

        trained = False
        while self.algorithm.ready_to_train():
            # A burst of back-to-back training sessions can outlast the
            # failure detector's dead_after; keep beating inside the loop.
            self._maybe_send_heartbeat()
            # "Actual wait": from going idle to having enough data to train.
            if self._wait_started is not None:
                waited = time.monotonic() - self._wait_started
                self.wait_recorder.record(waited)
                if self._wait_histogram is not None:
                    self._wait_histogram.observe(waited)
                self._wait_started = None
            train_started = time.monotonic()
            with self.train_recorder.time():
                metrics = self.algorithm.train()
            if self._train_histogram is not None:
                self._train_histogram.observe(time.monotonic() - train_started)
                self._sessions_counter.inc()
            self.train_sessions += 1
            self._sessions_since_stats += 1
            trained = True
            consumed = int(metrics.get("trained_steps", steps))
            self.consumed_meter.record(consumed)
            if self._trained_steps_counter is not None:
                self._trained_steps_counter.inc(consumed)
            self._trained_steps_since_stats += consumed
            if self.algorithm.should_broadcast():
                self._broadcast(self.algorithm.broadcast_targets(self.explorer_names))
        if trained:
            self._wait_started = time.monotonic()
            if self.checkpointer is not None:
                self.checkpointer.maybe_save(self.algorithm)
        self._maybe_send_stats()
        return True

    def _broadcast(self, targets: List[str]) -> None:
        if not targets:
            return
        weights = self.algorithm.get_weights()
        message = make_message(
            self.name,
            list(targets),
            MsgType.WEIGHTS,
            weights,
            body_size=payload_nbytes(weights),
        )
        self.endpoint.send(message)
        self.broadcasts += 1
        if self._broadcasts_counter is not None:
            self._broadcasts_counter.inc()

    def _maybe_send_heartbeat(self) -> None:
        if self.heartbeat_interval is None or self.controller_name is None:
            return
        now = time.monotonic()
        if now - self._last_heartbeat < self.heartbeat_interval:
            return
        self._last_heartbeat = now
        self.endpoint.send(
            make_message(self.name, [self.controller_name], MsgType.HEARTBEAT, None)
        )
        self.heartbeats_sent += 1

    def _maybe_send_stats(self) -> None:
        if self.controller_name is None:
            return
        now = time.monotonic()
        if now - self._last_stats < self.stats_interval:
            return
        self._last_stats = now
        report = ProcessStats(
            source=self.name,
            train_iterations=self._sessions_since_stats,
            extra={"trained_steps": float(self._trained_steps_since_stats)},
        )
        self._sessions_since_stats = 0
        self._trained_steps_since_stats = 0
        self.endpoint.send(
            make_message(self.name, [self.controller_name], MsgType.STATS, report)
        )
