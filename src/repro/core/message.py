"""Messages and message headers.

The paper organizes message headers as Python dicts (§4.1).  A message is a
lightweight header plus a body.  Headers carry routing metadata (source,
destination list, message type, sequence number) and — once the body has been
inserted into the shared-memory communicator's object store — the body's
object ID.  Bodies carry the actual payload: rollouts, DNN parameters,
statistics, or control commands.
"""

from __future__ import annotations

import itertools
import os
import random
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple


class MsgType(str, Enum):
    """Kinds of messages that flow through the asynchronous channel."""

    ROLLOUT = "rollout"
    WEIGHTS = "weights"
    STATS = "stats"
    COMMAND = "command"
    HEARTBEAT = "heartbeat"  # liveness beacon from workhorses to their controller
    DATA = "data"  # generic payloads (dummy DRL algorithm, tests)
    BATCH = "batch"  # transport envelope: several coalesced small messages

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_SEQ = itertools.count()

# Header keys.  Headers are plain dicts per the paper; these constants keep
# producers and consumers in agreement.
SRC = "src"
DST = "dst"
TYPE = "type"
SEQ = "seq"
OBJECT_ID = "object_id"
CREATED_AT = "created_at"
BODY_SIZE = "body_size"
COMPRESSED = "compressed"
BATCH_COUNT = "batch_count"  # sub-message count of a MsgType.BATCH envelope
#: ``[(seq, trace_id), ...]`` of a BATCH envelope's sub-messages, stamped by
#: :func:`pack_batch` so the router can attribute one "routed" event to each
#: coalesced message without opening the envelope body
BATCH_SEQS = "batch_seqs"
#: compact causal-trace context (see :mod:`repro.obs.trace`): ``TRACE`` is a
#: u64 id shared by every event in one message's causal chain, ``SPAN`` a u64
#: id unique to this hop.  Stamped by :func:`make_header`, so the ids survive
#: coalescing (sub-headers travel whole through pack/unpack), mp metadata
#: hops, and flow-control sheds.
TRACE = "trace"
SPAN = "span"
PARENT_SPAN = "parent_span"
#: priority lane ("control" or "bulk") stamped by flow-controlled queues;
#: absent when overload control is off, so default headers are unchanged
LANE = "lane"
#: codec name set by the broker when a body was compressed at the fabric
#: boundary (adaptive wire compression; see docs/FLOW_CONTROL.md)
WIRE_CODEC = "wire_codec"
#: name of the socket link a message crossed, stamped by
#: :class:`repro.transport.tcp.SocketLink` so receiver-side trace events
#: can attribute the message to a real wire hop (docs/NETWORKING.md)
WIRE_HOP = "wire_hop"


# -- trace-context ids ------------------------------------------------------
# Trace/span ids are u64 ints: (32-bit per-process nonce << 32) | 32-bit
# counter.  Ints pack straight into the flight recorder's fixed-size records
# (no allocation, no string interning) and render as hex in exports.  The
# nonce mixes the pid with random bits and is re-derived after fork, so ids
# from forked explorers never collide even though the counter state is
# inherited.
_TRACE_COUNTER = itertools.count(1)
_TRACE_NONCE: Dict[str, Any] = {"pid": None, "bits": 0}


def _trace_nonce() -> int:
    pid = os.getpid()
    if _TRACE_NONCE["pid"] != pid:
        _TRACE_NONCE["pid"] = pid
        _TRACE_NONCE["bits"] = (
            ((pid & 0xFFFF) << 16) | random.getrandbits(16)
        ) << 32
    return _TRACE_NONCE["bits"]


def new_trace_id() -> int:
    """A fresh process-unique u64 trace (or span) id."""
    return _trace_nonce() | (next(_TRACE_COUNTER) & 0xFFFFFFFF)


def format_trace_id(trace_id: Optional[int]) -> str:
    """Hex rendering used by exports (``0`` / ``None`` -> ``"-"``)."""
    if not trace_id:
        return "-"
    return f"{trace_id:016x}"


def ensure_trace(header: Dict[str, Any]) -> Tuple[int, int]:
    """Stamp trace context into ``header`` if absent; return (trace, span)."""
    trace_id = header.get(TRACE)
    if not trace_id:
        trace_id = new_trace_id()
        header[TRACE] = trace_id
    span_id = header.get(SPAN)
    if not span_id:
        span_id = new_trace_id()
        header[SPAN] = span_id
    return trace_id, span_id


def make_header(
    src: str,
    dst: Iterable[str],
    msg_type: MsgType,
    *,
    body_size: int = 0,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build a message header dict.

    ``dst`` is a list because weight broadcasts from the learner may target
    multiple explorers (§3.2.1); rollout messages always target the single
    learner.
    """
    header: Dict[str, Any] = {
        SRC: src,
        DST: list(dst),
        TYPE: MsgType(msg_type),
        SEQ: next(_SEQ),
        OBJECT_ID: None,
        CREATED_AT: time.monotonic(),
        BODY_SIZE: int(body_size),
        COMPRESSED: False,
        TRACE: new_trace_id(),
        SPAN: new_trace_id(),
    }
    if extra:
        header.update(extra)
    return header


@dataclass
class Message:
    """A header/body pair.

    Inside a process the body travels by reference; across the communicator
    the body lives in the object store and only the header (with the body's
    object ID attached) crosses queues.
    """

    header: Dict[str, Any]
    body: Any = None
    #: cached scatter-gather descriptor of ``body`` (see
    #: :func:`repro.core.serialization.measure`): senders that framed the
    #: body to size its header stash the frame here so the object store can
    #: write it without pickling the same object a second time.
    frame: Any = field(default=None, repr=False, compare=False)

    @property
    def src(self) -> str:
        return self.header[SRC]

    @property
    def dst(self) -> List[str]:
        return self.header[DST]

    @property
    def msg_type(self) -> MsgType:
        return MsgType(self.header[TYPE])

    @property
    def seq(self) -> int:
        return self.header[SEQ]

    @property
    def object_id(self) -> Optional[str]:
        return self.header.get(OBJECT_ID)

    @property
    def created_at(self) -> float:
        return self.header[CREATED_AT]

    @property
    def body_size(self) -> int:
        return self.header.get(BODY_SIZE, 0)

    def age(self, now: Optional[float] = None) -> float:
        """Seconds since the message was created.

        Pass ``now`` (a ``time.monotonic()`` reading) to age a whole drained
        batch off one clock read instead of one syscall per message.
        """
        if now is None:
            now = time.monotonic()
        return now - self.created_at

    def with_header(self, **updates: Any) -> "Message":
        """Return a copy of this message with header fields replaced."""
        new_header = dict(self.header)
        new_header.update(updates)
        return Message(new_header, self.body)


def make_message(
    src: str,
    dst: Iterable[str],
    msg_type: MsgType,
    body: Any,
    *,
    body_size: int = 0,
    extra: Optional[Dict[str, Any]] = None,
) -> Message:
    """Convenience constructor pairing :func:`make_header` with a body."""
    return Message(make_header(src, dst, msg_type, body_size=body_size, extra=extra), body)


def pack_batch(messages: Sequence[Message]) -> Message:
    """Coalesce several same-destination messages into one BATCH envelope.

    The envelope's body is the list of ``(header, body)`` pairs; one object
    store insert (and one header-queue put, one routing decision) then
    carries the whole run.  All messages must share the same destination
    list — the caller groups by destination before packing.
    """
    if not messages:
        raise ValueError("cannot pack an empty batch")
    first = messages[0]
    bodies = [(message.header, message.body) for message in messages]
    header = make_header(
        first.src,
        first.dst,
        MsgType.BATCH,
        body_size=sum(message.body_size for message in messages),
        extra={
            BATCH_COUNT: len(messages),
            BATCH_SEQS: [
                (message.seq, message.header.get(TRACE))
                for message in messages
            ],
        },
    )
    return Message(header, bodies)


def unpack_batch(message: Message) -> List[Message]:
    """Inverse of :func:`pack_batch`: the original messages, in send order.

    Sub-headers are copied and scrubbed of transport fields (no object ID —
    the envelope owned the store entry; the receiver already released it).
    """
    restored: List[Message] = []
    for sub_header, sub_body in message.body:
        sub_header = dict(sub_header)
        sub_header[OBJECT_ID] = None
        sub_header[COMPRESSED] = False
        restored.append(Message(sub_header, sub_body))
    return restored


@dataclass
class Command:
    """A control command dispatched by controllers (§3.2.2)."""

    name: str
    payload: Dict[str, Any] = field(default_factory=dict)


# Well-known command names used by the controller fabric.
CMD_START = "start"
CMD_STOP = "stop"
CMD_SHUTDOWN = "shutdown"
CMD_REPORT_STATS = "report_stats"
CMD_KILL_POPULATION = "kill_population"
CMD_START_POPULATION = "start_population"
