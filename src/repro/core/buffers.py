"""Send and receive buffers for intra-process staging.

Each explorer/learner process maintains a send buffer and a receive buffer
(§3.2.1).  Message headers go into the buffer's header queue; message bodies
into the data list.  The workhorse threads only ever touch these local
buffers — the sender/receiver threads move data between the buffers and the
broker's communicator.

The header queue is ``queue.Queue``-based so monitoring threads can block on
``get`` and wake event-driven the moment a new header arrives (§4.1).
"""

from __future__ import annotations

import queue
import threading
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .concurrency import make_lock
from .message import Message


class _Closed:
    """Sentinel placed on the header queue to unblock waiters at shutdown."""


_CLOSED = _Closed()


class MessageBuffer:
    """A header queue plus a body table keyed by sequence number.

    ``put`` stages a whole message; ``get`` blocks until a message is
    available (or the buffer is closed) and hands back header and body
    together.  FIFO per producer is guaranteed by the underlying queue.
    """

    def __init__(self, name: str = "", maxsize: int = 0):
        self.name = name
        self._headers: "queue.Queue[object]" = queue.Queue(maxsize=maxsize)
        #: seq -> (body, cached frame): both survive the queue crossing so
        #: the sender thread can reuse the workhorse's serialization work.
        self._bodies: Dict[int, Tuple[object, object]] = {}
        self._lock = make_lock(f"buffer.{name}" if name else "buffer")
        self._closed = threading.Event()
        self.total_put = 0
        self.total_got = 0

    def put(self, message: Message, timeout: Optional[float] = None) -> None:
        if self._closed.is_set():
            raise RuntimeError(f"buffer {self.name!r} is closed")
        with self._lock:
            self._bodies[message.seq] = (message.body, message.frame)
            self.total_put += 1
        try:
            self._headers.put(message.header, timeout=timeout)
        except queue.Full:
            with self._lock:
                self._bodies.pop(message.seq, None)
                self.total_put -= 1
            raise

    def put_many(self, messages: Sequence[Message]) -> None:
        """Stage several messages with one body-table lock acquisition.

        Only for unbounded buffers (the framework default) — bounded ones
        need the per-message blocking of :meth:`put`.
        """
        if self._headers.maxsize > 0:
            for message in messages:
                self.put(message)
            return
        if self._closed.is_set():
            raise RuntimeError(f"buffer {self.name!r} is closed")
        with self._lock:
            for message in messages:
                self._bodies[message.seq] = (message.body, message.frame)
            self.total_put += len(messages)
        headers = self._headers
        with headers.mutex:
            headers.queue.extend(message.header for message in messages)
            headers.unfinished_tasks += len(messages)
            headers.not_empty.notify(len(messages))

    def get(self, timeout: Optional[float] = None) -> Optional[Message]:
        """Blocking fetch; returns ``None`` once the buffer is closed and
        drained, mirroring a ``Queue.get`` that was woken by shutdown."""
        try:
            header = self._headers.get(timeout=timeout)
        except queue.Empty:
            return None
        if header is _CLOSED:
            # Re-insert so every waiter wakes up.
            self._headers.put(_CLOSED)
            return None
        with self._lock:
            body, frame = self._bodies.pop(header["seq"], (None, None))
            self.total_got += 1
        return Message(header, body, frame)

    def get_many(
        self, max_items: int, timeout: Optional[float] = None
    ) -> List[Message]:
        """One blocking :meth:`get` plus a non-blocking drain up to
        ``max_items`` — the sender thread's per-wakeup batch."""
        first = self.get(timeout=timeout)
        if first is None:
            return []
        messages = [first]
        while len(messages) < max_items:
            extra = self.get(timeout=0.0)
            if extra is None:
                break
            messages.append(extra)
        return messages

    def get_nowait(self) -> Optional[Message]:
        return self.get(timeout=0.0) if not self.empty() else None

    def drain(self) -> Iterator[Message]:
        """Yield currently-queued messages without blocking."""
        while True:
            message = self.get(timeout=0.0)
            if message is None:
                return
            yield message

    def empty(self) -> bool:
        return self._headers.empty()

    def qsize(self) -> int:
        return self._headers.qsize()

    def close(self) -> None:
        """Wake all blocked getters; subsequent ``get`` returns ``None`` once
        the queue is drained of real messages."""
        if not self._closed.is_set():
            self._closed.set()
            self._headers.put(_CLOSED)

    @property
    def closed(self) -> bool:
        return self._closed.is_set()


class SendBuffer(MessageBuffer):
    """Staging area for messages a workhorse thread has produced."""


class ReceiveBuffer(MessageBuffer):
    """Staging area for messages delivered to a process, awaiting use."""
