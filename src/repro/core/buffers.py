"""Send and receive buffers for intra-process staging.

Each explorer/learner process maintains a send buffer and a receive buffer
(§3.2.1).  Message headers go into the buffer's header queue; message bodies
into the data list.  The workhorse threads only ever touch these local
buffers — the sender/receiver threads move data between the buffers and the
broker's communicator.

The header queue is ``queue.Queue``-based so monitoring threads can block on
``get`` and wake event-driven the moment a new header arrives (§4.1).
"""

from __future__ import annotations

import queue
import threading
from typing import Dict, Iterator, Optional

from .concurrency import make_lock
from .message import Message


class _Closed:
    """Sentinel placed on the header queue to unblock waiters at shutdown."""


_CLOSED = _Closed()


class MessageBuffer:
    """A header queue plus a body table keyed by sequence number.

    ``put`` stages a whole message; ``get`` blocks until a message is
    available (or the buffer is closed) and hands back header and body
    together.  FIFO per producer is guaranteed by the underlying queue.
    """

    def __init__(self, name: str = "", maxsize: int = 0):
        self.name = name
        self._headers: "queue.Queue[object]" = queue.Queue(maxsize=maxsize)
        self._bodies: Dict[int, object] = {}
        self._lock = make_lock(f"buffer.{name}" if name else "buffer")
        self._closed = threading.Event()
        self.total_put = 0
        self.total_got = 0

    def put(self, message: Message, timeout: Optional[float] = None) -> None:
        if self._closed.is_set():
            raise RuntimeError(f"buffer {self.name!r} is closed")
        with self._lock:
            self._bodies[message.seq] = message.body
            self.total_put += 1
        try:
            self._headers.put(message.header, timeout=timeout)
        except queue.Full:
            with self._lock:
                self._bodies.pop(message.seq, None)
                self.total_put -= 1
            raise

    def get(self, timeout: Optional[float] = None) -> Optional[Message]:
        """Blocking fetch; returns ``None`` once the buffer is closed and
        drained, mirroring a ``Queue.get`` that was woken by shutdown."""
        try:
            header = self._headers.get(timeout=timeout)
        except queue.Empty:
            return None
        if header is _CLOSED:
            # Re-insert so every waiter wakes up.
            self._headers.put(_CLOSED)
            return None
        with self._lock:
            body = self._bodies.pop(header["seq"], None)
            self.total_got += 1
        return Message(header, body)

    def get_nowait(self) -> Optional[Message]:
        return self.get(timeout=0.0) if not self.empty() else None

    def drain(self) -> Iterator[Message]:
        """Yield currently-queued messages without blocking."""
        while True:
            message = self.get(timeout=0.0)
            if message is None:
                return
            yield message

    def empty(self) -> bool:
        return self._headers.empty()

    def qsize(self) -> int:
        return self._headers.qsize()

    def close(self) -> None:
        """Wake all blocked getters; subsequent ``get`` returns ``None`` once
        the queue is drained of real messages."""
        if not self._closed.is_set():
            self._closed.set()
            self._headers.put(_CLOSED)

    @property
    def closed(self) -> bool:
        return self._closed.is_set()


class SendBuffer(MessageBuffer):
    """Staging area for messages a workhorse thread has produced."""


class ReceiveBuffer(MessageBuffer):
    """Staging area for messages delivered to a process, awaiting use."""
