"""Ownership-transfer annotations for object-store handles.

The sender-initiated push protocol (§3.2.1) moves *ownership* of object-store
refcounts between components: the endpoint sender thread inserts a body with
``refcount == fan-out`` and hands every share to downstream consumers by
attaching the object ID to the header; the router and receiver threads
release shares they never acquired.  That is correct — but it is exactly the
shape the static ownership pass (:mod:`repro.analysis.ownership`) would
otherwise flag as a handle escaping its acquiring function.

These decorators make the transfer explicit and machine-checkable:

* :func:`transfers_ownership` — a handle acquired in this function (via
  ``ObjectStore.put``) legitimately escapes: it is attached to a header,
  returned, or passed on, and the *receiver* becomes responsible for the
  release.  The analyzer suppresses ``unannotated-handle-escape`` inside
  annotated functions (leaks and double releases are still reported).
* :func:`receives_ownership` — this function releases handle shares it did
  not acquire (they arrive via drained headers or arguments).  Documentary
  for readers and tooling; the analyzer never charges foreign releases.

The zero-copy lifetime pass (:mod:`repro.analysis.lifetime`) adds the same
intent vocabulary for *views* — memory borrowed from an arena block or a
``deserialize(copy=False)`` buffer rather than refcount shares:

* :func:`borrows_view` — this function accepts a view argument and finishes
  with it before returning (it parses, copies, or measures — it never
  stores the view).  Passing a view into an annotated function is not a
  ``view-escape``.
* :func:`detaches_view` — views created in this function legitimately
  outlive it: the function copies them first, or hands them off together
  with ownership of the backing block.  Suppresses ``view-escape`` inside
  the annotated function.

All four are runtime no-ops: they neither wrap nor inspect the function.
"""

from __future__ import annotations

from typing import Any, Callable, TypeVar, Union, overload

F = TypeVar("F", bound=Callable[..., Any])


@overload
def transfers_ownership(func: F) -> F: ...


@overload
def transfers_ownership(func: str) -> Callable[[F], F]: ...


def transfers_ownership(func: Union[F, str]) -> Union[F, Callable[[F], F]]:
    """Mark a function whose acquired store handles escape on purpose.

    Usable bare (``@transfers_ownership``) or with a reason string
    (``@transfers_ownership("header carries the ID across the queue")``).
    """
    if isinstance(func, str):

        def decorator(inner: F) -> F:
            return inner

        return decorator
    return func


@overload
def receives_ownership(func: F) -> F: ...


@overload
def receives_ownership(func: str) -> Callable[[F], F]: ...


def receives_ownership(func: Union[F, str]) -> Union[F, Callable[[F], F]]:
    """Mark a function that releases handle shares acquired elsewhere."""
    if isinstance(func, str):

        def decorator(inner: F) -> F:
            return inner

        return decorator
    return func


@overload
def borrows_view(func: F) -> F: ...


@overload
def borrows_view(func: str) -> Callable[[F], F]: ...


def borrows_view(func: Union[F, str]) -> Union[F, Callable[[F], F]]:
    """Mark a function that borrows view arguments without keeping them.

    An annotated function promises its view parameters do not survive the
    call: it decodes, copies, or inspects them and returns.  The lifetime
    pass then treats passing a zero-copy view into it as a borrow, not a
    ``view-escape``.
    """
    if isinstance(func, str):

        def decorator(inner: F) -> F:
            return inner

        return decorator
    return func


@overload
def detaches_view(func: F) -> F: ...


@overload
def detaches_view(func: str) -> Callable[[F], F]: ...


def detaches_view(func: Union[F, str]) -> Union[F, Callable[[F], F]]:
    """Mark a function whose views intentionally outlive it.

    Use when a view escapes *with* its backing storage (a ``Block`` handed
    to the caller) or after being detached from reusable memory (copied).
    Suppresses ``view-escape`` inside the annotated function; stale-use and
    readonly-write findings still apply.
    """
    if isinstance(func, str):

        def decorator(inner: F) -> F:
            return inner

        return decorator
    return func
