"""Serialization of message bodies.

Bodies must be serialized before insertion into the object store and
deserialized when fetched into a receive buffer (§4.1).  The paper uses the
Arrow/Plasma store; we use pickle with an out-of-band fast path for NumPy
arrays so large tensors are serialized with a cheap header + raw buffer
instead of being pickled element-wise.

The hot path is scatter-gather: :func:`make_frame` produces a
:class:`Frame` — a list of buffer views plus a precomputed byte count —
without concatenating anything.  Stores and channels then call
:meth:`Frame.serialize_into` to write the payload directly into its final
destination (a shared-memory slab, a preallocated segment) with zero
intermediate ``bytes`` objects.  :func:`serialize` remains as the
contiguous-bytes convenience built on the same frame.
"""

from __future__ import annotations

import itertools
import pickle
from typing import Any, List, Optional, Tuple, Union

import numpy as np

_MAGIC = b"XTSER1"
_LEN_MAGIC = len(_MAGIC)

Segment = Union[bytes, memoryview]

# -- copy accounting --------------------------------------------------------
# Every contiguous-bytes materialization of a frame (``Frame.to_bytes`` and
# therefore ``serialize``) bumps this counter.  The scatter-gather wire path
# (``serialize_into`` targets, ``socket.sendmsg`` from frame segments) never
# materializes, so "zero-copy" is an asserted invariant: take a snapshot,
# drive the path, assert the delta is 0.  Exported by the telemetry sampler
# as ``serialization_copies_total``.  ``itertools.count`` keeps the bump
# atomic under the GIL without a lock on the hot fallback path.
_COPIES = itertools.count()


def _count_copy() -> None:
    next(_COPIES)


def serialization_copies_total() -> int:
    """Total contiguous-bytes frame materializations in this process."""
    # Peek the counter without consuming a tick: clone via __reduce__.
    return _COPIES.__reduce__()[1][0]


def _segment_nbytes(segment: Segment) -> int:
    if isinstance(segment, memoryview):
        return segment.nbytes
    return len(segment)


class Frame:
    """A scatter-gather descriptor of one serialized object.

    ``segments`` is the ordered list of byte chunks that, concatenated, form
    the wire representation; out-of-band pickle buffers appear as raw
    *views* into the original arrays, so building a frame copies nothing but
    the (small) pickle payload.  ``nbytes`` is precomputed so senders can
    size headers and destination buffers without serializing twice.
    """

    __slots__ = ("segments", "nbytes")

    def __init__(self, segments: List[Segment]):
        self.segments = segments
        self.nbytes = sum(_segment_nbytes(segment) for segment in segments)

    def serialize_into(self, dest: Any) -> int:
        """Write the frame into ``dest`` (any writable buffer); returns the
        number of bytes written.  ``dest`` must hold at least ``nbytes``."""
        view = memoryview(dest)
        if view.format != "B" or view.ndim != 1:
            view = view.cast("B")
        offset = 0
        for segment in self.segments:
            length = _segment_nbytes(segment)
            view[offset : offset + length] = segment
            offset += length
        return offset

    def to_bytes(self) -> bytes:
        """Contiguous wire bytes (one copy; prefer :meth:`serialize_into`).

        Counted in :func:`serialization_copies_total` — the wire transport
        asserts this fallback never fires on its send path.
        """
        _count_copy()
        return b"".join(self.segments)


def make_frame(obj: Any) -> Frame:
    """Build the scatter-gather :class:`Frame` for ``obj``.

    NumPy arrays inside the object graph are extracted out-of-band via
    pickle-5 buffer callbacks; their raw memory enters the frame as views,
    not copies.  The result is self-describing; feed the written bytes to
    :func:`deserialize`.
    """
    buffers: List[pickle.PickleBuffer] = []
    payload = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    segments: List[Segment] = [
        _MAGIC
        + len(buffers).to_bytes(4, "little")
        + len(payload).to_bytes(8, "little"),
        payload,
    ]
    for buf in buffers:
        raw = buf.raw()
        segments.append(raw.nbytes.to_bytes(8, "little"))
        segments.append(raw)
    return Frame(segments)


def serialize(obj: Any) -> bytes:
    """Serialize ``obj`` to contiguous bytes (via :func:`make_frame`)."""
    return make_frame(obj).to_bytes()


def deserialize(data: Any, *, copy: bool = True, view_registry: Any = None) -> Any:
    """Inverse of :func:`serialize` / :func:`make_frame`.

    With ``copy=True`` (the default) every out-of-band buffer is copied
    into a fresh writable ``bytearray``, so the result is independent of
    ``data`` — required whenever ``data`` aliases reusable memory (an arena
    block, an unlinked segment) or when consumers mutate arrays in place
    (optimizers, in-place replay updates).

    With ``copy=False`` buffers are *read-only views* into ``data``: arrays
    come back with ``writeable=False`` and zero copies.  Callers own two
    obligations: keep ``data`` alive for the life of the result, and never
    hand the result to an in-place mutator.  Consumers that repack anyway
    (trainer batch assembly concatenates fragments into new arrays) take
    this mode for free.

    ``view_registry`` (zero-copy mode only) receives one ``register(view)``
    call per exported read-only buffer.  When ``data`` is an arena block,
    pass :meth:`SlabArena.export_registry(handle)
    <repro.core.arena.SlabArena.export_registry>` — the arena then refuses
    to recycle the block while any of the exported views is still alive,
    turning a silent use-after-free into an immediate
    :class:`~repro.core.arena.ArenaError`.
    """
    view = memoryview(data)
    if view.format != "B" or view.ndim != 1:
        view = view.cast("B")
    if bytes(view[:_LEN_MAGIC]) != _MAGIC:
        raise ValueError("not a XingTian-serialized payload")
    offset = _LEN_MAGIC
    n_buffers = int.from_bytes(view[offset : offset + 4], "little")
    offset += 4
    payload_len = int.from_bytes(view[offset : offset + 8], "little")
    offset += 8
    payload = view[offset : offset + payload_len]
    offset += payload_len
    buffers: List[Any] = []
    for _ in range(n_buffers):
        buf_len = int.from_bytes(view[offset : offset + 8], "little")
        offset += 8
        chunk = view[offset : offset + buf_len]
        if copy:
            buffers.append(bytearray(chunk))
        else:
            exported = chunk.toreadonly()
            if view_registry is not None:
                view_registry.register(exported)
            buffers.append(exported)
        offset += buf_len
    return pickle.loads(payload, buffers=buffers)


def measure(obj: Any) -> Tuple[int, Optional[Frame]]:
    """Wire size of ``obj``, plus the :class:`Frame` when one was built.

    Array-shaped objects are sized from their buffers without pickling —
    the frame slot is ``None`` and the (cheap) serialization happens later
    at the store boundary.  Everything else is framed exactly once; callers
    cache the returned frame (``Message.frame``) so the store can reuse it
    instead of pickling the same object a second time.
    """
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj), None
    if isinstance(obj, np.ndarray):
        return obj.nbytes, None
    if isinstance(obj, (list, tuple)) and obj and all(
        isinstance(item, np.ndarray) for item in obj
    ):
        return sum(item.nbytes for item in obj), None
    if isinstance(obj, dict) and obj and all(
        isinstance(value, np.ndarray) for value in obj.values()
    ):
        return sum(value.nbytes for value in obj.values()), None
    try:
        frame = make_frame(obj)
    except Exception:
        return 0, None
    return frame.nbytes, frame


def payload_nbytes(obj: Any) -> int:
    """Estimate the wire size of ``obj`` in bytes without serializing twice.

    Used by senders to fill the ``body_size`` header field and by throttled
    links to charge bandwidth.  Arrays are charged their buffer size; other
    objects are charged their frame size (see :func:`measure`, which also
    hands back the frame so the pickle work is not repeated at the store).
    """
    nbytes, _ = measure(obj)
    return nbytes


def roundtrip(obj: Any) -> Tuple[Any, int]:
    """Serialize then deserialize ``obj``; returns (copy, wire_size).

    Handy for tests and for transports that want a true copy boundary.
    """
    blob = serialize(obj)
    return deserialize(blob), len(blob)
