"""Serialization of message bodies.

Bodies must be serialized before insertion into the object store and
deserialized when fetched into a receive buffer (§4.1).  The paper uses the
Arrow/Plasma store; we use pickle with an out-of-band fast path for NumPy
arrays so large tensors are serialized with a cheap header + raw buffer
instead of being pickled element-wise.
"""

from __future__ import annotations

import io
import pickle
from typing import Any, List, Tuple

import numpy as np

_MAGIC = b"XTSER1"


def serialize(obj: Any) -> bytes:
    """Serialize ``obj`` to bytes.

    NumPy arrays inside the object graph are extracted out-of-band via
    pickle 5 buffer callbacks when available, falling back to plain pickle.
    The result is self-describing; feed it to :func:`deserialize`.
    """
    buffers: List[pickle.PickleBuffer] = []
    payload = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    out = io.BytesIO()
    out.write(_MAGIC)
    out.write(len(buffers).to_bytes(4, "little"))
    out.write(len(payload).to_bytes(8, "little"))
    out.write(payload)
    for buf in buffers:
        raw = buf.raw()
        out.write(len(raw).to_bytes(8, "little"))
        out.write(raw)
    return out.getvalue()


def deserialize(data: bytes) -> Any:
    """Inverse of :func:`serialize`."""
    view = memoryview(data)
    if bytes(view[: len(_MAGIC)]) != _MAGIC:
        raise ValueError("not a XingTian-serialized payload")
    offset = len(_MAGIC)
    n_buffers = int.from_bytes(view[offset : offset + 4], "little")
    offset += 4
    payload_len = int.from_bytes(view[offset : offset + 8], "little")
    offset += 8
    payload = view[offset : offset + payload_len]
    offset += payload_len
    buffers = []
    for _ in range(n_buffers):
        buf_len = int.from_bytes(view[offset : offset + 8], "little")
        offset += 8
        # Copy into a writable buffer: consumers (optimizers, replay) may
        # mutate arrays in place, and a view into the wire bytes is read-only.
        buffers.append(bytearray(view[offset : offset + buf_len]))
        offset += buf_len
    return pickle.loads(payload, buffers=buffers)


def payload_nbytes(obj: Any) -> int:
    """Estimate the wire size of ``obj`` in bytes without serializing twice.

    Used by senders to fill the ``body_size`` header field and by throttled
    links to charge bandwidth.  Arrays are charged their buffer size; other
    objects fall back to a pickled length.
    """
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (list, tuple)) and obj and all(
        isinstance(item, np.ndarray) for item in obj
    ):
        return sum(item.nbytes for item in obj)
    if isinstance(obj, dict) and obj and all(
        isinstance(value, np.ndarray) for value in obj.values()
    ):
        return sum(value.nbytes for value in obj.values())
    try:
        return len(pickle.dumps(obj, protocol=5))
    except Exception:
        return 0


def roundtrip(obj: Any) -> Tuple[Any, int]:
    """Serialize then deserialize ``obj``; returns (copy, wire_size).

    Handy for tests and for transports that want a true copy boundary.
    """
    blob = serialize(obj)
    return deserialize(blob), len(blob)
