"""Process endpoints: send/receive buffers plus sender & receiver threads.

An explorer or learner process holds a send buffer, a receive buffer, a
sender thread and a receiver thread (§3.2.1).  The workhorse thread (rollout
worker or trainer) deals only with local buffer reads and writes; the
sender/receiver threads move data between the local buffers and the broker's
communicator, event-driven off blocking queue gets.

The endpoint is thread-backed: the paper runs these as OS processes, but the
push-vs-pull ordering and the communication-computation overlap — the
properties under study — are identical (see DESIGN.md §2).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional

from .broker import Broker
from .buffers import ReceiveBuffer, SendBuffer
from .concurrency import spawn_thread
from .errors import LifecycleError
from .message import COMPRESSED, OBJECT_ID, Message
from .ownership import receives_ownership, transfers_ownership
from .serialization import payload_nbytes
from .stats import LatencyRecorder, ThroughputMeter
from .tracing import Tracer


class ProcessEndpoint:
    """One logical XingTian process attached to a broker."""

    def __init__(self, name: str, broker: Broker):
        self.name = name
        self.broker = broker
        self.send_buffer = SendBuffer(f"{name}.send")
        self.receive_buffer = ReceiveBuffer(f"{name}.recv")
        self._id_queue = broker.register_process(name)
        self._sender: Optional[threading.Thread] = None
        self._receiver: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._started = False
        # Instrumentation.
        self.sent_meter = ThroughputMeter()
        self.received_meter = ThroughputMeter()
        self.delivery_latency = LatencyRecorder(f"{name}.delivery")
        #: optional :class:`Tracer` — records sent/delivered/consumed events
        self.tracer: Optional[Tracer] = None
        # Telemetry instruments (None until attach_metrics; hot paths only
        # pay a None check while telemetry is off).
        self._messages_sent: Optional[Any] = None
        self._bytes_sent: Optional[Any] = None
        self._messages_received: Optional[Any] = None
        self._bytes_received: Optional[Any] = None
        self._delivery_histogram: Optional[Any] = None

    def attach_metrics(self, registry: Any) -> None:
        """Register this endpoint's counters/histograms on ``registry``."""
        labels = {"process": self.name}
        self._messages_sent = registry.counter(
            "endpoint_messages_sent_total", labels,
            help="messages staged for transmission by the workhorse",
        )
        self._bytes_sent = registry.counter(
            "endpoint_bytes_sent_total", labels,
            help="payload bytes staged for transmission",
        )
        self._messages_received = registry.counter(
            "endpoint_messages_received_total", labels,
            help="messages landed in the local receive buffer",
        )
        self._bytes_received = registry.counter(
            "endpoint_bytes_received_total", labels,
            help="payload bytes landed in the local receive buffer",
        )
        self._delivery_histogram = registry.histogram(
            "endpoint_delivery_latency_seconds", labels,
            help="message age when the receiver thread lands it",
        )

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        if self._started:
            raise LifecycleError(f"endpoint {self.name!r} already started")
        self._started = True
        self._sender = spawn_thread(f"{self.name}-sender", self._sender_loop)
        self._receiver = spawn_thread(f"{self.name}-receiver", self._receiver_loop)

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        self.send_buffer.close()
        self.receive_buffer.close()
        self._id_queue.close()
        for thread in (self._sender, self._receiver):
            if thread is not None:
                thread.join(timeout=timeout)
        self._sender = None
        self._receiver = None
        self._release_unconsumed()

    @receives_ownership("drained headers carry shares acquired by senders")
    def _release_unconsumed(self) -> None:
        """Release refcounts of bodies still parked in the ID queue.

        A process that stops (or dies) before draining its ID queue would
        otherwise strand each undelivered body in the object store with a
        positive refcount — a leak per missed message.
        """
        store = self.broker.communicator.object_store
        for header in self._id_queue.drain():
            object_id = header.get(OBJECT_ID)
            if object_id is not None:
                try:
                    store.release(object_id)
                except Exception:  # noqa: BLE001 - already released elsewhere
                    pass

    # -- workhorse-facing API ------------------------------------------------
    def send(self, message: Message) -> None:
        """Stage a message for transmission — returns immediately.

        This is the only "send" a workhorse thread performs: a local buffer
        write.  The sender thread pushes it onward asynchronously, which is
        what lets communication overlap with the computation that follows.
        """
        if message.body_size == 0 and message.body is not None:
            message.header["body_size"] = payload_nbytes(message.body)
        if self.tracer is not None:
            self.tracer.record(
                "sent", self.name, seq=message.seq,
                dst=",".join(message.dst), nbytes=message.body_size,
                type=str(message.msg_type),
            )
        if self._messages_sent is not None:
            self._messages_sent.inc()
            self._bytes_sent.inc(message.body_size)
        try:
            self.send_buffer.put(message)
        except RuntimeError:
            if not self._stop.is_set() and not self.send_buffer.closed:
                raise
            # Shutdown is in progress; a workhorse mid-step may still try to
            # send.  Dropping the message mirrors a process being killed.

    def receive(self, timeout: Optional[float] = None) -> Optional[Message]:
        """Blocking read from the local receive buffer."""
        message = self.receive_buffer.get(timeout=timeout)
        if message is not None and self.tracer is not None:
            self.tracer.record(
                "consumed", self.name, seq=message.seq, src=message.src,
                type=str(message.msg_type),
            )
        return message

    # -- internal threads -----------------------------------------------------
    @transfers_ownership("header carries the object ID across the queue")
    def _sender_loop(self) -> None:
        """Monitor the send buffer; push each message into the communicator.

        Inserts the body into the object store with a refcount equal to the
        destination fan-out, attaches the object ID to the header, and puts
        the header on the communicator's header queue (§3.2.1).
        """
        communicator = self.broker.communicator
        while not self._stop.is_set():
            message = self.send_buffer.get(timeout=0.25)
            if message is None:
                if self.send_buffer.closed:
                    return
                continue
            refcount = max(1, len(message.dst))
            if message.body is not None:
                object_id = communicator.object_store.put(
                    message.body, refcount=refcount, nbytes=message.body_size
                )
            else:
                object_id = None
            header = dict(message.header)
            header[OBJECT_ID] = object_id
            if not communicator.header_queue.put(header):
                # Header dropped (communicator closing): undo the store
                # insert or the body leaks with its full fan-out refcount.
                if object_id is not None:
                    for _ in range(refcount):
                        communicator.object_store.release(object_id)
                continue
            self.sent_meter.record(max(message.body_size, 1))

    @receives_ownership("releases the share the sender acquired for us")
    def _receiver_loop(self) -> None:
        """Monitor the ID queue; copy bodies into the local receive buffer."""
        communicator = self.broker.communicator
        while not self._stop.is_set():
            header = self._id_queue.get(timeout=0.25)
            if header is None:
                if self._id_queue.closed:
                    return
                continue
            object_id = header.get(OBJECT_ID)
            if object_id is not None:
                body = communicator.object_store.get(object_id)
                communicator.object_store.release(object_id)
            else:
                body = None
            header = dict(header)
            header[OBJECT_ID] = None
            header[COMPRESSED] = False
            message = Message(header, body)
            age = message.age()
            self.delivery_latency.record(age)
            self.received_meter.record(max(message.body_size, 1))
            if self._messages_received is not None:
                self._messages_received.inc()
                self._bytes_received.inc(message.body_size)
                self._delivery_histogram.observe(max(age, 0.0))
            if self.tracer is not None:
                self.tracer.record(
                    "delivered", self.name, seq=message.seq, src=message.src,
                    type=str(message.msg_type),
                )
            try:
                self.receive_buffer.put(message)
            except RuntimeError:
                return  # receive buffer closed during shutdown


class WorkhorseThread:
    """A workhorse (rollout worker or trainer) running a step function.

    ``step_fn`` is called repeatedly until it returns ``False`` or the
    workhorse is stopped.  Exceptions are captured so a crashing workhorse
    surfaces at ``join`` instead of dying silently.
    """

    def __init__(self, name: str, step_fn: Callable[[], bool]):
        self.name = name
        self._step_fn = step_fn
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.error: Optional[BaseException] = None

    def start(self) -> None:
        if self._thread is not None:
            raise LifecycleError(f"workhorse {self.name!r} already started")
        self._thread = spawn_thread(self.name, self._run)

    def _run(self) -> None:
        try:
            while not self._stop.is_set():
                if not self._step_fn():
                    return
        except BaseException as exc:  # noqa: BLE001 - surfaced via .error
            self.error = exc

    def stop(self) -> None:
        self._stop.set()

    def join(self, timeout: Optional[float] = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()
