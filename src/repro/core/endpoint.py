"""Process endpoints: send/receive buffers plus sender & receiver threads.

An explorer or learner process holds a send buffer, a receive buffer, a
sender thread and a receiver thread (§3.2.1).  The workhorse thread (rollout
worker or trainer) deals only with local buffer reads and writes; the
sender/receiver threads move data between the local buffers and the broker's
communicator, event-driven off blocking queue gets.

The endpoint is thread-backed: the paper runs these as OS processes, but the
push-vs-pull ordering and the communication-computation overlap — the
properties under study — are identical (see DESIGN.md §2).
"""

from __future__ import annotations

import logging
import threading
import time
from typing import Any, Callable, List, Optional, Sequence, Tuple

from .broker import Broker
from .buffers import ReceiveBuffer, SendBuffer
from .concurrency import make_lock, spawn_thread
from .config import CoalescingSpec
from .errors import BackpressureError, LifecycleError
from .flowcontrol import Lane, FlowReceiveBuffer, FlowSendBuffer, lane_of
from .message import (
    BODY_SIZE,
    COMPRESSED,
    DST,
    LANE,
    OBJECT_ID,
    SEQ,
    SPAN,
    TRACE,
    TYPE,
    Message,
    MsgType,
    ensure_trace,
    pack_batch,
    unpack_batch,
)
from .ownership import receives_ownership, transfers_ownership
from .serialization import measure
from .stats import LatencyRecorder, ThroughputMeter
from .tracing import Tracer, flight_dump, flight_recorder

#: One staged header: (header, object_id, refcount, originals) — ``originals``
#: are the workhorse-visible messages the header carries (one, or a batch).
_Staged = Tuple[dict, Optional[str], int, List[Message]]

#: Per-wakeup drain bound when coalescing is off (amortizes queue locks
#: without changing what crosses the wire).
_DRAIN_LIMIT = 64

_LOG = logging.getLogger(__name__)


class ProcessEndpoint:
    """One logical XingTian process attached to a broker."""

    def __init__(
        self,
        name: str,
        broker: Broker,
        *,
        coalescing: Optional[CoalescingSpec] = None,
    ):
        self.name = name
        self.broker = broker
        #: small-message coalescing policy; inherited from the broker's
        #: deployment config unless overridden per endpoint
        self.coalescing = (
            coalescing if coalescing is not None
            else getattr(broker, "coalescing", None)
        )
        #: :class:`~repro.core.config.FlowControlSpec` inherited from the
        #: broker; when set, the local buffers grow priority lanes and the
        #: workhorse feels backpressure at :meth:`send`
        self.flow = getattr(broker, "flow", None)
        #: per-process flight recorder (None when disabled via env)
        self._flightrec = flight_recorder()
        if self.flow is not None:
            self.send_buffer: Any = FlowSendBuffer(
                f"{name}.send", self.flow,
                on_shed=lambda lost: self._record_shed(lost, f"{name}.send"),
            )
            self.receive_buffer: Any = FlowReceiveBuffer(
                f"{name}.recv", self.flow,
                on_shed=lambda lost: self._record_shed(lost, f"{name}.recv"),
            )
        else:
            self.send_buffer = SendBuffer(f"{name}.send")
            self.receive_buffer = ReceiveBuffer(f"{name}.recv")
        #: control-lane sends abandoned because their backpressure deadline
        #: expired (written by the sender thread, read by telemetry)
        self.backpressure_expired = 0
        self._backpressure_warned = False
        self._backpressure_lock = make_lock(f"{name}.backpressure")
        self._id_queue = broker.register_process(name)
        self._sender: Optional[threading.Thread] = None
        self._receiver: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._started = False
        # Instrumentation.
        self.sent_meter = ThroughputMeter()
        self.received_meter = ThroughputMeter()
        self.delivery_latency = LatencyRecorder(f"{name}.delivery")
        #: optional :class:`Tracer` — records sent/delivered/consumed events
        self.tracer: Optional[Tracer] = None
        # Telemetry instruments (None until attach_metrics; hot paths only
        # pay a None check while telemetry is off).
        self._messages_sent: Optional[Any] = None
        self._bytes_sent: Optional[Any] = None
        self._messages_received: Optional[Any] = None
        self._bytes_received: Optional[Any] = None
        self._delivery_histogram: Optional[Any] = None
        self._coalesce_histogram: Optional[Any] = None

    def _record_shed(self, message: Message, source: str) -> None:
        """Terminal "shed" event for a message lost in a local flow buffer."""
        header = message.header
        if self.tracer is not None:
            self.tracer.record(
                "shed", source, seq=header.get(SEQ),
                trace=header.get(TRACE), dst=",".join(header.get(DST) or ()),
                type=str(header.get(TYPE)), lane=header.get(LANE),
            )
        if self._flightrec is not None:
            self._flightrec.record(
                "shed", source, header.get(SEQ, -1), header.get(TRACE) or 0,
            )

    def attach_metrics(self, registry: Any) -> None:
        """Register this endpoint's counters/histograms on ``registry``."""
        labels = {"process": self.name}
        self._messages_sent = registry.counter(
            "endpoint_messages_sent_total", labels,
            help="messages staged for transmission by the workhorse",
        )
        self._bytes_sent = registry.counter(
            "endpoint_bytes_sent_total", labels,
            help="payload bytes staged for transmission",
        )
        self._messages_received = registry.counter(
            "endpoint_messages_received_total", labels,
            help="messages landed in the local receive buffer",
        )
        self._bytes_received = registry.counter(
            "endpoint_bytes_received_total", labels,
            help="payload bytes landed in the local receive buffer",
        )
        self._delivery_histogram = registry.histogram(
            "endpoint_delivery_latency_seconds", labels,
            help="message age when the receiver thread lands it",
        )
        self._coalesce_histogram = registry.histogram(
            "endpoint_coalesce_batch_size", labels,
            help="sub-messages per coalesced BATCH envelope",
        )

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        if self._started:
            raise LifecycleError(f"endpoint {self.name!r} already started")
        self._started = True
        self._sender = spawn_thread(f"{self.name}-sender", self._sender_loop)
        self._receiver = spawn_thread(f"{self.name}-receiver", self._receiver_loop)

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        self.send_buffer.close()
        self.receive_buffer.close()
        self._id_queue.close()
        for thread in (self._sender, self._receiver):
            if thread is not None:
                thread.join(timeout=timeout)
        self._sender = None
        self._receiver = None
        self._release_unconsumed()

    @receives_ownership("drained headers carry shares acquired by senders")
    def _release_unconsumed(self) -> None:
        """Release refcounts of bodies still parked in the ID queue.

        A process that stops (or dies) before draining its ID queue would
        otherwise strand each undelivered body in the object store with a
        positive refcount — a leak per missed message.
        """
        store = self.broker.communicator.object_store
        for header in self._id_queue.drain():
            object_id = header.get(OBJECT_ID)
            if object_id is not None:
                try:
                    store.release(object_id)
                except Exception:  # noqa: BLE001 - already released elsewhere
                    pass

    # -- workhorse-facing API ------------------------------------------------
    def send(self, message: Message) -> None:
        """Stage a message for transmission — returns immediately.

        This is the only "send" a workhorse thread performs: a local buffer
        write.  The sender thread pushes it onward asynchronously, which is
        what lets communication overlap with the computation that follows.
        """
        if message.body_size == 0 and message.body is not None:
            nbytes, frame = measure(message.body)
            message.header[BODY_SIZE] = nbytes
            if frame is not None:
                # The size came from a full serialization pass: keep the
                # frame so the sender thread's store insert reuses it
                # instead of pickling the same body a second time.
                message.frame = frame
        trace_id, span_id = ensure_trace(message.header)
        if self.tracer is not None:
            self.tracer.record(
                "sent", self.name, seq=message.seq,
                dst=",".join(message.dst), nbytes=message.body_size,
                type=str(message.msg_type), trace=trace_id, span=span_id,
            )
        if self._flightrec is not None:
            self._flightrec.record("sent", self.name, message.seq, trace_id)
        if self._messages_sent is not None:
            self._messages_sent.inc()
            self._bytes_sent.inc(message.body_size)
        try:
            self.send_buffer.put(message)
        except RuntimeError:
            if not self._stop.is_set() and not self.send_buffer.closed:
                raise
            # Shutdown is in progress; a workhorse mid-step may still try to
            # send.  Dropping the message mirrors a process being killed.

    def receive(self, timeout: Optional[float] = None) -> Optional[Message]:
        """Blocking read from the local receive buffer."""
        message = self.receive_buffer.get(timeout=timeout)
        if message is not None:
            if self.tracer is not None:
                self.tracer.record(
                    "consumed", self.name, seq=message.seq, src=message.src,
                    type=str(message.msg_type),
                    trace=message.header.get(TRACE),
                    span=message.header.get(SPAN),
                )
            if self._flightrec is not None:
                self._flightrec.record(
                    "consumed", self.name, message.seq,
                    message.header.get(TRACE) or 0,
                )
        return message

    def receive_many(
        self, max_items: int, timeout: Optional[float] = None
    ) -> List[Message]:
        """Drain up to ``max_items`` delivered messages in one buffer lock.

        Blocks up to ``timeout`` for the first message, then takes whatever
        else is already buffered — the batch-consuming counterpart of
        :meth:`receive` for workhorses that process deliveries in bulk.
        """
        messages = self.receive_buffer.get_many(max_items, timeout=timeout)
        if self.tracer is not None:
            for message in messages:
                self.tracer.record(
                    "consumed", self.name, seq=message.seq, src=message.src,
                    type=str(message.msg_type),
                    trace=message.header.get(TRACE),
                    span=message.header.get(SPAN),
                )
        if self._flightrec is not None:
            for message in messages:
                self._flightrec.record(
                    "consumed", self.name, message.seq,
                    message.header.get(TRACE) or 0,
                )
        return messages

    # -- internal threads -----------------------------------------------------
    @transfers_ownership("staged header carries the object ID across the queue")
    def _stage(self, message: Message) -> _Staged:
        """Insert ``message``'s body into the object store; build its header.

        The body goes in with a refcount equal to the destination fan-out;
        the returned header carries the object ID across the header queue.
        ``originals`` is the list of workhorse-level messages this header
        represents — for a BATCH envelope, the coalesced sub-messages.
        """
        store = self.broker.communicator.object_store
        refcount = max(1, len(message.dst))
        if message.body is not None:
            object_id: Optional[str] = store.put(
                message.body,
                refcount=refcount,
                nbytes=message.body_size,
                frame=message.frame,
            )
        else:
            object_id = None
        header = dict(message.header)
        header[OBJECT_ID] = object_id
        originals = [message]
        return header, object_id, refcount, originals

    def _stage_coalesced(
        self, messages: Sequence[Message], spec: CoalescingSpec
    ) -> List[_Staged]:
        """Stage a drained batch, packing runs of small same-destination
        messages into BATCH envelopes.

        Only *consecutive* messages with an identical destination list are
        packed, so per-destination FIFO order is exactly what it was without
        coalescing.  Messages above the size threshold (or already BATCH,
        or body-less control headers) pass through individually.
        """
        staged: List[_Staged] = []
        run: List[Message] = []
        run_dst: Optional[tuple] = None
        for message in messages:
            packable = (
                message.body is not None
                and message.body_size <= spec.max_message_bytes
                and message.msg_type is not MsgType.BATCH
                # Under flow control a BATCH envelope rides the bulk lane,
                # so packing a control message into one would forfeit its
                # priority: control traffic always travels individually.
                and (self.flow is None or lane_of(message.msg_type) is Lane.BULK)
            )
            dst_key = tuple(message.header.get(DST, ())) if packable else None
            if packable and dst_key == run_dst and len(run) < spec.max_batch:
                run.append(message)
                continue
            self._flush_run(run, staged)
            if packable:
                run = [message]
                run_dst = dst_key
            else:
                run = []
                run_dst = None
                staged.append(self._stage(message))
        self._flush_run(run, staged)
        return staged

    def _flush_run(self, run: List[Message], staged: List[_Staged]) -> None:
        if not run:
            return
        if len(run) == 1:
            staged.append(self._stage(run[0]))
            return
        envelope = pack_batch(run)
        header, object_id, refcount, _ = self._stage(envelope)
        staged.append((header, object_id, refcount, list(run)))
        if self._coalesce_histogram is not None:
            self._coalesce_histogram.observe(len(run))

    @transfers_ownership("headers carry the object IDs across the queue")
    def _sender_loop(self) -> None:
        """Monitor the send buffer; push staged messages into the communicator.

        Each wakeup drains the send buffer (up to the batch cap), coalesces
        small same-destination runs when configured, inserts bodies into the
        object store with refcounts equal to their destination fan-out, and
        pushes all resulting headers onto the communicator's header queue in
        one batched put (§3.2.1).
        """
        communicator = self.broker.communicator
        while not self._stop.is_set():
            # Re-read the spec every wakeup: the FlowController retunes the
            # coalescing threshold at runtime by swapping self.coalescing.
            spec = self.coalescing
            coalesce = spec is not None and spec.enabled
            drain = spec.max_batch if coalesce else _DRAIN_LIMIT
            messages = self.send_buffer.get_many(drain, timeout=0.25)
            if not messages:
                if self.send_buffer.closed:
                    return
                continue
            if coalesce:
                staged = self._stage_coalesced(messages, spec)
            else:
                staged = [self._stage(message) for message in messages]
            headers = [entry[0] for entry in staged]
            try:
                result = communicator.header_queue.put_many(headers)
            except BackpressureError as exc:
                # A control header hit its admission deadline: fail loudly
                # (once) and drop it plus the unenqueued remainder below.
                with self._backpressure_lock:
                    self.backpressure_expired += 1
                if not self._backpressure_warned:
                    self._backpressure_warned = True
                    _LOG.warning(
                        "endpoint %s: control-lane send expired under "
                        "backpressure (%s); further expiries counted silently",
                        self.name, exc,
                    )
                    # First escalation only: snapshot the last seconds of
                    # channel activity for post-mortem (docs/OBSERVABILITY.md).
                    flight_dump("backpressure")
                result = exc.accepted
            # Plain HeaderQueue.put_many returns all-or-nothing booleans;
            # LaneHeaderQueue returns the admitted prefix length.  Normalize
            # before slicing — bool is an int and True would slice at 1.
            accepted = len(staged) if result is True else int(result)
            if accepted < len(staged):
                if self.flow is None:
                    # Plain HeaderQueue: headers dropped because the
                    # communicator is closing — we still own their shares,
                    # so undo the store inserts or the bodies leak with
                    # their full fan-out refcounts.
                    for _, object_id, refcount, _ in staged[accepted:]:
                        if object_id is not None:
                            for _ in range(refcount):
                                communicator.object_store.release(object_id)
                # LaneHeaderQueue (CONTROL_BLOCK) reclaimed the rejected
                # remainder itself — releasing here would double-free.
                if accepted == 0:
                    continue
            self.sent_meter.record_many(
                [max(message.body_size, 1) for message in messages]
            )

    @receives_ownership("releases the shares the senders acquired for us")
    def _receiver_loop(self) -> None:
        """Monitor the ID queue; copy bodies into the local receive buffer.

        BATCH envelopes are unpacked here — one store fetch covers the whole
        run, then each restored sub-message lands in the receive buffer
        individually, so workhorses never see the transport envelope.
        """
        communicator = self.broker.communicator
        while not self._stop.is_set():
            headers = self._id_queue.get_many(_DRAIN_LIMIT, timeout=0.25)
            if not headers:
                if self._id_queue.closed:
                    return
                continue
            deliveries: List[Message] = []
            for header in headers:
                object_id = header.get(OBJECT_ID)
                if object_id is not None:
                    body = communicator.object_store.get(object_id)
                    communicator.object_store.release(object_id)
                else:
                    body = None
                if header.get(TYPE) == MsgType.BATCH and body is not None:
                    envelope = Message(dict(header), body)
                    deliveries.extend(unpack_batch(envelope))
                    continue
                header = dict(header)
                header[OBJECT_ID] = None
                header[COMPRESSED] = False
                deliveries.append(Message(header, body))
            now = time.monotonic()  # one clock read ages the whole batch
            ages = [message.age(now) for message in deliveries]
            self.delivery_latency.record_many(ages)
            self.received_meter.record_many(
                [max(message.body_size, 1) for message in deliveries]
            )
            if self._messages_received is not None:
                self._messages_received.inc(len(deliveries))
                self._bytes_received.inc(
                    sum(message.body_size for message in deliveries)
                )
                for age in ages:
                    self._delivery_histogram.observe(max(age, 0.0))
            if self.tracer is not None:
                for message in deliveries:
                    self.tracer.record(
                        "delivered", self.name, seq=message.seq,
                        src=message.src, type=str(message.msg_type),
                        trace=message.header.get(TRACE),
                        span=message.header.get(SPAN),
                    )
            if self._flightrec is not None:
                for message in deliveries:
                    self._flightrec.record(
                        "delivered", self.name, message.seq,
                        message.header.get(TRACE) or 0,
                    )
            try:
                self.receive_buffer.put_many(deliveries)
            except RuntimeError:
                return  # receive buffer closed during shutdown


class WorkhorseThread:
    """A workhorse (rollout worker or trainer) running a step function.

    ``step_fn`` is called repeatedly until it returns ``False`` or the
    workhorse is stopped.  Exceptions are captured so a crashing workhorse
    surfaces at ``join`` instead of dying silently.
    """

    def __init__(self, name: str, step_fn: Callable[[], bool]):
        self.name = name
        self._step_fn = step_fn
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.error: Optional[BaseException] = None

    def start(self) -> None:
        if self._thread is not None:
            raise LifecycleError(f"workhorse {self.name!r} already started")
        self._thread = spawn_thread(self.name, self._run)

    def _run(self) -> None:
        try:
            while not self._stop.is_set():
                if not self._step_fn():
                    return
        except BaseException as exc:  # noqa: BLE001 - surfaced via .error
            self.error = exc

    def stop(self) -> None:
        self._stop.set()

    def join(self, timeout: Optional[float] = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()
