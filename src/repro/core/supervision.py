"""Supervision: heartbeats, failure detection, and restart policies.

The paper's decentralized design (§3.2) has no central task graph that
would notice a dead worker, so this module adds an explicit supervision
layer, the way production DRL platforms do (Fiber restarts failed workers
transparently; MALib supervises rollout actors independently of the
learner):

* every explorer/learner workhorse periodically sends a
  :data:`~repro.core.message.MsgType.HEARTBEAT` message to the center
  controller's endpoint;
* a :class:`Supervisor` (a thread inside the center controller) runs a
  per-process failure-detector state machine —
  ``ALIVE → SUSPECT → DEAD`` on missed beats, with captured workhorse
  exceptions short-circuiting straight to ``DEAD``;
* a :class:`RestartPolicy` grants each process a restart budget with
  exponential backoff; DEAD processes with remaining budget are rebuilt
  from their factory (explorers re-register with the broker; the learner
  additionally restores the latest :class:`~repro.core.checkpoint.Checkpointer`
  snapshot);
* when a process is irrecoverably dead the supervisor either degrades
  gracefully (keep training with survivors) or fails the run with
  :class:`~repro.core.errors.TrainingFailedError`, depending on
  ``allow_degraded``.

The state machine is driven by :meth:`Supervisor.poll_once`, which takes an
injectable clock so unit tests can single-step it deterministically.
"""

from __future__ import annotations

import logging
import random
import threading
import time
from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Dict, List, Optional

from .concurrency import make_rlock, spawn_thread
from .errors import ConfigError, TrainingFailedError
from .stats import StatsCollector
from .tracing import flight_dump

LOG = logging.getLogger("repro.supervision")


class ProcessState(str, Enum):
    """Failure-detector verdict for one supervised process."""

    ALIVE = "alive"
    SUSPECT = "suspect"
    DEAD = "dead"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class RestartPolicy:
    """Restart budget + exponential-backoff schedule.

    Restart ``k`` (0-based) is delayed by
    ``min(backoff_base * 2**k, backoff_max)`` seconds, plus up to
    ``jitter`` fraction of that delay drawn from the supervisor's seeded
    RNG — deterministic under a fixed seed, desynchronized across fleets.
    """

    max_restarts: int = 3
    backoff_base: float = 0.25
    backoff_max: float = 10.0
    jitter: float = 0.0

    def validate(self) -> None:
        if self.max_restarts < 0:
            raise ConfigError("max_restarts must be >= 0")
        if self.backoff_base < 0:
            raise ConfigError("backoff_base must be >= 0")
        if self.backoff_max < self.backoff_base:
            raise ConfigError("backoff_max must be >= backoff_base")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError("jitter must be in [0, 1]")

    def delay(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Backoff before restart number ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        base = min(self.backoff_base * (2.0 ** attempt), self.backoff_max)
        if self.jitter and rng is not None:
            base += rng.random() * self.jitter * base
        return base

    def schedule(self, rng: Optional[random.Random] = None) -> List[float]:
        """The full backoff schedule for this policy's budget."""
        return [self.delay(attempt, rng) for attempt in range(self.max_restarts)]


class _Watched:
    """Book-keeping for one supervised process."""

    def __init__(
        self,
        name: str,
        process: Any,
        kind: str,
        restart: Optional[Callable[[Any], Any]],
        now: float,
    ):
        self.name = name
        self.process = process
        self.kind = kind
        self.restart_fn = restart
        self.state = ProcessState.ALIVE
        self.last_beat = now
        self.restarts = 0
        self.restart_due: Optional[float] = None
        self.restarting = False  # a restart_fn call is in flight
        self.last_error: Optional[BaseException] = None
        self.exhausted = False  # DEAD with no restart budget left

    def workhorse_error(self) -> Optional[BaseException]:
        workhorse = getattr(self.process, "workhorse", None)
        return getattr(workhorse, "error", None)


class Supervisor:
    """Centralized failure detector + restarter for a cluster's workhorses.

    ``suspect_after``/``dead_after`` are seconds since the last heartbeat.
    ``clock`` is injectable for deterministic unit tests; the background
    thread (started via :meth:`start`) simply calls :meth:`poll_once` on an
    interval, so tests can drive the state machine manually instead.
    """

    def __init__(
        self,
        *,
        suspect_after: float = 1.0,
        dead_after: float = 2.5,
        policy: Optional[RestartPolicy] = None,
        collector: Optional[StatsCollector] = None,
        allow_degraded: bool = False,
        clock: Callable[[], float] = time.monotonic,
        seed: Optional[int] = None,
        poll_interval: float = 0.05,
    ):
        if dead_after <= suspect_after:
            raise ConfigError("dead_after must be > suspect_after")
        self.suspect_after = suspect_after
        self.dead_after = dead_after
        self.policy = policy or RestartPolicy()
        self.policy.validate()
        self.collector = collector
        self.allow_degraded = allow_degraded
        self.poll_interval = poll_interval
        self._clock = clock
        self._rng = random.Random(seed)
        self._lock = make_rlock("supervisor")
        self._watched: Dict[str, _Watched] = {}
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- registration -------------------------------------------------------
    def watch(
        self,
        name: str,
        process: Any,
        *,
        kind: str = "explorer",
        restart: Optional[Callable[[Any], Any]] = None,
    ) -> None:
        """Supervise ``process``.

        ``restart`` takes the dead process object and must return a started
        replacement; ``None`` means the process cannot be restarted and any
        death is terminal for it.
        """
        with self._lock:
            self._watched[name] = _Watched(name, process, kind, restart, self._clock())

    def observe_heartbeat(self, name: str) -> None:
        """Record a heartbeat (called from the controller's monitor loop)."""
        with self._lock:
            watched = self._watched.get(name)
            if watched is None:
                return
            watched.last_beat = self._clock()

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = spawn_thread("supervisor", self._run)

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.poll_interval):
            self.poll_once()

    # -- the state machine --------------------------------------------------
    def poll_once(self, now: Optional[float] = None) -> None:
        """Advance every watched process's failure-detector state machine."""
        if now is None:
            now = self._clock()
        with self._lock:
            watched_list = list(self._watched.values())
        for watched in watched_list:
            self._poll_process(watched, now)

    def _poll_process(self, watched: _Watched, now: float) -> None:
        with self._lock:
            if watched.exhausted or watched.restarting:
                return
            if watched.restart_due is not None:
                if now < watched.restart_due:
                    return
                watched.restart_due = None
                watched.restarting = True
            else:
                error = watched.workhorse_error()
                if error is not None:
                    watched.last_error = error
                    self._mark_dead(watched, now, f"workhorse crashed: {error!r}")
                    return
                silent_for = now - watched.last_beat
                if silent_for >= self.dead_after:
                    self._mark_dead(
                        watched, now, f"no heartbeat for {silent_for:.2f}s"
                    )
                elif silent_for >= self.suspect_after:
                    if watched.state == ProcessState.ALIVE:
                        watched.state = ProcessState.SUSPECT
                        LOG.warning(
                            "supervisor: %s SUSPECT (no heartbeat for %.2fs)",
                            watched.name, silent_for,
                        )
                elif watched.state == ProcessState.SUSPECT:
                    watched.state = ProcessState.ALIVE
                    LOG.info("supervisor: %s recovered to ALIVE", watched.name)
                return
        # The backoff expired: run the (potentially slow) restart callable
        # without holding the lock, so heartbeats from healthy processes keep
        # being recorded while an old process is torn down and rebuilt.
        self._restart(watched, now)

    def _mark_dead(self, watched: _Watched, now: float, reason: str) -> None:
        # Callers hold self._lock.
        watched.state = ProcessState.DEAD
        LOG.error("supervisor: %s DEAD (%s)", watched.name, reason)
        if self.collector is not None:
            self.collector.record_failure(watched.name)
        can_restart = (
            watched.restart_fn is not None
            and watched.restarts < self.policy.max_restarts
        )
        if can_restart:
            delay = self.policy.delay(watched.restarts, self._rng)
            watched.restart_due = now + delay
            LOG.info(
                "supervisor: restarting %s in %.2fs (restart %d/%d)",
                watched.name, delay, watched.restarts + 1, self.policy.max_restarts,
            )
        else:
            watched.exhausted = True
            LOG.error(
                "supervisor: %s is irrecoverable (restart budget %d exhausted)",
                watched.name, self.policy.max_restarts,
            )

    def _restart(self, watched: _Watched, now: float) -> None:
        try:
            replacement = watched.restart_fn(watched.process)
        except Exception as exc:  # noqa: BLE001 - a failed restart re-enters DEAD
            LOG.error("supervisor: restart of %s failed: %r", watched.name, exc)
            with self._lock:
                watched.restarting = False
                watched.restarts += 1
                self._mark_dead(watched, now, f"restart failed: {exc!r}")
            return
        with self._lock:
            watched.process = replacement
            watched.restarts += 1
            watched.state = ProcessState.ALIVE
            watched.last_beat = self._clock()
            watched.restarting = False
        if self.collector is not None:
            self.collector.record_restart(watched.name)
        LOG.warning(
            "supervisor: restarted %s (restart %d/%d)",
            watched.name, watched.restarts, self.policy.max_restarts,
        )

    # -- introspection ------------------------------------------------------
    def state(self, name: str) -> ProcessState:
        with self._lock:
            return self._watched[name].state

    def states(self) -> Dict[str, ProcessState]:
        with self._lock:
            return {name: w.state for name, w in self._watched.items()}

    def restarts(self, name: Optional[str] = None) -> int:
        with self._lock:
            if name is not None:
                return self._watched[name].restarts
            return sum(w.restarts for w in self._watched.values())

    def process(self, name: str) -> Any:
        """The currently-live process object for ``name`` (post-restart)."""
        with self._lock:
            return self._watched[name].process

    # -- failure policy -----------------------------------------------------
    def failure(self) -> Optional[str]:
        """Reason string when the run can no longer make progress.

        With ``allow_degraded=False`` (default) any irrecoverable worker
        fails the run.  With ``allow_degraded=True`` training continues on
        survivors: the run only fails once the learner is irrecoverable or
        *every* explorer is.
        """
        with self._lock:
            exhausted = [w for w in self._watched.values() if w.exhausted]
            if not exhausted:
                return None
            if not self.allow_degraded:
                names = ", ".join(sorted(w.name for w in exhausted))
                return (
                    f"worker(s) {names} dead with restart budget exhausted "
                    f"(max_restarts={self.policy.max_restarts})"
                )
            dead_learners = [w for w in exhausted if w.kind == "learner"]
            if dead_learners:
                return (
                    f"learner {dead_learners[0].name} dead with restart "
                    "budget exhausted"
                )
            explorers = [w for w in self._watched.values() if w.kind == "explorer"]
            if explorers and all(w.exhausted for w in explorers):
                return (
                    f"all {len(explorers)} explorers dead with restart "
                    "budget exhausted"
                )
            return None

    def check(self) -> None:
        """Raise :class:`TrainingFailedError` when the run is unrecoverable."""
        reason = self.failure()
        if reason is not None:
            # Preserve the flight-recorder ring before the run dies — the
            # last seconds of channel activity are exactly the post-mortem
            # evidence for *why* the workers went silent.
            flight_dump("training_failed")
            raise TrainingFailedError(reason)
