"""The algorithm-agnostic router (§3.2.1).

The router monitors the communicator's header queue.  For every new header
it resolves the destination list:

* **local destinations** — the header (already carrying the body's object
  ID) is dropped into each destination's ID queue; the body never moves.
* **remote destinations** — the router fetches the body once per remote
  machine, ships (header, body) over the broker fabric, and the remote
  router re-inserts the body into *its* object store before fanning out the
  header to local ID queues.  Workhorse threads "will not perceive any
  difference" (§3.2.1).

The router never inspects bodies — it is algorithm agnostic.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from typing import Any, Callable, Dict, List, Optional, Tuple

from .communicator import ShareMemCommunicator
from .concurrency import make_lock, spawn_thread
from .ownership import receives_ownership, transfers_ownership
from .errors import RoutingError, UnknownDestinationError, UnknownObjectError
from .message import BATCH_SEQS, COMPRESSED, DST, OBJECT_ID, SEQ, TRACE, TYPE
from .tracing import Tracer, flight_recorder

RemoteSend = Callable[[str, Dict[str, Any], Any, int], None]
"""(remote_broker, header, body, nbytes) -> ship over the fabric."""

#: headers drained from the header queue per router wakeup — amortizes the
#: queue lock without starving shutdown checks
_ROUTE_DRAIN = 128


class AlgorithmAgnosticRouter:
    """Routes headers from the communicator's header queue to ID queues.

    ``remote_table`` maps destination process names to remote broker names;
    ``remote_send`` performs the actual cross-machine transfer.  Both are
    optional for single-machine deployments.
    """

    def __init__(
        self,
        communicator: ShareMemCommunicator,
        *,
        name: str = "router",
        remote_table: Optional[Dict[str, str]] = None,
        remote_send: Optional[RemoteSend] = None,
        on_unroutable: str = "raise",
    ):
        if on_unroutable not in ("raise", "drop"):
            raise ValueError("on_unroutable must be 'raise' or 'drop'")
        self.name = name
        self.communicator = communicator
        self.remote_table: Dict[str, str] = dict(remote_table or {})
        self._remote_send = remote_send
        self._on_unroutable = on_unroutable
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        # Counters are mutated from the router thread *and* from fabric
        # delivery threads (``on_remote_receive``), so they take a lock.
        self._counters_lock = make_lock(f"{name}.counters")
        self._routed_local = 0
        self._routed_remote = 0
        self._dropped = 0
        #: optional :class:`Tracer` — records one "routed" event per header
        #: (per *sub-message* for coalesced BATCH envelopes)
        self.tracer: Optional[Tracer] = None
        #: per-process flight recorder (None when disabled via env)
        self._flightrec = flight_recorder()

    # -- counters ------------------------------------------------------------
    @property
    def routed_local(self) -> int:
        with self._counters_lock:
            return self._routed_local

    @property
    def routed_remote(self) -> int:
        with self._counters_lock:
            return self._routed_remote

    @property
    def dropped(self) -> int:
        with self._counters_lock:
            return self._dropped

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = spawn_thread(self.name, self._run)

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        self.communicator.header_queue.close()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    # -- routing ------------------------------------------------------------
    def _run(self) -> None:
        header_queue = self.communicator.header_queue
        while not self._stop.is_set():
            headers = header_queue.get_many(_ROUTE_DRAIN, timeout=0.25)
            if not headers:
                if header_queue.closed:
                    return
                continue
            for header in headers:
                try:
                    self.route(header)
                except UnknownDestinationError:
                    if self._on_unroutable == "raise":
                        raise
                    with self._counters_lock:
                        self._dropped += 1

    def route(self, header: Dict[str, Any]) -> None:
        """Dispatch one header to all destinations (public for tests)."""
        if self.tracer is not None or self._flightrec is not None:
            self._record_routed(header)
        local, remote_groups = self._partition(header[DST])
        if remote_groups:
            self._route_remote(header, remote_groups)
        for destination in local:
            self._deliver_local(destination, dict(header))

    def _record_routed(self, header: Dict[str, Any]) -> None:
        """Trace the routing decision.

        A coalesced BATCH envelope yields one "routed" event *per
        sub-message* (seq + trace context stamped by ``pack_batch``): the
        envelope is a transport artifact — its sub-messages got "sent" at
        the producing endpoint and will get "delivered" on unpack, so span
        accounting must see the same seqs here or every coalesced message
        shows up as unmatched in both directions.
        """
        dst = ",".join(header.get(DST, []))
        msg_type = str(header.get(TYPE))
        batch_seqs = header.get(BATCH_SEQS)
        if batch_seqs:
            for sub_seq, sub_trace in batch_seqs:
                if self.tracer is not None:
                    self.tracer.record(
                        "routed", self.name, seq=sub_seq, dst=dst,
                        type=msg_type, trace=sub_trace,
                    )
                if self._flightrec is not None:
                    self._flightrec.record(
                        "routed", self.name, sub_seq, sub_trace or 0
                    )
            return
        if self.tracer is not None:
            self.tracer.record(
                "routed", self.name, seq=header.get(SEQ), dst=dst,
                type=msg_type, trace=header.get(TRACE),
            )
        if self._flightrec is not None:
            self._flightrec.record(
                "routed", self.name, header.get(SEQ, -1),
                header.get(TRACE) or 0,
            )

    @receives_ownership("releases the share of an undeliverable destination")
    def _deliver_local(self, destination: str, header: Dict[str, Any]) -> None:
        """Put ``header`` on one local ID queue, releasing its refcount share
        when the destination is gone (queue closed or unregistered mid-route
        — routine when the supervisor is tearing a dead process down)."""
        delivered = False
        try:
            delivered = self.communicator.id_queue(destination).put(header)
        except RoutingError:
            delivered = False
        if delivered:
            with self._counters_lock:
                self._routed_local += 1
            return
        with self._counters_lock:
            self._dropped += 1
        if self.tracer is not None:
            # Terminal outcome: this (seq, dst) will never be delivered, so
            # span accounting closes its pending state instead of leaking it.
            self.tracer.record(
                "rejected", self.name, seq=header.get(SEQ),
                trace=header.get(TRACE), dst=destination,
                type=str(header.get(TYPE)),
            )
        object_id = header.get(OBJECT_ID)
        if object_id is not None:
            try:
                self.communicator.object_store.release(object_id)
            except UnknownObjectError:
                pass

    def _partition(
        self, destinations: List[str]
    ) -> Tuple[List[str], Dict[str, List[str]]]:
        local: List[str] = []
        remote_groups: Dict[str, List[str]] = defaultdict(list)
        for destination in destinations:
            if self.communicator.is_local(destination):
                local.append(destination)
            elif destination in self.remote_table:
                remote_groups[self.remote_table[destination]].append(destination)
            else:
                raise UnknownDestinationError(
                    f"router {self.name!r}: no route to {destination!r}"
                )
        return local, dict(remote_groups)

    @receives_ownership("remote destinations never consume the local share")
    def _route_remote(
        self, header: Dict[str, Any], remote_groups: Dict[str, List[str]]
    ) -> None:
        if self._remote_send is None:
            raise UnknownDestinationError(
                f"router {self.name!r}: remote destinations "
                f"{sorted(remote_groups)} but no fabric attached"
            )
        store = self.communicator.object_store
        object_id = header.get(OBJECT_ID)
        body = store.get(object_id) if object_id is not None else None
        nbytes = header.get("body_size", 0)
        for remote_broker, group in remote_groups.items():
            remote_header = dict(header)
            remote_header[DST] = list(group)
            remote_header[OBJECT_ID] = None
            self._remote_send(remote_broker, remote_header, body, nbytes)
            with self._counters_lock:
                self._routed_remote += len(group)
        if object_id is not None:
            for group in remote_groups.values():
                for _ in group:
                    store.release(object_id)

    @transfers_ownership("re-inserted body is handed to local ID queues")
    def on_remote_receive(self, header: Dict[str, Any], body: Any) -> None:
        """Handle a (header, body) pair arriving from another machine.

        Local destinations get the body re-inserted into the local object
        store and the header fanned out to their ID queues.  Destinations
        homed behind *other* brokers are forwarded onward — the learner
        machine's broker is the data-transmission center (Fig. 2b), so
        edge-to-edge traffic transits through it.
        """
        destinations = []
        transit_groups: Dict[str, List[str]] = defaultdict(list)
        unroutable = []
        for destination in header[DST]:
            if self.communicator.is_local(destination):
                destinations.append(destination)
            elif destination in self.remote_table and self._remote_send is not None:
                transit_groups[self.remote_table[destination]].append(destination)
            else:
                unroutable.append(destination)
        for remote_broker, group in transit_groups.items():
            transit_header = dict(header)
            transit_header[DST] = list(group)
            transit_header[OBJECT_ID] = None
            self._remote_send(
                remote_broker, transit_header, body, header.get("body_size", 0)
            )
            with self._counters_lock:
                self._routed_remote += len(group)
        if unroutable:
            if self._on_unroutable == "raise":
                raise UnknownDestinationError(
                    f"router {self.name!r}: remote message for {unroutable} "
                    "has no local destination or onward route"
                )
            with self._counters_lock:
                self._dropped += len(unroutable)
        if not destinations:
            return
        object_id = (
            self.communicator.object_store.put(
                body,
                refcount=len(destinations),
                nbytes=header.get("body_size", 0),
            )
            if body is not None
            else None
        )
        for destination in destinations:
            local_header = dict(header)
            local_header[DST] = [destination]
            local_header[OBJECT_ID] = object_id
            local_header[COMPRESSED] = False
            self._deliver_local(destination, local_header)
