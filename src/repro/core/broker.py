"""The broker process (§3.2.1).

A broker owns the shared-memory communicator and the algorithm-agnostic
router.  It is "totally different from the data management buffer in
existing DRL frameworks": it never interprets or stores data on behalf of
the algorithm — it only pushes messages to their destinations as fast as
possible.  Brokers in different machines are connected by a data fabric;
for PBT, brokers carry a ``rank`` and only same-rank brokers are connected
(§4.3).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..transport.fabric import Fabric
from .communicator import HeaderQueue, ShareMemCommunicator
from .concurrency import make_lock, runtime_checks_enabled
from .errors import LifecycleError, UnknownObjectError
from .flowcontrol import WireCompressor, wire_decode
from .message import DST, OBJECT_ID
from .object_store import ObjectStore
from .ownership import receives_ownership
from .router import AlgorithmAgnosticRouter
from .tracing import flight_dump


class Broker:
    """Communicator + router, optionally attached to an inter-machine fabric."""

    def __init__(
        self,
        name: str = "broker",
        *,
        store: Optional[ObjectStore] = None,
        fabric: Optional[Fabric] = None,
        rank: int = 0,
        on_unroutable: str = "raise",
        coalescing: Optional[Any] = None,
        flow: Optional[Any] = None,
    ):
        self.name = name
        self.rank = rank
        #: :class:`~repro.core.config.CoalescingSpec` (or None) inherited by
        #: every endpoint registered against this broker
        self.coalescing = coalescing
        #: :class:`~repro.core.config.FlowControlSpec` (or None); when set,
        #: the communicator's queues grow priority lanes and watermarks and
        #: endpoints registered against this broker use flow-aware buffers
        self.flow = flow if flow is not None and flow.enabled else None
        self.communicator = ShareMemCommunicator(
            f"{name}.comm", store=store, flow=self.flow
        )
        #: adaptive fabric-boundary codec the FlowController toggles; None
        #: without flow control (and a no-op until enabled even with it)
        self.wire: Optional[WireCompressor] = (
            WireCompressor(
                name, min_bytes=self.flow.wire_compression_min_bytes
            )
            if self.flow is not None
            else None
        )
        if self.flow is not None:
            arena = getattr(self.communicator.object_store, "arena", None)
            if arena is not None and hasattr(arena, "set_watermarks"):
                arena.set_watermarks(
                    self.flow.arena_high_watermark, self.flow.arena_low_watermark
                )
        self._fabric = fabric
        self.router = AlgorithmAgnosticRouter(
            self.communicator,
            name=f"{name}.router",
            remote_send=self._remote_send if fabric is not None else None,
            on_unroutable=on_unroutable,
        )
        if fabric is not None:
            fabric.register(self.name, self._on_fabric_receive)
        self._started = False
        self._stopped = False
        self._lock = make_lock(f"{name}.lifecycle")

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        with self._lock:
            if self._started:
                raise LifecycleError(f"broker {self.name!r} already started")
            self._started = True
        self.router.start()

    def stop(self) -> None:
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
        self.router.stop()
        if self.flow is not None:
            # Wake senders blocked on control-lane admission and wait for
            # them to finish their queue-side reclaims, so the refcount
            # audit below cannot race a woken producer.
            queue = self.communicator.header_queue
            queue.close()
            queue.join_producers(timeout=2.0)
        self._release_undispatched()
        try:
            if runtime_checks_enabled():
                # Refcount audit (see repro.analysis.runtime): endpoints
                # released their undrained ID queues at their own stop();
                # whatever is left in the store now is a leak.  Must run
                # before the communicator close below, which frees the
                # store's remaining entries.
                try:
                    self.communicator.object_store.assert_balanced(
                        context=f"broker {self.name!r} shutdown"
                    )
                except Exception:
                    # The channel misbehaved: preserve the last seconds of
                    # message flow for post-mortem before re-raising.
                    flight_dump("refcount_audit")
                    raise
        finally:
            self.communicator.close()
            if self._fabric is not None:
                self._fabric.unregister(self.name)

    @receives_ownership("drains shares parked by stopped senders")
    def _release_undispatched(self) -> None:
        """Release refcounts of headers the router never got to dispatch.

        The sender inserts each body with ``refcount == fan-out`` before the
        header crosses the header queue; a header still parked there at
        shutdown strands that full fan-out in the object store.
        """
        store = self.communicator.object_store
        for header in self.communicator.header_queue.drain():
            object_id = header.get(OBJECT_ID)
            if object_id is None:
                continue
            for _ in range(max(1, len(header.get(DST) or []))):
                try:
                    store.release(object_id)
                except UnknownObjectError:
                    break
        # Headers already routed into an ID queue nobody drained (e.g. a
        # registered sink with no endpoint) hold one share each.
        for header in self.communicator.drain_parked():
            object_id = header.get(OBJECT_ID)
            if object_id is None:
                continue
            try:
                store.release(object_id)
            except UnknownObjectError:
                pass

    # -- registration -------------------------------------------------------
    def register_process(self, process_name: str) -> "HeaderQueue":
        """Register a local explorer/learner; returns its ID queue."""
        return self.communicator.register(process_name)

    def add_remote_route(self, process_name: str, remote_broker: str) -> None:
        """Teach the router that ``process_name`` lives behind another broker."""
        self.router.remote_table[process_name] = remote_broker

    # -- fabric plumbing ----------------------------------------------------
    def _remote_send(
        self, remote_broker: str, header: Dict[str, Any], body: Any, nbytes: int
    ) -> None:
        assert self._fabric is not None
        if self.wire is not None and self.wire.wants(header, body, nbytes):
            # Adaptive wire compression: trade sender CPU for link bytes
            # when the FlowController decides throughput is sagging.  The
            # reduced byte count is what a throttled NIC model charges.
            header, body, nbytes = self.wire.encode(header, body, nbytes)
        self._fabric.send(self.name, remote_broker, (header, body), nbytes)

    def _on_fabric_receive(self, item: Any) -> None:
        header, body = item
        # Always decode by header, not by local wire state: the *sending*
        # broker decides whether a body was compressed on the wire.
        header, body = wire_decode(header, body)
        self.router.on_remote_receive(header, body)
