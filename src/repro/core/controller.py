"""Controllers (§3.2.2).

Each machine runs a :class:`Controller` that manages the life cycle of its
local broker and processes.  The controller in the launch machine is the
**center controller**: it collects statistics from explorers and the
learner (arriving as STATS messages at its own endpoint), evaluates the
training-goal stop condition, and broadcasts shutdown commands to the other
controllers over the fully-connected control fabric.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, List, Optional

from ..transport.fabric import Fabric
from .broker import Broker
from .concurrency import spawn_thread
from .config import StopCondition
from .endpoint import ProcessEndpoint
from .message import CMD_SHUTDOWN, Command, MsgType
from .stats import StatsCollector
from .supervision import Supervisor


class Controller:
    """Per-machine lifecycle manager."""

    def __init__(self, name: str, broker: Broker, control_fabric: Optional[Fabric] = None):
        self.name = name
        self.broker = broker
        self._control_fabric = control_fabric
        self._processes: List[Any] = []
        self._stopped = threading.Event()
        if control_fabric is not None:
            control_fabric.register(self.name, self._on_command)

    def manage(self, process: Any) -> None:
        """Track a process (Explorer/Learner/...) for lifecycle handling."""
        self._processes.append(process)

    def replace(self, old: Any, new: Any) -> None:
        """Swap a restarted process into the managed set (supervision)."""
        for index, process in enumerate(self._processes):
            if process is old:
                self._processes[index] = new
                return
        self._processes.append(new)

    def start_all(self) -> None:
        self.broker.start()
        for process in self._processes:
            process.start()

    def stop_all(self) -> None:
        if self._stopped.is_set():
            return
        self._stopped.set()
        for process in self._processes:
            process.stop()
        self.broker.stop()

    def _on_command(self, command: Command) -> None:
        if command.name == CMD_SHUTDOWN:
            self.stop_all()

    @property
    def stopped(self) -> bool:
        return self._stopped.is_set()


class CenterController(Controller):
    """The controller in the launch machine (§3.2.2).

    Owns an endpoint registered with the local broker to receive STATS
    messages, aggregates them, evaluates the stop condition, and broadcasts
    shutdown to every controller when the training goal is achieved.
    """

    ENDPOINT_NAME = "controller"

    def __init__(
        self,
        name: str,
        broker: Broker,
        stop_condition: StopCondition,
        *,
        control_fabric: Optional[Fabric] = None,
        on_shutdown: Optional[Callable[[], None]] = None,
    ):
        super().__init__(name, broker, control_fabric)
        self.stop_condition = stop_condition
        self.collector = StatsCollector()
        self.endpoint = ProcessEndpoint(self.ENDPOINT_NAME, broker)
        self._on_shutdown = on_shutdown
        self._monitor: Optional[threading.Thread] = None
        self._monitor_stop = threading.Event()
        self._started_at: Optional[float] = None
        self.shutdown_reason: Optional[str] = None
        #: optional fault-tolerance layer (attached by the cluster builder)
        self.supervisor: Optional[Supervisor] = None

    def attach_supervisor(self, supervisor: Supervisor) -> None:
        """Install the supervision layer; heartbeats arriving at this
        controller's endpoint will feed its failure detector."""
        self.supervisor = supervisor

    def start_all(self) -> None:
        super().start_all()
        self.endpoint.start()
        self._started_at = time.monotonic()
        self._monitor = spawn_thread(f"{self.name}.monitor", self._monitor_loop)
        if self.supervisor is not None:
            self.supervisor.start()

    def stop_all(self) -> None:
        if self.stopped:
            return
        # Stop supervising first so shutting processes down is not mistaken
        # for worker death (and nothing gets restarted mid-teardown).
        if self.supervisor is not None:
            self.supervisor.stop()
        self._monitor_stop.set()
        self.endpoint.stop()
        # Broadcast shutdown to the other controllers first (§3.2.2).
        if self._control_fabric is not None:
            for node in self._control_fabric.nodes():
                if node != self.name:
                    self._control_fabric.send(self.name, node, Command(CMD_SHUTDOWN))
        super().stop_all()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
        if self._on_shutdown is not None:
            self._on_shutdown()

    # -- stats & stop condition ----------------------------------------------
    def _monitor_loop(self) -> None:
        while not self._monitor_stop.is_set():
            message = self.endpoint.receive(timeout=0.1)
            if message is None:
                continue
            if message.msg_type == MsgType.STATS:
                self.collector.add(message.body)
                # A stats report proves the sender is alive too.
                if self.supervisor is not None:
                    self.supervisor.observe_heartbeat(message.src)
            elif message.msg_type == MsgType.HEARTBEAT:
                if self.supervisor is not None:
                    self.supervisor.observe_heartbeat(message.src)

    def elapsed(self) -> float:
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at

    def should_stop(self) -> Optional[str]:
        """Returns a human-readable reason when the goal is reached."""
        cond = self.stop_condition
        if cond.total_env_steps is not None:
            if self.collector.total_env_steps >= cond.total_env_steps:
                return f"collected {self.collector.total_env_steps} env steps"
        if cond.total_trained_steps is not None:
            if self.collector.total_trained_steps >= cond.total_trained_steps:
                return f"consumed {self.collector.total_trained_steps} rollout steps"
        if cond.target_return is not None:
            average = self.collector.average_return()
            if average is not None and average >= cond.target_return:
                return f"average return {average:.2f} reached target"
        if cond.max_seconds is not None and self.elapsed() >= cond.max_seconds:
            return f"time budget of {cond.max_seconds}s exhausted"
        return None

    def wait(self, poll_interval: float = 0.05) -> str:
        """Block until the stop condition fires; returns the reason.

        With a supervisor attached this raises
        :class:`~repro.core.errors.TrainingFailedError` the moment the run
        becomes unrecoverable (all restart budget spent on dead workers)
        instead of spinning forever on a deployment that can never reach
        its goal.
        """
        while True:
            reason = self.should_stop()
            if reason is not None:
                self.shutdown_reason = reason
                return reason
            if self.supervisor is not None:
                self.supervisor.check()
            time.sleep(poll_interval)
