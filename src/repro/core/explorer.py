"""The explorer process (§3.2.1).

Hosts the rollout-worker workhorse thread.  The workhorse only reads and
writes the local send/receive buffers; the endpoint's sender/receiver
threads handle everything else.  The loop is data-driven: it applies the
newest weights whenever they arrive, generates a rollout fragment, stages it
for the learner, and — only for on-policy algorithms — blocks until fresh
weights before generating the next fragment (Fig. 1a).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Optional

from ..api.agent import Agent
from .broker import Broker
from .endpoint import ProcessEndpoint, WorkhorseThread
from .errors import WorkerCrashedError
from .message import CMD_SHUTDOWN, MsgType, make_message
from .serialization import payload_nbytes
from .stats import ProcessStats, ThroughputMeter


class ExplorerProcess:
    """One explorer: endpoint + rollout-worker thread + an :class:`Agent`."""

    def __init__(
        self,
        name: str,
        broker: Broker,
        agent_factory: Callable[[], Agent],
        *,
        learner_name: str = "learner",
        controller_name: Optional[str] = None,
        fragment_steps: int = 200,
        stats_interval: float = 0.5,
        heartbeat_interval: Optional[float] = None,
    ):
        self.name = name
        self.endpoint = ProcessEndpoint(name, broker)
        self.agent = agent_factory()
        self.learner_name = learner_name
        self.controller_name = controller_name
        self.fragment_steps = fragment_steps
        self.stats_interval = stats_interval
        #: seconds between HEARTBEAT messages to the controller (None = off)
        self.heartbeat_interval = heartbeat_interval
        self._last_heartbeat = time.monotonic()
        self.heartbeats_sent = 0
        self.workhorse = WorkhorseThread(f"{name}.rollout-worker", self._step)
        self.steps_meter = ThroughputMeter()
        self.fragments_sent = 0
        self.weight_updates = 0
        # On-policy explorers must act with the learner's weights from the
        # very first fragment (their recorded logp must match the trained
        # policy); off-policy explorers start immediately with their own
        # initial weights, as in the paper's DQN/IMPALA (Fig. 1).
        self._awaiting_weights = self.agent.algorithm.on_policy
        self._have_initial_weights = not self.agent.algorithm.on_policy
        self._last_stats = time.monotonic()
        self._pending_returns: list = []
        self._steps_since_stats = 0
        self._episodes_reported = 0
        # Telemetry instruments (None until attach_metrics).
        self._steps_counter: Optional[Any] = None
        self._fragments_counter: Optional[Any] = None
        self._weight_updates_counter: Optional[Any] = None

    def attach_metrics(self, registry: Any) -> None:
        """Register rollout-progress counters on ``registry``."""
        labels = {"process": self.name}
        self._steps_counter = registry.counter(
            "explorer_env_steps_total", labels,
            help="environment steps generated",
        )
        self._fragments_counter = registry.counter(
            "explorer_fragments_total", labels,
            help="rollout fragments staged for the learner",
        )
        self._weight_updates_counter = registry.counter(
            "explorer_weight_updates_total", labels,
            help="weight broadcasts applied",
        )

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        self.endpoint.start()
        self.workhorse.start()

    def stop(self, timeout: float = 5.0) -> None:
        self.workhorse.stop()
        self.endpoint.stop(timeout=timeout)
        self.workhorse.join(timeout=timeout)

    def join(self, timeout: Optional[float] = None, *, raise_on_error: bool = True) -> None:
        """Wait for the workhorse; re-raise a captured crash by default.

        A workhorse exception is captured in ``workhorse.error`` — without
        this re-raise a crashed explorer would be silently lost by any
        caller that only ever joins.
        """
        self.workhorse.join(timeout=timeout)
        error = self.workhorse.error
        if raise_on_error and error is not None:
            raise WorkerCrashedError(
                f"explorer {self.name!r} workhorse crashed: {error!r}"
            ) from error

    # -- workhorse loop -------------------------------------------------------
    def _step(self) -> bool:
        self._maybe_send_heartbeat()
        if not self._drain_inbox(
            block=self._awaiting_weights or not self._have_initial_weights
        ):
            return False
        if self._awaiting_weights or not self._have_initial_weights:
            return True  # still waiting; loop and block again
        rollout, finished_returns = self.agent.run_fragment(self.fragment_steps)
        self._pending_returns.extend(finished_returns)
        steps = len(rollout.get("reward", ()))
        self.steps_meter.record(steps)
        if self._steps_counter is not None:
            self._steps_counter.inc(steps)
        message = make_message(
            self.name,
            [self.learner_name],
            MsgType.ROLLOUT,
            rollout,
            body_size=payload_nbytes(rollout),
        )
        self.endpoint.send(message)
        self.fragments_sent += 1
        if self._fragments_counter is not None:
            self._fragments_counter.inc()
        if self.agent.algorithm.on_policy:
            self._awaiting_weights = True
        self._maybe_send_stats(steps)
        return True

    def _drain_inbox(self, block: bool) -> bool:
        """Apply newest weights; honour shutdown commands.

        Returns ``False`` to terminate the workhorse.  When ``block`` is
        true the explorer is gated on fresh weights and waits briefly.
        """
        latest_weights = None
        while True:
            timeout = 0.05 if (block and latest_weights is None) else 0.0
            message = self.endpoint.receive(timeout=timeout)
            if message is None:
                if self.endpoint.receive_buffer.closed or self.workhorse.stopping:
                    return False
                break
            if message.msg_type == MsgType.WEIGHTS:
                latest_weights = message.body
            elif message.msg_type == MsgType.COMMAND:
                if getattr(message.body, "name", None) == CMD_SHUTDOWN:
                    return False
        if latest_weights is not None:
            self.agent.set_weights(latest_weights)
            self.weight_updates += 1
            if self._weight_updates_counter is not None:
                self._weight_updates_counter.inc()
            self._awaiting_weights = False
            self._have_initial_weights = True
        return True

    def _maybe_send_heartbeat(self) -> None:
        if self.heartbeat_interval is None or self.controller_name is None:
            return
        now = time.monotonic()
        if now - self._last_heartbeat < self.heartbeat_interval:
            return
        self._last_heartbeat = now
        self.endpoint.send(
            make_message(self.name, [self.controller_name], MsgType.HEARTBEAT, None)
        )
        self.heartbeats_sent += 1

    def _maybe_send_stats(self, steps: int) -> None:
        self._steps_since_stats += steps
        if self.controller_name is None:
            return
        now = time.monotonic()
        if now - self._last_stats < self.stats_interval:
            return
        self._last_stats = now
        # Reports carry per-interval deltas so the collector can sum them.
        report = ProcessStats(
            source=self.name,
            steps=self._steps_since_stats,
            episodes=self.agent.completed_episodes - self._episodes_reported,
            episode_returns=list(self._pending_returns),
            messages_sent=self.fragments_sent,
        )
        self._steps_since_stats = 0
        self._episodes_reported = self.agent.completed_episodes
        self._pending_returns.clear()
        self.endpoint.send(
            make_message(self.name, [self.controller_name], MsgType.STATS, report)
        )
