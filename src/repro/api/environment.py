"""The Environment class: gym-style wrapper (paper §4.2).

Wraps both the bundled testbed environments and self-defined ones behind
standard ``reset``/``step`` interfaces.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

if TYPE_CHECKING:  # avoid the api <-> envs import cycle at runtime
    from ..envs.spaces import Space


class Environment:
    """Gym-style environment interface.

    Subclasses implement :meth:`reset` and :meth:`step`; ``observation_space``
    and ``action_space`` describe the MDP's S and A.
    """

    def __init__(self, config: Optional[Dict[str, Any]] = None):
        self.config = dict(config or {})

    @property
    def observation_space(self) -> "Space":
        raise NotImplementedError

    @property
    def action_space(self) -> "Space":
        raise NotImplementedError

    def reset(self) -> Any:
        """Start a new episode; returns the initial observation."""
        raise NotImplementedError

    def step(self, action: Any) -> Tuple[Any, float, bool, Dict[str, Any]]:
        """Apply ``action``; returns (observation, reward, done, info)."""
        raise NotImplementedError

    def seed(self, seed: Optional[int] = None) -> None:
        """Seed the environment's randomness (no-op by default)."""

    def close(self) -> None:
        """Release environment resources (no-op by default)."""

    def render(self) -> Any:  # pragma: no cover - optional visualisation
        return None
