"""The Model class: holds the DNN definition and weight APIs (paper §4.2).

Researchers are free to back a Model with any deep-learning framework; this
repo bundles a NumPy substrate (:mod:`repro.nn`).  The framework only needs
``get_weights``/``set_weights`` (weights are shipped between learner and
explorers) and ``forward`` for inference.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np


class Model:
    """Interface for DNN holders."""

    def __init__(self, config: Optional[Dict[str, Any]] = None):
        self.config = dict(config or {})

    def forward(self, observation: np.ndarray) -> Any:
        """Run inference for a batch of observations."""
        raise NotImplementedError

    def get_weights(self) -> List[np.ndarray]:
        """Snapshot the parameters as a flat list of arrays (copied)."""
        raise NotImplementedError

    def set_weights(self, weights: List[np.ndarray]) -> None:
        """Load a parameter snapshot produced by :meth:`get_weights`."""
        raise NotImplementedError

    def num_parameters(self) -> int:
        return int(sum(w.size for w in self.get_weights()))

    def weights_nbytes(self) -> int:
        return int(sum(w.nbytes for w in self.get_weights()))
