"""The Algorithm class: how to update DNNs with rollouts (paper §4.2).

Researchers implement ``prepare_data`` (how received rollouts are organized
— replay-buffer maintenance also happens here) and ``train`` (one training
session).  The base class additionally provides DNN inference and periodic
checkpointing for fault tolerance, as the paper describes.

The learner process drives a generic loop::

    on ROLLOUT message:  algorithm.prepare_data(rollout, source)
    while algorithm.ready_to_train():  metrics = algorithm.train()
                                       maybe broadcast weights

Three knobs let one loop serve all algorithm families:

* ``on_policy``       — explorers wait for fresh weights after each send
                        (PPO) vs. keep sampling (DQN/IMPALA);
* ``broadcast_every`` — send weights every N training sessions;
* ``broadcast_mode``  — ``"all"`` (PPO/DQN broadcast) or ``"sources"``
                        (IMPALA sends exactly to the explorers whose
                        rollouts were consumed, §2.1).
"""

from __future__ import annotations

import os
import pickle
import tempfile
from typing import Any, Dict, List, Optional

import numpy as np

from ..core.errors import CheckpointError
from ..nn.optimizers import Optimizer
from .model import Model


class Algorithm:
    """Base class for training logic."""

    #: explorers must wait for fresh weights after sending a rollout
    on_policy: bool = False
    #: broadcast weights every this many training sessions
    broadcast_every: int = 1
    #: "all" or "sources"
    broadcast_mode: str = "all"

    def __init__(self, model: Model, config: Optional[Dict[str, Any]] = None):
        self.model = model
        self.config = dict(config or {})
        self.train_count = 0
        self._last_consumed_sources: List[str] = []

    # -- data path -----------------------------------------------------------
    def prepare_data(self, rollout: Dict[str, Any], source: str = "") -> None:
        """Organize a received rollout (stage it, or insert into replay)."""
        raise NotImplementedError

    def ready_to_train(self) -> bool:
        """Whether enough data is staged for one training session."""
        raise NotImplementedError

    def train(self) -> Dict[str, float]:
        """Run one training session; returns metrics.

        Subclasses implement :meth:`_train`; this wrapper maintains the
        session counter used for broadcast scheduling.
        """
        metrics = self._train()
        self.train_count += 1
        return metrics

    def _train(self) -> Dict[str, float]:
        raise NotImplementedError

    # -- inference -------------------------------------------------------------
    def predict(self, observation: np.ndarray) -> Any:
        """DNN inference (provided, per the paper)."""
        return self.model.forward(observation)

    # -- weights ---------------------------------------------------------------
    def get_weights(self) -> List[np.ndarray]:
        return self.model.get_weights()

    def set_weights(self, weights: List[np.ndarray]) -> None:
        self.model.set_weights(weights)

    def should_broadcast(self) -> bool:
        return self.train_count % max(1, self.broadcast_every) == 0

    def broadcast_targets(self, all_explorers: List[str]) -> List[str]:
        """Which explorers receive the updated weights."""
        if self.broadcast_mode == "sources":
            targets = [s for s in self._last_consumed_sources if s in all_explorers]
            return targets or list(all_explorers)
        return list(all_explorers)

    def note_consumed_sources(self, sources: List[str]) -> None:
        self._last_consumed_sources = list(sources)

    # -- checkpointing -----------------------------------------------------------
    def _optimizers(self) -> Dict[str, Optimizer]:
        """Optimizer instances held in instance attributes, keyed by name.

        Concrete algorithms store their optimizers under varying attribute
        names (``_optimizer``, ``_policy_opt``, ...); discovering them here
        lets the base class checkpoint optimizer state generically.
        """
        return {
            name: value
            for name, value in vars(self).items()
            if isinstance(value, Optimizer)
        }

    def get_state(self) -> Dict[str, Any]:
        """Full training state: weights, counters, and optimizer state."""
        return {
            "train_count": self.train_count,
            "weights": self.get_weights(),
            "config": self.config,
            "optimizers": {
                name: opt.state_dict() for name, opt in self._optimizers().items()
            },
        }

    def set_state(self, state: Dict[str, Any]) -> None:
        """Restore state produced by :meth:`get_state`."""
        self.set_weights(state["weights"])
        self.train_count = int(state.get("train_count", 0))
        saved_optimizers = state.get("optimizers", {})
        for name, opt in self._optimizers().items():
            if name in saved_optimizers:
                opt.load_state_dict(saved_optimizers[name])

    def save_checkpoint(self, path: str) -> None:
        """Atomically write model weights + optimizer state to ``path``."""
        state = self.get_state()
        directory = os.path.dirname(os.path.abspath(path)) or "."
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".ckpt.tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(state, handle, protocol=5)
            os.replace(tmp_path, path)
        except OSError as exc:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise CheckpointError(f"failed to save checkpoint to {path}: {exc}") from exc

    def restore_checkpoint(self, path: str) -> None:
        """Restore weights and counters written by :meth:`save_checkpoint`."""
        try:
            with open(path, "rb") as handle:
                state = pickle.load(handle)
        except (OSError, pickle.UnpicklingError) as exc:
            raise CheckpointError(f"failed to restore checkpoint {path}: {exc}") from exc
        self.set_state(state)

    # -- introspection ------------------------------------------------------------
    def staged_steps(self) -> int:
        """Rollout steps staged and not yet consumed (0 if not tracked)."""
        return 0
