"""Researcher-facing API (paper §4.2).

XingTian exposes four classes — :class:`Environment`, :class:`Model`,
:class:`Algorithm`, :class:`Agent` — which together answer the four
questions the paper lists: which environment, which DNN, how to train with
rollouts, and how to interact to collect rollouts.  A configuration file
combines registered implementations into a runnable DRL algorithm.
"""

from .environment import Environment
from .model import Model
from .algorithm import Algorithm
from .agent import Agent
from .registry import (
    registry,
    register_environment,
    register_model,
    register_algorithm,
    register_agent,
)

__all__ = [
    "Environment",
    "Model",
    "Algorithm",
    "Agent",
    "registry",
    "register_environment",
    "register_model",
    "register_algorithm",
    "register_agent",
]
