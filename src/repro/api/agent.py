"""The Agent class: how to interact with the environment (paper §4.2).

Researchers implement ``infer_action`` (action selection given an
observation) and ``handle_env_feedback`` (how to sort observations and
rewards into rollout records).  The agent holds an :class:`Algorithm`
instance to maintain its copy of the DNNs, exactly as the paper describes.

:meth:`run_fragment` is the rollout-worker inner loop: it advances the
environment ``fragment_steps`` steps, building a rollout dict of stacked
arrays plus episode statistics.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .algorithm import Algorithm
from .environment import Environment


class Agent:
    """Base class for environment interaction."""

    def __init__(
        self,
        algorithm: Algorithm,
        environment: Environment,
        config: Optional[Dict[str, Any]] = None,
    ):
        self.algorithm = algorithm
        self.environment = environment
        self.config = dict(config or {})
        self._observation: Any = None
        self._episode_return = 0.0
        self._episode_length = 0
        self.total_steps = 0
        self.completed_episodes = 0

    # -- researcher hooks ------------------------------------------------------
    def infer_action(self, observation: Any) -> Tuple[Any, Dict[str, Any]]:
        """Choose an action; returns (action, extras-to-record)."""
        raise NotImplementedError

    def handle_env_feedback(
        self,
        observation: Any,
        action: Any,
        reward: float,
        next_observation: Any,
        done: bool,
        info: Dict[str, Any],
        extras: Dict[str, Any],
    ) -> Dict[str, Any]:
        """Turn one transition into a rollout-step record (a flat dict)."""
        record = {
            "obs": observation,
            "action": action,
            "reward": reward,
            "next_obs": next_observation,
            "done": done,
        }
        record.update(extras)
        return record

    # -- weights ----------------------------------------------------------------
    def set_weights(self, weights: List[np.ndarray]) -> None:
        self.algorithm.set_weights(weights)

    # -- rollout loop -------------------------------------------------------------
    def run_fragment(self, fragment_steps: int) -> Tuple[Dict[str, Any], List[float]]:
        """Advance ``fragment_steps`` steps; returns (rollout, episode_returns).

        The rollout is a dict of stacked NumPy arrays keyed by record field;
        ``episode_returns`` lists the returns of episodes that *finished*
        inside this fragment.
        """
        if self._observation is None:
            self._observation = self.environment.reset()
        records: List[Dict[str, Any]] = []
        finished_returns: List[float] = []
        for _ in range(fragment_steps):
            action, extras = self.infer_action(self._observation)
            next_observation, reward, done, info = self.environment.step(action)
            record = self.handle_env_feedback(
                self._observation, action, reward, next_observation, done, info, extras
            )
            records.append(record)
            self._episode_return += reward
            self._episode_length += 1
            self.total_steps += 1
            if done:
                finished_returns.append(self._episode_return)
                self.completed_episodes += 1
                self._episode_return = 0.0
                self._episode_length = 0
                self._observation = self.environment.reset()
            else:
                self._observation = next_observation
        return self._stack(records), finished_returns

    @staticmethod
    def _stack(records: List[Dict[str, Any]]) -> Dict[str, Any]:
        if not records:
            return {}
        rollout: Dict[str, Any] = {}
        for key in records[0]:
            values = [record[key] for record in records]
            rollout[key] = np.asarray(values)
        return rollout
