"""Registries combining implementations via the configuration file (§4.2).

The configuration file names an environment, model, algorithm, and agent;
XingTian instantiates them in the rollout worker and trainer threads upon
initialization.  Registrations are process-global.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Type

from ..core.errors import RegistryError


class Registry:
    """Four namespaced name→class tables."""

    _KINDS = ("environment", "model", "algorithm", "agent")

    def __init__(self):
        self._tables: Dict[str, Dict[str, Any]] = {kind: {} for kind in self._KINDS}

    def register(self, kind: str, name: str, cls: Any, *, overwrite: bool = False) -> None:
        table = self._table(kind)
        if name in table and not overwrite:
            raise RegistryError(f"{kind} {name!r} is already registered")
        table[name] = cls

    def get(self, kind: str, name: str) -> Any:
        table = self._table(kind)
        try:
            return table[name]
        except KeyError:
            raise RegistryError(
                f"unknown {kind} {name!r}; registered: {sorted(table)}"
            ) from None

    def names(self, kind: str):
        return sorted(self._table(kind))

    def _table(self, kind: str) -> Dict[str, Any]:
        try:
            return self._tables[kind]
        except KeyError:
            raise RegistryError(
                f"unknown registry kind {kind!r}; kinds: {self._KINDS}"
            ) from None


registry = Registry()


def _make_decorator(kind: str) -> Callable[[str], Callable[[Type], Type]]:
    def decorator_factory(name: str, *, overwrite: bool = False):
        def decorator(cls: Type) -> Type:
            registry.register(kind, name, cls, overwrite=overwrite)
            return cls

        return decorator

    return decorator_factory


register_environment = _make_decorator("environment")
register_model = _make_decorator("model")
register_algorithm = _make_decorator("algorithm")
register_agent = _make_decorator("agent")
