"""Row/series printers shaped like the paper's tables and figures."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width text table."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def format_series(
    series: Sequence[Tuple[float, float]],
    *,
    name: str = "",
    x_label: str = "t",
    y_label: str = "y",
    max_points: int = 20,
) -> str:
    """Print a (x, y) series the way a figure panel would show it."""
    if not series:
        return f"{name}: (empty series)"
    step = max(1, len(series) // max_points)
    sampled = list(series)[::step]
    lines = [f"{name}  [{x_label} -> {y_label}]"]
    for x, y in sampled:
        lines.append(f"  {x:>10.2f}  {y:.4g}")
    return "\n".join(lines)


def ratio(a: float, b: float) -> float:
    """a/b guarded against zero denominators."""
    return a / b if b else float("inf")


def improvement_pct(new: float, old: float) -> float:
    """Percentage improvement of ``new`` over ``old`` (the paper's metric)."""
    if old == 0:
        return float("inf")
    return (new - old) / old * 100.0


def summarize_comparison(
    label: str,
    xingtian_value: float,
    baseline_value: float,
    *,
    unit: str = "",
    baseline_name: str = "RLLib-like",
) -> str:
    pct = improvement_pct(xingtian_value, baseline_value)
    return (
        f"{label}: XingTian {xingtian_value:.4g}{unit} vs {baseline_name} "
        f"{baseline_value:.4g}{unit}  ({pct:+.1f}%)"
    )


def cdf_fraction_below(
    cdf: Sequence[Tuple[float, float]], threshold: float
) -> Optional[float]:
    """Fraction of mass at or below ``threshold`` from a CDF point list."""
    fraction = None
    for value, cumulative in cdf:
        if value <= threshold:
            fraction = cumulative
        else:
            break
    return fraction
