"""Training-experiment harness: XingTian vs the RLLib-like baseline.

Both sides train the *same* Algorithm/Agent/Model/Environment classes with
the same hyperparameters and the same cost constants; only the framework —
push channel vs centralized pull loop — differs.  This is the engine behind
Figs. 6-11.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from .. import algorithms as _algorithms  # noqa: F401 - populate registry
from .. import envs as _envs  # noqa: F401 - populate registry
from ..api.registry import registry
from ..baselines.raylike import RaylikeTrainer, RaylikeWorker, ReplayActor
from ..baselines.rpc import RpcChannel
from ..core.config import MachineSpec, StopCondition, TelemetrySpec, XingTianConfig
from ..runtime import XingTianSession

DEFAULT_COPY_BANDWIDTH = 200e6  # bytes/s; makes transfer comparable to train
DEFAULT_NIC_BANDWIDTH = 118.04e6


@dataclass
class TrainingResult:
    """One framework's side of a training experiment."""

    framework: str
    algorithm: str
    environment: str
    num_explorers: int
    elapsed_s: float
    trained_steps: int
    train_sessions: int
    average_return: Optional[float]
    #: learner-consumed rollout steps per second (the paper's throughput)
    throughput_steps_per_s: float
    throughput_series: List[Tuple[float, float]] = field(default_factory=list)
    #: rollout transmission / sample+transmission latency (Figs. 8-10b)
    mean_transfer_s: float = 0.0
    #: learner blocked-on-data time ("XingTian Actual Wait")
    mean_wait_s: float = 0.0
    wait_cdf: List[Tuple[float, float]] = field(default_factory=list)
    mean_train_s: float = 0.0
    returns: List[float] = field(default_factory=list)
    #: ``repro.obs`` JSON snapshot when the run enabled telemetry
    metrics: Dict[str, Any] = field(default_factory=dict)

    def best_window_return(self, window: int = 100) -> Optional[float]:
        """Best moving-average return over ``window`` episodes.

        Robust to late-run collapse (value-based methods at small scale can
        overtrain past their peak); the paper's long runs report the final
        average, which at testbed scale coincides with the peak.
        """
        if not self.returns:
            return None
        if len(self.returns) <= window:
            return float(np.mean(self.returns))
        series = np.asarray(self.returns, dtype=np.float64)
        cumulative = np.concatenate([[0.0], np.cumsum(series)])
        sums = cumulative[window:] - cumulative[:-window]
        return float(sums.max() / window)


# ---------------------------------------------------------------------------
# XingTian side
# ---------------------------------------------------------------------------
def run_training_xingtian(
    algorithm: str,
    environment: str,
    *,
    explorers: int = 4,
    machines: Optional[List[int]] = None,
    fragment_steps: int = 200,
    env_config: Optional[Dict[str, Any]] = None,
    algorithm_config: Optional[Dict[str, Any]] = None,
    agent_config: Optional[Dict[str, Any]] = None,
    model: Optional[str] = None,
    model_config: Optional[Dict[str, Any]] = None,
    max_seconds: float = 10.0,
    max_trained_steps: Optional[int] = None,
    copy_bandwidth: Optional[float] = DEFAULT_COPY_BANDWIDTH,
    nic_bandwidth: float = DEFAULT_NIC_BANDWIDTH,
    seed: int = 0,
    telemetry: Optional[TelemetrySpec] = None,
) -> TrainingResult:
    """One training run under XingTian; returns the figure quantities."""
    machine_specs = _machine_specs(explorers, machines)
    config = XingTianConfig(
        algorithm=algorithm,
        environment=environment,
        model=model or _default_model(algorithm),
        env_config=dict(env_config or {}),
        model_config=dict(model_config or {}),
        algorithm_config=dict(algorithm_config or {}),
        agent_config=dict(agent_config or {}),
        machines=machine_specs,
        fragment_steps=fragment_steps,
        copy_bandwidth=copy_bandwidth,
        nic_bandwidth=nic_bandwidth,
        stop=StopCondition(
            total_trained_steps=max_trained_steps, max_seconds=max_seconds
        ),
        seed=seed,
        telemetry=telemetry,
    )
    config.validate()
    result = XingTianSession(config).run()
    return TrainingResult(
        framework="xingtian",
        algorithm=algorithm,
        environment=environment,
        num_explorers=explorers,
        elapsed_s=result.elapsed_s,
        trained_steps=result.total_trained_steps,
        train_sessions=result.train_sessions,
        average_return=result.average_return,
        throughput_steps_per_s=result.throughput_steps_per_s,
        throughput_series=result.throughput_series,
        mean_transfer_s=result.extra.get("mean_transfer_s", 0.0),
        mean_wait_s=result.mean_wait_s,
        wait_cdf=result.wait_cdf,
        mean_train_s=result.mean_train_s,
        returns=result.returns,
        metrics=result.metrics,
    )


# ---------------------------------------------------------------------------
# RLLib-like side
# ---------------------------------------------------------------------------
def run_training_raylike(
    algorithm: str,
    environment: str,
    *,
    explorers: int = 4,
    machines: Optional[List[int]] = None,
    fragment_steps: int = 200,
    env_config: Optional[Dict[str, Any]] = None,
    algorithm_config: Optional[Dict[str, Any]] = None,
    agent_config: Optional[Dict[str, Any]] = None,
    model: Optional[str] = None,
    model_config: Optional[Dict[str, Any]] = None,
    max_seconds: float = 10.0,
    max_trained_steps: Optional[int] = None,
    copy_bandwidth: Optional[float] = DEFAULT_COPY_BANDWIDTH,
    nic_bandwidth: float = DEFAULT_NIC_BANDWIDTH,
    seed: int = 0,
) -> TrainingResult:
    """The same run under the pull-model baseline."""
    machines = machines or [explorers]
    model_name = model or _default_model(algorithm)
    env_cls = registry.get("environment", environment)
    probe = env_cls(dict(env_config or {}))
    resolved_model_config = _resolve_model_config(model_config, probe, seed)
    probe.close()

    algorithm_cls = registry.get("algorithm", algorithm)
    model_cls = registry.get("model", model_name)
    agent_cls = registry.get("agent", algorithm)
    resolved_algorithm_config = dict(algorithm_config or {})
    resolved_algorithm_config.setdefault("num_explorers", explorers)
    resolved_algorithm_config.setdefault("seed", seed)

    def agent_factory_for(worker_seed: int) -> Callable:
        def factory():
            env_conf = dict(env_config or {})
            env_conf["seed"] = worker_seed
            worker_algorithm_config = dict(resolved_algorithm_config)
            worker_algorithm_config["buffer_size"] = 1
            worker_algorithm_config["learn_start"] = 1
            worker_algorithm = algorithm_cls(
                model_cls(dict(resolved_model_config)), worker_algorithm_config
            )
            agent_conf = dict(agent_config or {})
            agent_conf.setdefault("seed", worker_seed)
            return agent_cls(worker_algorithm, env_cls(env_conf), agent_conf)

        return factory

    workers = []
    wire_lock = None
    worker_index = 0
    import threading

    wire_lock = threading.Lock()
    channels = []
    for machine_index, count in enumerate(machines):
        for _ in range(count):
            workers.append(
                RaylikeWorker(
                    f"worker-{worker_index}", agent_factory_for(seed + worker_index)
                )
            )
            channels.append(machine_index != 0)
            worker_index += 1

    trainer_algorithm = algorithm_cls(
        model_cls(dict(resolved_model_config)), resolved_algorithm_config
    )
    mode = _mode_for(trainer_algorithm)
    # A single channel models the driver; the wire charge applies to the
    # fraction of workers that live on remote machines.
    remote_fraction = sum(channels) / max(len(channels), 1)
    channel = RpcChannel(
        copy_bandwidth=copy_bandwidth,
        wire_bandwidth=nic_bandwidth if remote_fraction > 0 else None,
        wire_lock=wire_lock,
    )
    replay_actor = None
    if mode == "replay":
        replay_actor = ReplayActor(
            int(resolved_algorithm_config.get("buffer_size", 100_000)), seed=seed
        )
    trainer = RaylikeTrainer(
        trainer_algorithm,
        workers,
        mode=mode,
        fragment_steps=fragment_steps,
        channel=channel,
        replay_actor=replay_actor,
        batch_size=int(resolved_algorithm_config.get("batch_size", 32)),
        train_every=int(resolved_algorithm_config.get("train_every", 4)),
        learn_start=int(resolved_algorithm_config.get("learn_start", 1_000)),
    )
    started = time.monotonic()
    try:
        trainer.run(max_trained_steps=max_trained_steps, max_seconds=max_seconds)
    finally:
        elapsed = time.monotonic() - started
        trainer.stop()
    return TrainingResult(
        framework="raylike",
        algorithm=algorithm,
        environment=environment,
        num_explorers=explorers,
        elapsed_s=elapsed,
        trained_steps=int(trainer.consumed_meter.total),
        train_sessions=trainer.train_sessions,
        average_return=trainer.average_return(),
        throughput_steps_per_s=trainer.consumed_meter.total / max(elapsed, 1e-9),
        throughput_series=trainer.consumed_meter.series(bucket=1.0),
        mean_transfer_s=trainer.transfer_recorder.mean(),
        mean_wait_s=trainer.transfer_recorder.mean(),
        wait_cdf=trainer.transfer_recorder.cdf(),
        mean_train_s=trainer.train_recorder.mean(),
        returns=list(trainer.episode_returns),
    )


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------
def _default_model(algorithm: str) -> str:
    return {
        "dqn": "qnet",
        "ppo": "actor_critic",
        "impala": "actor_critic",
        "ddpg": "ddpg",
    }.get(algorithm, "actor_critic")


def _mode_for(algorithm_obj) -> str:
    if hasattr(algorithm_obj, "replay"):
        return "replay"
    return "sync" if algorithm_obj.on_policy else "async"


def _machine_specs(explorers: int, machines: Optional[List[int]]) -> List[MachineSpec]:
    if machines is None:
        machines = [explorers]
    if sum(machines) != explorers:
        raise ValueError("machines must sum to explorers")
    specs = []
    for index, count in enumerate(machines):
        specs.append(
            MachineSpec(f"machine-{index}", explorers=count, has_learner=index == 0)
        )
    return specs


def _resolve_model_config(
    model_config: Optional[Dict[str, Any]], probe_env, seed: int
) -> Dict[str, Any]:
    resolved = dict(model_config or {})
    obs_space = probe_env.observation_space
    action_space = probe_env.action_space
    resolved.setdefault("obs_dim", int(np.prod(obs_space.shape)) or 1)
    if hasattr(action_space, "n"):
        resolved.setdefault("num_actions", int(action_space.n))
    else:
        resolved.setdefault("action_dim", int(np.prod(action_space.shape)))
        resolved.setdefault("action_bound", float(np.max(np.abs(action_space.high))))
    resolved.setdefault("seed", seed)
    return resolved
