"""The paper's dummy DRL algorithm (§5.1), on all three frameworks.

Explorers only send a fixed number of fixed-size messages; the learner
receives them asynchronously in rounds (one message per explorer per round)
and reports end-to-end latency and data-transmission throughput.  The
learner broadcasts nothing back — the paper measures the explorer→learner
direction that bounds DRL throughput.

All frameworks are charged the *same* cost constants (copy bandwidth for
serialize/deserialize, NIC bandwidth for cross-machine wire time); only the
communication structure differs:

* XingTian — sender-push through brokers: copies and wire time happen on
  channel threads, overlapping each other and the learner's consumption;
* RLLib-like — the learner pulls each message; every copy and wire charge
  lands serially on the learner's own thread;
* Launchpad/Reverb-like — every message crosses a central buffer server
  that processes requests one at a time.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..baselines.bufferframework import BufferServer
from ..baselines.rpc import RpcChannel
from ..core.broker import Broker
from ..core.concurrency import spawn_thread
from ..core.compression import CompressionPolicy, disabled_policy
from ..core.endpoint import ProcessEndpoint
from ..core.message import MsgType, make_message
from ..core.object_store import InMemoryObjectStore
from ..core.serialization import serialization_copies_total
from ..transport.fabric import Fabric
from ..transport.tcp import SocketFabric

LEARNER = "learner"

# Default cost constants shared by every framework in a comparison run.
DEFAULT_COPY_BANDWIDTH = 1e9  # bytes/s — serialize/deserialize memcpy
DEFAULT_NIC_BANDWIDTH = 118.04e6  # bytes/s — the paper's measured 1GbE
DEFAULT_RPC_LATENCY = 0.0005  # per pull call
DEFAULT_BUFFER_BANDWIDTH = 8e6  # Reverb-like server processing rate
DEFAULT_BUFFER_OVERHEAD = 0.001  # per buffer op


@dataclass
class TransmissionResult:
    """One data point of Figs. 4/5."""

    framework: str
    num_explorers: int
    message_bytes: int
    messages_total: int
    elapsed_s: float
    rounds: int
    round_latencies: List[float] = field(default_factory=list)
    #: per-link socket counters when the run used ``transport="wire"``
    wire_stats: Optional[dict] = None
    #: contiguous-buffer materializations incurred during the run (the
    #: zero-copy acceptance metric; stays 0 on the sendmsg path)
    serialization_copies: int = 0

    @property
    def total_bytes(self) -> int:
        return self.message_bytes * self.messages_total

    @property
    def throughput_mb_s(self) -> float:
        return self.total_bytes / max(self.elapsed_s, 1e-9) / 1e6

    @property
    def end_to_end_latency_s(self) -> float:
        return self.elapsed_s


def _payload(message_bytes: int, seed: int = 0) -> np.ndarray:
    """Random bytes: incompressible, like serialized rollouts usually are."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=max(1, message_bytes), dtype=np.uint8)


# ---------------------------------------------------------------------------
# XingTian
# ---------------------------------------------------------------------------
def run_dummy_xingtian(
    num_explorers: int,
    message_bytes: int,
    *,
    messages_per_explorer: int = 20,
    machines: Optional[Sequence[int]] = None,
    copy_bandwidth: Optional[float] = DEFAULT_COPY_BANDWIDTH,
    nic_bandwidth: float = DEFAULT_NIC_BANDWIDTH,
    nic_latency: float = 0.0002,
    compression: Optional[CompressionPolicy] = None,
    timeout_s: float = 300.0,
    transport: str = "sim",
) -> TransmissionResult:
    """Dummy algorithm on XingTian.

    ``machines`` lists explorer counts per machine; the learner lives on
    machine 0 (which may host 0 explorers — the "16 remote explorers"
    configuration of Fig. 5).  ``None`` means everything on one machine.

    ``transport="sim"`` models the NIC (``nic_bandwidth``/``nic_latency``
    on in-proc throttled links); ``transport="wire"`` sends cross-machine
    traffic through real loopback TCP sockets instead — the throughput is
    then *measured*, not modelled, and the result carries the per-link
    socket counters and the copy count of the run.
    """
    if machines is None:
        machines = [num_explorers]
    if sum(machines) != num_explorers:
        raise ValueError("machines must sum to num_explorers")
    if transport not in ("sim", "wire"):
        raise ValueError(f"transport must be 'sim' or 'wire', got {transport!r}")
    compression = compression or disabled_policy()

    wire = transport == "wire"
    fabric: Fabric = SocketFabric("dummy-data") if wire else Fabric("dummy-data")
    brokers: List[Broker] = []
    for index in range(len(machines)):
        store = InMemoryObjectStore(
            copy_on_fetch=False, compression=compression, copy_bandwidth=copy_bandwidth
        )
        brokers.append(Broker(f"m{index}.broker", store=store, fabric=fabric))
    if wire and len(brokers) > 1:
        # The learner's broker listens on an ephemeral loopback port; every
        # remote broker's traffic to it crosses a real socket.
        fabric.listen(brokers[0].name)  # type: ignore[union-attr]
    for index in range(1, len(brokers)):
        if wire:
            fabric.connect_bidirectional(brokers[index].name, brokers[0].name)
        else:
            fabric.connect_bidirectional(
                brokers[index].name,
                brokers[0].name,
                bandwidth=nic_bandwidth,
                latency=nic_latency,
            )

    learner_endpoint = ProcessEndpoint(LEARNER, brokers[0])
    explorer_endpoints: List[ProcessEndpoint] = []
    explorer_index = 0
    for machine_index, count in enumerate(machines):
        for _ in range(count):
            name = f"m{machine_index}.explorer-{explorer_index}"
            explorer_endpoints.append(ProcessEndpoint(name, brokers[machine_index]))
            if machine_index != 0:
                brokers[machine_index].add_remote_route(LEARNER, brokers[0].name)
            explorer_index += 1

    total_messages = num_explorers * messages_per_explorer
    round_latencies: List[float] = []
    done = threading.Event()

    def learner_loop() -> None:
        received = 0
        round_start = time.monotonic()
        while received < total_messages:
            message = learner_endpoint.receive(timeout=1.0)
            if message is None:
                if done.is_set():
                    return
                continue
            received += 1
            # A round is over after one message per explorer (the paper's
            # learner does not care which explorers they came from).
            if received % num_explorers == 0:
                now = time.monotonic()
                round_latencies.append(now - round_start)
                round_start = now
        done.set()

    def explorer_loop(endpoint: ProcessEndpoint, seed: int) -> None:
        body = _payload(message_bytes, seed)
        for _ in range(messages_per_explorer):
            endpoint.send(
                make_message(
                    endpoint.name, [LEARNER], MsgType.DATA, body, body_size=body.nbytes
                )
            )

    for broker in brokers:
        broker.start()
    learner_endpoint.start()
    for endpoint in explorer_endpoints:
        endpoint.start()

    copies_before = serialization_copies_total()
    started = time.monotonic()
    learner_thread = spawn_thread("bench-learner", learner_loop)
    explorer_threads = [
        spawn_thread(f"bench-explorer-{seed}", explorer_loop, args=(endpoint, seed))
        for seed, endpoint in enumerate(explorer_endpoints)
    ]

    finished = done.wait(timeout=timeout_s)
    elapsed = time.monotonic() - started
    copies_during = serialization_copies_total() - copies_before
    wire_stats = fabric.link_stats() if wire else None  # type: ignore[union-attr]
    done.set()
    learner_thread.join(timeout=5.0)
    for endpoint in explorer_endpoints:
        endpoint.stop()
    learner_endpoint.stop()
    for broker in brokers:
        broker.stop()
    fabric.close()
    if not finished:
        raise TimeoutError(
            f"xingtian dummy run did not finish within {timeout_s}s "
            f"({num_explorers} explorers x {message_bytes} bytes)"
        )
    return TransmissionResult(
        framework="xingtian",
        num_explorers=num_explorers,
        message_bytes=message_bytes,
        messages_total=total_messages,
        elapsed_s=elapsed,
        rounds=messages_per_explorer,
        round_latencies=round_latencies,
        wire_stats=wire_stats,
        serialization_copies=copies_during,
    )


# ---------------------------------------------------------------------------
# RLLib-like (pull)
# ---------------------------------------------------------------------------
def run_dummy_raylike(
    num_explorers: int,
    message_bytes: int,
    *,
    messages_per_explorer: int = 20,
    machines: Optional[Sequence[int]] = None,
    copy_bandwidth: Optional[float] = DEFAULT_COPY_BANDWIDTH,
    nic_bandwidth: float = DEFAULT_NIC_BANDWIDTH,
    rpc_latency: float = DEFAULT_RPC_LATENCY,
) -> TransmissionResult:
    """Dummy algorithm on the pull model (RLLib's low-level streaming API).

    Workers have their payload ready instantly; the learner still must ask.
    Every fetch charges copy + (cross-machine) wire + copy on the learner's
    thread, one message after another.
    """
    if machines is None:
        machines = [num_explorers]
    if sum(machines) != num_explorers:
        raise ValueError("machines must sum to num_explorers")

    # One shared NIC per remote machine pair (machine 0 hosts the learner).
    wire_lock = threading.Lock()
    channels: List[RpcChannel] = []
    explorer_machine: List[int] = []
    for machine_index, count in enumerate(machines):
        for _ in range(count):
            cross_machine = machine_index != 0
            channels.append(
                RpcChannel(
                    call_latency=rpc_latency,
                    copy_bandwidth=copy_bandwidth,
                    wire_bandwidth=nic_bandwidth if cross_machine else None,
                    wire_lock=wire_lock,
                )
            )
            explorer_machine.append(machine_index)

    payloads = [_payload(message_bytes, seed) for seed in range(num_explorers)]
    round_latencies: List[float] = []
    started = time.monotonic()
    round_start = started
    for _ in range(messages_per_explorer):
        for explorer, channel in enumerate(channels):
            if channel.call_latency > 0:
                time.sleep(channel.call_latency)
            channel.transfer(payloads[explorer])
        now = time.monotonic()
        round_latencies.append(now - round_start)
        round_start = now
    elapsed = time.monotonic() - started
    return TransmissionResult(
        framework="raylike",
        num_explorers=num_explorers,
        message_bytes=message_bytes,
        messages_total=num_explorers * messages_per_explorer,
        elapsed_s=elapsed,
        rounds=messages_per_explorer,
        round_latencies=round_latencies,
    )


# ---------------------------------------------------------------------------
# Launchpad/Reverb-like (central buffer)
# ---------------------------------------------------------------------------
def run_dummy_buffer(
    num_explorers: int,
    message_bytes: int,
    *,
    messages_per_explorer: int = 20,
    processing_bandwidth: float = DEFAULT_BUFFER_BANDWIDTH,
    item_overhead: float = DEFAULT_BUFFER_OVERHEAD,
    timeout_s: float = 300.0,
) -> TransmissionResult:
    """Dummy algorithm through a Reverb-like buffer.

    Explorers insert in parallel, but the buffer server processes one
    request at a time — adding explorers does not add throughput, exactly
    the plateau Fig. 4 shows for Launchpad+Reverb.
    """
    server = BufferServer(
        processing_bandwidth=processing_bandwidth, item_overhead=item_overhead
    )
    total_messages = num_explorers * messages_per_explorer
    round_latencies: List[float] = []

    def explorer_loop(seed: int) -> None:
        body = _payload(message_bytes, seed)
        for _ in range(messages_per_explorer):
            server.insert(body, timeout=timeout_s)

    started = time.monotonic()
    threads = [
        spawn_thread(f"bench-buffer-explorer-{seed}", explorer_loop, args=(seed,))
        for seed in range(num_explorers)
    ]
    round_start = started
    received = 0
    try:
        while received < total_messages:
            server.sample(timeout=timeout_s)
            received += 1
            if received % num_explorers == 0:
                now = time.monotonic()
                round_latencies.append(now - round_start)
                round_start = now
    finally:
        elapsed = time.monotonic() - started
        for thread in threads:
            thread.join(timeout=5.0)
        server.stop()
    return TransmissionResult(
        framework="launchpad_reverb",
        num_explorers=num_explorers,
        message_bytes=message_bytes,
        messages_total=total_messages,
        elapsed_s=elapsed,
        rounds=messages_per_explorer,
        round_latencies=round_latencies,
    )


_RUNNERS = {
    "xingtian": run_dummy_xingtian,
    "raylike": run_dummy_raylike,
    "launchpad_reverb": run_dummy_buffer,
}


def run_transmission(framework: str, num_explorers: int, message_bytes: int, **kwargs):
    """Dispatch to one of the three dummy-algorithm implementations."""
    try:
        runner = _RUNNERS[framework]
    except KeyError:
        raise KeyError(
            f"unknown framework {framework!r}; known: {sorted(_RUNNERS)}"
        ) from None
    return runner(num_explorers, message_bytes, **kwargs)
