"""Workload definitions shared by the benchmark files.

The paper's experiments run at testbed scale (10M Atari steps, 64MB
messages, hours of wall time).  These workloads keep the *shape* — the same
sweeps, ratios, and bottleneck structure — at laptop scale; EXPERIMENTS.md
records the mapping.
"""

from __future__ import annotations

from typing import Any, Dict, List

# Message-size sweep (Fig. 4/5).  The paper sweeps 1KB..64MB; we sweep a
# scaled subset whose largest point still exercises the NIC/copy bottleneck.
FULL_MESSAGE_SIZES_KB = [1, 4, 16, 64, 256, 1024, 2048, 4096, 8192, 16384, 32768, 65536]
BENCH_MESSAGE_SIZES_KB = [1, 16, 256, 1024]

ATARI_GAMES = ["BeamRider", "Breakout", "Qbert", "SpaceInvaders"]


def message_size_sweep(scaled: bool = True) -> List[int]:
    """Message sizes in bytes for the transmission sweeps."""
    sizes_kb = BENCH_MESSAGE_SIZES_KB if scaled else FULL_MESSAGE_SIZES_KB
    return [kb * 1024 for kb in sizes_kb]


def cartpole_workload(**overrides: Any) -> Dict[str, Any]:
    """CartPole training workload (the paper's gym environment)."""
    workload = {
        "environment": "CartPole",
        "env_config": {},
        "fragment_steps": 200,  # paper: 200-step messages on CartPole
        "obs_note": "4-float observations",
    }
    workload.update(overrides)
    return workload


def atari_workload(game: str = "BeamRider", **overrides: Any) -> Dict[str, Any]:
    """Synthetic-Atari training workload.

    The paper uses 500-step fragments on Atari.  ``obs_shape`` and
    ``step_compute_s`` control the communication/computation ratio: (84, 84)
    frames at 500 steps/fragment give multi-MB rollout messages like the
    paper's Table 1 sizes.
    """
    workload = {
        "environment": game,
        "env_config": {"obs_shape": (84, 84), "step_compute_s": 0.0002},
        "fragment_steps": 500,
        "obs_note": "84x84 uint8 frames",
    }
    workload.update(overrides)
    return workload
