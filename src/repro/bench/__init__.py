"""Experiment harness regenerating the paper's tables and figures.

See DESIGN.md §4 for the experiment index.  ``dummy_algorithm`` implements
the paper's dummy DRL algorithm (§5.1) on XingTian, the RLLib-like pull
framework, and the Launchpad/Reverb-like buffer framework; ``harness`` runs
full training experiments on XingTian vs the RLLib model; ``reporting``
prints rows/series shaped like the paper's figures.
"""

from .dummy_algorithm import (
    TransmissionResult,
    run_dummy_buffer,
    run_dummy_raylike,
    run_dummy_xingtian,
    run_transmission,
)
from .harness import TrainingResult, run_training_raylike, run_training_xingtian
from .workloads import atari_workload, cartpole_workload, message_size_sweep
from . import reporting

__all__ = [
    "TransmissionResult",
    "run_transmission",
    "run_dummy_xingtian",
    "run_dummy_raylike",
    "run_dummy_buffer",
    "TrainingResult",
    "run_training_xingtian",
    "run_training_raylike",
    "atari_workload",
    "cartpole_workload",
    "message_size_sweep",
    "reporting",
]
