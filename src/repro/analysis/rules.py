"""Framework-specific AST lint rules.

Four rules, tuned to this codebase's concurrency idioms (every rule has a
triggering fixture and a near-miss fixture under ``tests/analysis/fixtures``):

``lock-held-blocking-call`` (error)
    A blocking call — ``sleep``, ``join``, ``recv``, ``accept``, ``select``,
    or a ``wait``/``get`` with no timeout — made inside a ``with <lock>:``
    block.  Blocking while holding a lock stalls every thread contending for
    it; with the sender/receiver/router threads all event-driven off queue
    gets, one held lock can freeze the whole comms stack.

``unguarded-shared-mutation`` (warning)
    In a threaded class (one that spawns threads, or one of the known
    framework classes: broker, router, supervisor, fabric, endpoints), a
    read-modify-write (``self.x += ...``) outside a lock, a container
    mutation (``self.d[k] = v``, ``self.items.append(...)``,
    ``.update``/``.pop``/…) outside a lock, or a plain ``self.x = ...`` to
    an attribute that *is* guarded by a lock elsewhere in the class
    (inconsistent guarding).

``raw-thread-creation`` (warning)
    ``threading.Thread(...)`` constructed anywhere but the supervision-aware
    factory :func:`repro.core.concurrency.spawn_thread`.  Raw threads bypass
    the spawn registry, so diagnostics and the supervision layer cannot see
    them.

``raw-socket-creation`` (warning)
    ``socket.socket(...)`` / ``socket.create_connection(...)`` constructed
    anywhere but :mod:`repro.transport.tcp`.  Sockets opened elsewhere
    bypass the wire protocol's framing, counters, and shutdown draining —
    their traffic is invisible to telemetry and their teardown races the
    fabric's.

``unrouted-msgtype`` (error)
    A ``make_message``/``make_header``/``Message`` call site whose literal
    ``MsgType.X`` has no handler anywhere in the analyzed tree (no ``==``,
    ``in``, dispatch-dict, or registration reference) and is not listed in
    :data:`repro.analysis.protocol.EXPLICITLY_UNROUTED` — the message would
    be delivered and silently dropped.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .configcheck import UNKNOWN_CONFIG_KEY, UNREGISTERED_NAME
from .findings import Finding, Severity
from .lifetime import (
    LANE_CONTRACT,
    RELEASE_WHILE_BORROWED,
    VIEW_ESCAPE,
    WRITE_THROUGH_READONLY_VIEW,
)
from .ownership import DOUBLE_RELEASE, REFCOUNT_LEAK, UNANNOTATED_HANDLE_ESCAPE
from .protocol import Protocol, Site
from .topology import BOUNDED_QUEUE_CYCLE, ORPHAN_DESTINATION

LOCK_HELD_BLOCKING_CALL = "lock-held-blocking-call"
UNGUARDED_SHARED_MUTATION = "unguarded-shared-mutation"
RAW_THREAD_CREATION = "raw-thread-creation"
RAW_SOCKET_CREATION = "raw-socket-creation"
UNROUTED_MSGTYPE = "unrouted-msgtype"
SYNTAX_ERROR = "syntax-error"


@dataclass(frozen=True)
class RuleInfo:
    name: str
    severity: Severity
    summary: str


RULES: Dict[str, RuleInfo] = {
    LOCK_HELD_BLOCKING_CALL: RuleInfo(
        LOCK_HELD_BLOCKING_CALL, Severity.ERROR,
        "blocking call made while holding a lock",
    ),
    UNGUARDED_SHARED_MUTATION: RuleInfo(
        UNGUARDED_SHARED_MUTATION, Severity.WARNING,
        "shared attribute mutated outside a lock in a threaded class",
    ),
    RAW_THREAD_CREATION: RuleInfo(
        RAW_THREAD_CREATION, Severity.WARNING,
        "raw threading.Thread bypasses the spawn_thread factory",
    ),
    RAW_SOCKET_CREATION: RuleInfo(
        RAW_SOCKET_CREATION, Severity.WARNING,
        "raw socket constructed outside the wire transport module",
    ),
    UNROUTED_MSGTYPE: RuleInfo(
        UNROUTED_MSGTYPE, Severity.ERROR,
        "MsgType sent but handled nowhere and not explicitly ignored",
    ),
    SYNTAX_ERROR: RuleInfo(
        SYNTAX_ERROR, Severity.ERROR,
        "file cannot be parsed, so no rule can inspect it",
    ),
    REFCOUNT_LEAK: RuleInfo(
        REFCOUNT_LEAK, Severity.ERROR,
        "object-store handle not released on every control-flow path",
    ),
    DOUBLE_RELEASE: RuleInfo(
        DOUBLE_RELEASE, Severity.ERROR,
        "single-share object-store handle released twice on one path",
    ),
    UNANNOTATED_HANDLE_ESCAPE: RuleInfo(
        UNANNOTATED_HANDLE_ESCAPE, Severity.WARNING,
        "handle escapes its function without @transfers_ownership",
    ),
    ORPHAN_DESTINATION: RuleInfo(
        ORPHAN_DESTINATION, Severity.ERROR,
        "MsgType sent to a role that never handles it",
    ),
    BOUNDED_QUEUE_CYCLE: RuleInfo(
        BOUNDED_QUEUE_CYCLE, Severity.WARNING,
        "send/recv cycle through a bounded queue (static deadlock risk)",
    ),
    UNKNOWN_CONFIG_KEY: RuleInfo(
        UNKNOWN_CONFIG_KEY, Severity.ERROR,
        "configuration key is not a known schema field",
    ),
    UNREGISTERED_NAME: RuleInfo(
        UNREGISTERED_NAME, Severity.ERROR,
        "environment/model/algorithm/agent name is not registered",
    ),
    VIEW_ESCAPE: RuleInfo(
        VIEW_ESCAPE, Severity.WARNING,
        "zero-copy view escapes its frame without @detaches_view",
    ),
    RELEASE_WHILE_BORROWED: RuleInfo(
        RELEASE_WHILE_BORROWED, Severity.ERROR,
        "block released while a derived zero-copy view is still live",
    ),
    WRITE_THROUGH_READONLY_VIEW: RuleInfo(
        WRITE_THROUGH_READONLY_VIEW, Severity.ERROR,
        "element/slice write through a read-only deserialize view",
    ),
    LANE_CONTRACT: RuleInfo(
        LANE_CONTRACT, Severity.ERROR,
        "LaneHeaderQueue call site violates its reclaim-ownership contract",
    ),
}

#: Attribute calls that always block.
_ALWAYS_BLOCKING = {"sleep", "join", "recv", "recv_bytes", "accept", "select"}
#: Attribute calls that block only when called without a timeout.
_BLOCKING_WITHOUT_TIMEOUT = {"wait", "get"}
#: Dotted-name suffixes that look blocking but are not (string/path joins).
_SAFE_CALL_SUFFIXES = ("path.join", "posixpath.join", "ntpath.join")

#: Framework classes whose methods run on more than one thread even though
#: the class body itself may not spawn the threads.
THREADED_CLASS_NAMES = {
    "Broker",
    "Router",
    "AlgorithmAgnosticRouter",
    "Supervisor",
    "Fabric",
    "ProcessEndpoint",
    "WorkhorseThread",
    "Controller",
    "CenterController",
    "ShareMemCommunicator",
    "HeaderQueue",
    "ThrottledLink",
    "LaneChannel",
    "LaneHeaderQueue",
    "FlowMessageBuffer",
    "WireCompressor",
    "FlowController",
    "SocketLink",
    "SocketListener",
    "SocketFabric",
    "_Connection",
}

#: Files allowed to construct threading.Thread directly.
_THREAD_FACTORY_PATH_SUFFIXES = ("core/concurrency.py",)

#: Files allowed to open raw sockets (the wire transport itself).
_SOCKET_FACTORY_PATH_SUFFIXES = ("transport/tcp.py",)

#: ``socket`` module constructors that yield a live socket.
_SOCKET_CONSTRUCTORS = {
    "socket", "create_connection", "create_server", "socketpair",
}

#: Method names that mutate a container in place (``self.items.append(x)``).
_MUTATING_METHODS = {
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popleft", "appendleft", "remove", "discard",
}


def _dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for nested attribute access; ``''`` when not a name chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif parts:
        parts.append("<expr>")
    return ".".join(reversed(parts))


def _is_lock_expr(node: ast.AST) -> bool:
    """True when a ``with`` context expression looks like a lock.

    Matches any name chain whose final component mentions ``lock`` or
    ``mutex`` (``self._lock``, ``self._counters_lock``, ``wire_lock`` …).
    """
    name = _dotted_name(node)
    leaf = name.rsplit(".", 1)[-1].lower()
    return "lock" in leaf or "mutex" in leaf


def _is_thread_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr == "Thread" and _dotted_name(func.value).endswith("threading")
    return isinstance(func, ast.Name) and func.id == "Thread"


def _is_socket_call(node: ast.Call) -> bool:
    """``socket.socket(...)`` / ``socket.create_connection(...)`` & co.

    Only the dotted ``socket.<ctor>`` forms are matched: a bare name like
    ``socket(...)`` is far more often a local factory or a type annotation
    call than the stdlib constructor, and the dotted form is the idiom this
    codebase uses everywhere.
    """
    func = node.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr in _SOCKET_CONSTRUCTORS
        and _dotted_name(func.value).endswith("socket")
    )


class _FileVisitor(ast.NodeVisitor):
    """Single pass computing lock regions, scopes, and per-class mutations."""

    def __init__(self, path: str):
        self.path = path
        self.findings: List[Finding] = []
        self.scope_stack: List[str] = []
        self.lock_depth = 0
        #: per-class mutation records: (attr, under_lock, is_augassign, node)
        self.class_stack: List[_ClassRecord] = []

    # -- scope handling -----------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        record = _ClassRecord(node)
        self.class_stack.append(record)
        self.scope_stack.append(node.name)
        saved_depth, self.lock_depth = self.lock_depth, 0
        self.generic_visit(node)
        self.lock_depth = saved_depth
        self.scope_stack.pop()
        self.class_stack.pop()
        self._report_class(record)

    def _visit_function(self, node: ast.AST) -> None:
        self.scope_stack.append(getattr(node, "name", "<lambda>"))
        if self.class_stack and len(self.scope_stack) >= 1:
            self.class_stack[-1].current_method.append(getattr(node, "name", ""))
        # A function body does not execute under the lock active at its
        # *definition* site, so the lock depth resets inside it.
        saved_depth, self.lock_depth = self.lock_depth, 0
        self.generic_visit(node)
        self.lock_depth = saved_depth
        if self.class_stack:
            self.class_stack[-1].current_method.pop()
        self.scope_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        saved_depth, self.lock_depth = self.lock_depth, 0
        self.generic_visit(node)
        self.lock_depth = saved_depth

    def scope(self) -> str:
        return ".".join(self.scope_stack)

    # -- lock regions ---------------------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        holds_lock = any(_is_lock_expr(item.context_expr) for item in node.items)
        for item in node.items:
            self.visit(item.context_expr)
        if holds_lock:
            self.lock_depth += 1
        for statement in node.body:
            self.visit(statement)
        if holds_lock:
            self.lock_depth -= 1

    # -- calls: blocking-under-lock and raw threads ---------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if _is_thread_call(node) and not self.path.endswith(
            _THREAD_FACTORY_PATH_SUFFIXES
        ):
            self.findings.append(
                Finding(
                    self.path,
                    node.lineno,
                    RULES[RAW_THREAD_CREATION].severity,
                    RAW_THREAD_CREATION,
                    "threading.Thread() constructed directly; use "
                    "repro.core.concurrency.spawn_thread so the thread is "
                    "registered for supervision/diagnostics",
                    self.scope(),
                )
            )
        if _is_socket_call(node) and not self.path.endswith(
            _SOCKET_FACTORY_PATH_SUFFIXES
        ):
            self.findings.append(
                Finding(
                    self.path,
                    node.lineno,
                    RULES[RAW_SOCKET_CREATION].severity,
                    RAW_SOCKET_CREATION,
                    "raw socket constructed directly; open connections "
                    "through repro.transport.tcp (SocketFabric/SocketLink) "
                    "so traffic is framed, counted, and drained on shutdown",
                    self.scope(),
                )
            )
        if self.lock_depth > 0:
            blocking = self._blocking_reason(node)
            if blocking:
                self.findings.append(
                    Finding(
                        self.path,
                        node.lineno,
                        RULES[LOCK_HELD_BLOCKING_CALL].severity,
                        LOCK_HELD_BLOCKING_CALL,
                        f"{blocking} called while holding a lock",
                        self.scope(),
                    )
                )
        if self.class_stack:
            self.class_stack[-1].observe_call(node)
            self._observe_container_call(node)
        self.generic_visit(node)

    def _observe_container_call(self, node: ast.Call) -> None:
        """``self.items.append(x)`` & co — container mutation on an attribute."""
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in _MUTATING_METHODS):
            return
        target = func.value
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            self.class_stack[-1].mutations.append(
                _Mutation(
                    attr=target.attr,
                    line=node.lineno,
                    under_lock=self.lock_depth > 0,
                    augmented=False,
                    method=self.class_stack[-1].method_name(),
                    scope=self.scope(),
                    container=f".{func.attr}()",
                )
            )

    @staticmethod
    def _blocking_reason(node: ast.Call) -> Optional[str]:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "sleep":
            return "sleep()"
        if not isinstance(func, ast.Attribute):
            return None
        name = _dotted_name(func)
        if name.endswith(_SAFE_CALL_SUFFIXES):
            return None
        # str.join on a literal separator: ", ".join(parts)
        if func.attr == "join" and isinstance(func.value, ast.Constant):
            return None
        if func.attr in _ALWAYS_BLOCKING:
            return f"{func.attr}()"
        if func.attr in _BLOCKING_WITHOUT_TIMEOUT:
            has_timeout = any(kw.arg == "timeout" for kw in node.keywords)
            if not node.args and not has_timeout:
                return f"{func.attr}() with no timeout"
        return None

    # -- attribute mutations --------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        self._observe_mutation(node.targets, node, augmented=False)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._observe_mutation([node.target], node, augmented=True)
        self.generic_visit(node)

    def _observe_mutation(
        self, targets: List[ast.AST], node: ast.AST, *, augmented: bool
    ) -> None:
        if not self.class_stack:
            return
        record = self.class_stack[-1]
        for target in targets:
            attr = ""
            container = ""
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                attr = target.attr
            elif (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Attribute)
                and isinstance(target.value.value, ast.Name)
                and target.value.value.id == "self"
            ):
                # ``self.d[k] = v`` / ``self.d[k] += v`` — container write.
                attr = target.value.attr
                container = "[...]"
            if attr:
                record.mutations.append(
                    _Mutation(
                        attr=attr,
                        line=getattr(node, "lineno", 0),
                        under_lock=self.lock_depth > 0,
                        augmented=augmented,
                        method=record.method_name(),
                        scope=self.scope(),
                        container=container,
                    )
                )

    # -- class-level reporting ------------------------------------------------
    def _report_class(self, record: "_ClassRecord") -> None:
        if not record.is_threaded():
            return
        guarded_attrs = {
            mutation.attr for mutation in record.mutations if mutation.under_lock
        }
        for mutation in record.mutations:
            if mutation.under_lock or mutation.method in ("__init__", "__post_init__"):
                continue
            if mutation.augmented and not mutation.container:
                self.findings.append(
                    Finding(
                        self.path,
                        mutation.line,
                        RULES[UNGUARDED_SHARED_MUTATION].severity,
                        UNGUARDED_SHARED_MUTATION,
                        f"read-modify-write of self.{mutation.attr} outside a "
                        f"lock in threaded class {record.name}",
                        mutation.scope,
                    )
                )
            elif mutation.container:
                self.findings.append(
                    Finding(
                        self.path,
                        mutation.line,
                        RULES[UNGUARDED_SHARED_MUTATION].severity,
                        UNGUARDED_SHARED_MUTATION,
                        f"container mutation of self.{mutation.attr}"
                        f"{mutation.container} outside a lock in threaded "
                        f"class {record.name}",
                        mutation.scope,
                    )
                )
            elif mutation.attr in guarded_attrs:
                self.findings.append(
                    Finding(
                        self.path,
                        mutation.line,
                        RULES[UNGUARDED_SHARED_MUTATION].severity,
                        UNGUARDED_SHARED_MUTATION,
                        f"self.{mutation.attr} is lock-guarded elsewhere in "
                        f"{record.name} but assigned here without the lock",
                        mutation.scope,
                    )
                )


@dataclass
class _Mutation:
    attr: str
    line: int
    under_lock: bool
    augmented: bool
    method: str
    scope: str
    container: str = ""  #: ``"[...]"`` / ``".append()"`` when a container write


class _ClassRecord:
    def __init__(self, node: ast.ClassDef):
        self.name = node.name
        self.bases = {_dotted_name(base).rsplit(".", 1)[-1] for base in node.bases}
        self.mutations: List[_Mutation] = []
        self.current_method: List[str] = []
        self.spawns_threads = False

    def method_name(self) -> str:
        return self.current_method[-1] if self.current_method else ""

    def observe_call(self, node: ast.Call) -> None:
        func = node.func
        callee = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
        if _is_thread_call(node) or callee == "spawn_thread":
            self.spawns_threads = True

    def is_threaded(self) -> bool:
        return (
            self.spawns_threads
            or self.name in THREADED_CLASS_NAMES
            or bool(self.bases & THREADED_CLASS_NAMES)
        )


def run_file_rules(path: str, tree: ast.AST) -> List[Finding]:
    """Run every single-file rule over one parsed module."""
    visitor = _FileVisitor(path)
    visitor.visit(tree)
    return visitor.findings


def run_protocol_rule(
    protocol: Protocol, ignored: Optional[Set[str]] = None
) -> List[Finding]:
    """The project-wide ``unrouted-msgtype`` rule."""
    findings: List[Finding] = []
    for site in protocol.unrouted_sends(ignored or set()):
        findings.append(_unrouted_finding(site))
    return findings


def _unrouted_finding(site: Site) -> Finding:
    return Finding(
        site.path,
        site.line,
        RULES[UNROUTED_MSGTYPE].severity,
        UNROUTED_MSGTYPE,
        f"MsgType.{site.member} is sent here but no handler/route exists "
        "anywhere in the analyzed tree (add one, or list it in "
        "repro.analysis.protocol.EXPLICITLY_UNROUTED)",
        site.scope,
    )
