"""Per-function control-flow graphs and a call graph for dataflow passes.

The ownership pass (:mod:`repro.analysis.ownership`) needs to reason about
*paths*: a store handle acquired on one branch must be released on every way
out of the function, including early returns and exception edges.  This
module builds a statement-level CFG per function:

* every statement is a node; ``EXIT`` is a synthetic sink;
* edges carry a kind — ``"next"`` for normal flow, ``"return"`` for explicit
  returns and falling off the end, ``"exc"`` for potential exception flow
  (any statement containing a call may raise) and ``"raise"`` for explicit
  raises;
* ``try``/``except``/``finally``, loops with ``break``/``continue``, and
  ``with`` are supported; unhandled may-raise statements get an ``"exc"``
  edge straight to ``EXIT``, which is what makes exception-path leaks
  visible.

The module also extracts a whole-program call graph (caller qualname →
called leaf names), which the ownership pass uses to propagate
interprocedural summaries (helper functions that return fresh handles or
release a parameter) and the topology pass shares for send-site
attribution.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

#: Synthetic node id for the single function exit.
EXIT = -1

#: ``try`` statement types (``TryStar`` exists from Python 3.11 on).
_TRY_TYPES = tuple(
    t for t in (getattr(ast, "Try", None), getattr(ast, "TryStar", None)) if t
)


@dataclass
class CFG:
    """A statement-level control-flow graph for one function body."""

    entry: Optional[int] = None
    #: node id -> the AST statement it represents
    nodes: Dict[int, ast.stmt] = field(default_factory=dict)
    #: (src, dst, kind) with kind in {"next", "return", "exc", "raise"}
    edges: List[Tuple[int, int, str]] = field(default_factory=list)

    def successors(self, node_id: int) -> List[Tuple[int, str]]:
        return [(dst, kind) for src, dst, kind in self.edges if src == node_id]

    def predecessors(self, node_id: int) -> List[Tuple[int, str]]:
        return [(src, kind) for src, dst, kind in self.edges if dst == node_id]

    def exit_edges(self) -> List[Tuple[int, str]]:
        """``(node, kind)`` pairs for every edge into ``EXIT``."""
        return self.predecessors(EXIT)


def _contains_call(node: ast.AST) -> bool:
    """True when ``node`` contains a call outside nested function bodies."""
    if isinstance(node, ast.Call):
        return True
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        return False  # nested bodies execute later, not on this edge
    return any(_contains_call(child) for child in ast.iter_child_nodes(node))


def _may_raise(statement: ast.stmt) -> bool:
    """A statement containing any call may raise.

    Coarse on purpose: calls are where exceptions actually originate in this
    codebase (queue puts, serialization, store operations), while flagging
    every attribute access would drown the ownership pass in phantom edges.
    For compound statements only the *header* expression is consulted — the
    body gets its own nodes and edges.
    """
    if isinstance(statement, ast.If):
        return _contains_call(statement.test)
    if isinstance(statement, ast.While):
        return _contains_call(statement.test)
    if isinstance(statement, (ast.For, ast.AsyncFor)):
        return _contains_call(statement.iter)
    if isinstance(statement, (ast.With, ast.AsyncWith)):
        return any(_contains_call(item.context_expr) for item in statement.items)
    return _contains_call(statement)


class _Builder:
    """Builds the CFG for one function body via recursive descent.

    Each ``_stmts``/``_stmt`` call returns the set of *dangling* node ids —
    nodes whose normal-flow successor is whatever comes next.  ``break``,
    ``continue``, ``return`` and ``raise`` produce no dangling exits; their
    edges go to the loop exit, loop head, or ``EXIT`` directly.
    """

    def __init__(self) -> None:
        self.cfg = CFG()
        self._next_id = 0
        #: stack of (loop_head_id, break_collector) for continue/break
        self._loops: List[Tuple[int, List[int]]] = []
        #: stack of handler-entry id lists for statements inside try bodies
        self._handlers: List[List[int]] = []

    def _new_node(self, statement: ast.stmt) -> int:
        node_id = self._next_id
        self._next_id += 1
        self.cfg.nodes[node_id] = statement
        return node_id

    def _edge(self, src: int, dst: int, kind: str = "next") -> None:
        self.cfg.edges.append((src, dst, kind))

    def _exc_targets(self) -> List[int]:
        """Where control may land when the current statement raises."""
        if self._handlers:
            return list(self._handlers[-1])
        return [EXIT]

    def _wire_exceptions(self, node_id: int, statement: ast.stmt) -> None:
        if isinstance(statement, ast.Raise):
            for target in self._exc_targets():
                self._edge(node_id, target, "raise" if target == EXIT else "exc")
        elif _may_raise(statement):
            for target in self._exc_targets():
                self._edge(node_id, target, "exc")

    # -- statement dispatch -------------------------------------------------
    def build(self, body: List[ast.stmt]) -> CFG:
        entry_holder: List[int] = []
        dangling = self._stmts(body, entry_holder)
        self.cfg.entry = entry_holder[0] if entry_holder else None
        for node_id in dangling:
            self._edge(node_id, EXIT, "return")  # falling off the end
        return self.cfg

    def _stmts(self, body: List[ast.stmt], entry_out: List[int]) -> Set[int]:
        dangling: Set[int] = set()
        first = True
        for statement in body:
            stmt_entry: List[int] = []
            new_dangling = self._stmt(statement, stmt_entry)
            if stmt_entry:
                if first:
                    entry_out.extend(stmt_entry[:1])
                    first = False
                for node_id in dangling:
                    self._edge(node_id, stmt_entry[0])
                dangling = new_dangling
            # A statement producing no node (nested def) keeps prior exits.
        return dangling

    def _stmt(self, statement: ast.stmt, entry_out: List[int]) -> Set[int]:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # Nested definitions do not execute here; skip (no node).
            return set()
        if isinstance(statement, ast.If):
            return self._if(statement, entry_out)
        if isinstance(statement, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(statement, entry_out)
        if isinstance(statement, _TRY_TYPES):
            return self._try(statement, entry_out)
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            return self._with(statement, entry_out)

        node_id = self._new_node(statement)
        entry_out.append(node_id)
        self._wire_exceptions(node_id, statement)
        if isinstance(statement, ast.Return):
            self._edge(node_id, EXIT, "return")
            return set()
        if isinstance(statement, ast.Raise):
            return set()
        if isinstance(statement, ast.Break):
            if self._loops:
                self._loops[-1][1].append(node_id)
            return set()
        if isinstance(statement, ast.Continue):
            if self._loops:
                self._edge(node_id, self._loops[-1][0])
            return set()
        return {node_id}

    def _if(self, statement: ast.If, entry_out: List[int]) -> Set[int]:
        node_id = self._new_node(statement)
        entry_out.append(node_id)
        self._wire_exceptions(node_id, statement)
        dangling: Set[int] = set()
        body_entry: List[int] = []
        body_dangling = self._stmts(statement.body, body_entry)
        if body_entry:
            self._edge(node_id, body_entry[0])
            dangling |= body_dangling
        else:
            dangling.add(node_id)
        if statement.orelse:
            else_entry: List[int] = []
            else_dangling = self._stmts(statement.orelse, else_entry)
            if else_entry:
                self._edge(node_id, else_entry[0])
                dangling |= else_dangling
            else:
                dangling.add(node_id)
        else:
            dangling.add(node_id)  # condition false: fall through
        return dangling

    def _loop(self, statement: ast.stmt, entry_out: List[int]) -> Set[int]:
        node_id = self._new_node(statement)
        entry_out.append(node_id)
        self._wire_exceptions(node_id, statement)
        breaks: List[int] = []
        self._loops.append((node_id, breaks))
        body_entry: List[int] = []
        body = statement.body  # type: ignore[attr-defined]
        body_dangling = self._stmts(body, body_entry)
        if body_entry:
            self._edge(node_id, body_entry[0])
        for back in body_dangling:
            self._edge(back, node_id)
        self._loops.pop()
        orelse = getattr(statement, "orelse", [])
        dangling: Set[int] = set(breaks)
        if orelse:
            else_entry: List[int] = []
            else_dangling = self._stmts(orelse, else_entry)
            if else_entry:
                self._edge(node_id, else_entry[0])
                dangling |= else_dangling
            else:
                dangling.add(node_id)
        else:
            dangling.add(node_id)  # loop condition false / iterator exhausted
        return dangling

    def _try(self, statement: ast.Try, entry_out: List[int]) -> Set[int]:
        # The finally body is built first so exception edges raised anywhere
        # in the try region can target it: an uncaught exception runs the
        # finally before propagating, and that is exactly the path on which
        # a ``finally: store.release(h)`` balances the refcount.  (After the
        # finally, the exceptional and normal continuations are conflated —
        # the abstract state is identical on both.)
        final_entry: List[int] = []
        final_dangling: Set[int] = set()
        if statement.finalbody:
            final_dangling = self._stmts(statement.finalbody, final_entry)
        exc_via_finally = final_entry[:1]

        # Handler bodies: an exception inside a handler runs the finally (if
        # any) before propagating; otherwise it uses the enclosing targets.
        handler_entries: List[int] = []
        handler_dangling: Set[int] = set()
        if exc_via_finally:
            self._handlers.append(exc_via_finally)
        for handler in statement.handlers:
            entry: List[int] = []
            dangling = self._stmts(handler.body, entry)
            if entry:
                handler_entries.append(entry[0])
            handler_dangling |= dangling
        if exc_via_finally:
            self._handlers.pop()

        # Try-body exceptions may land in any handler, or (uncaught type /
        # no handlers) in the finally.
        body_targets = handler_entries + exc_via_finally
        self._handlers.append(body_targets or self._exc_targets())
        body_entry: List[int] = []
        body_dangling = self._stmts(statement.body, body_entry)
        self._handlers.pop()
        if body_entry:
            entry_out.extend(body_entry[:1])
        elif final_entry:
            entry_out.extend(final_entry[:1])

        dangling = set(body_dangling) | handler_dangling
        if statement.orelse:
            else_entry: List[int] = []
            else_dangling = self._stmts(statement.orelse, else_entry)
            if else_entry:
                for node_id in body_dangling:
                    self._edge(node_id, else_entry[0])
                dangling -= body_dangling
                dangling |= else_dangling

        if final_entry:
            for node_id in dangling:
                self._edge(node_id, final_entry[0])
            dangling = final_dangling
        return dangling

    def _with(self, statement: ast.stmt, entry_out: List[int]) -> Set[int]:
        node_id = self._new_node(statement)
        entry_out.append(node_id)
        self._wire_exceptions(node_id, statement)
        body_entry: List[int] = []
        body = statement.body  # type: ignore[attr-defined]
        body_dangling = self._stmts(body, body_entry)
        if body_entry:
            self._edge(node_id, body_entry[0])
            return body_dangling
        return {node_id}


def build_cfg(func: ast.AST) -> CFG:
    """Build the CFG for a function definition's body."""
    body = getattr(func, "body", [])
    return _Builder().build(list(body))


# -- function discovery & call graph ---------------------------------------


@dataclass(frozen=True)
class FunctionInfo:
    """One function definition found in the analyzed tree."""

    path: str
    qualname: str  #: dotted, e.g. ``ProcessEndpoint._sender_loop``
    name: str  #: leaf name
    node: ast.AST
    class_name: str = ""  #: enclosing class, "" at module level
    decorators: Tuple[str, ...] = ()


def _decorator_leaf(node: ast.AST) -> str:
    """Leaf name of a decorator expression (``a.b`` → ``b``; calls unwrapped)."""
    if isinstance(node, ast.Call):
        node = node.func
    while isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def iter_functions(
    sources: List[Tuple[str, ast.AST]]
) -> Iterator[FunctionInfo]:
    """Yield every function/method definition across the parsed sources."""
    for path, tree in sources:
        stack: List[Tuple[ast.AST, List[str], str]] = [(tree, [], "")]
        while stack:
            node, scope, class_name = stack.pop()
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = ".".join(scope + [child.name])
                    yield FunctionInfo(
                        path=path,
                        qualname=qual,
                        name=child.name,
                        node=child,
                        class_name=class_name,
                        decorators=tuple(
                            _decorator_leaf(dec) for dec in child.decorator_list
                        ),
                    )
                    stack.append((child, scope + [child.name], class_name))
                elif isinstance(child, ast.ClassDef):
                    stack.append((child, scope + [child.name], child.name))
                else:
                    stack.append((child, scope, class_name))


def called_names(func: ast.AST) -> Set[str]:
    """Leaf names of every call inside ``func`` (excluding nested defs)."""
    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            callee = node.func
            if isinstance(callee, ast.Attribute):
                names.add(callee.attr)
            elif isinstance(callee, ast.Name):
                names.add(callee.id)
    return names


def build_call_graph(
    sources: List[Tuple[str, ast.AST]]
) -> Dict[str, Set[str]]:
    """``caller qualname -> called leaf names`` for the whole tree.

    Leaf-name resolution is deliberately coarse (no type inference); the
    ownership pass merges summaries for same-named functions conservatively.
    """
    graph: Dict[str, Set[str]] = {}
    for info in iter_functions(sources):
        graph[f"{info.path}::{info.qualname}"] = called_names(info.node)
    return graph
