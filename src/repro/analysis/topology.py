"""Static communication-topology extraction and trace conformance.

Recovers the sender→receiver graph of the framework from the AST: every
``make_message``/``make_header``/``Message`` call with a literal ``MsgType``
contributes an edge *component —type→ destination role*, where the
component is the enclosing class (or module) mapped to a framework role
(explorer / learner / controller) and the destination role is inferred from
the destination expression (``[self.learner_name]`` → ``learner``,
``list(targets)`` → ``explorer``, anything unrecognizable → ``dynamic``).

The same pass recovers the *handled* side per role (``msg_type ==
MsgType.X`` comparisons and dispatch-dict keys inside each component) and
derives two findings:

``orphan-destination`` (error)
    An edge whose destination is a known framework role that never handles
    the sent type (and the type is not in
    :data:`~repro.analysis.protocol.EXPLICITLY_UNROUTED`) — the message
    would be delivered into a buffer nobody drains by type.

``bounded-queue-cycle`` (warning)
    The role graph contains a send/recv cycle *and* the analyzed tree
    constructs a bounded queue (``maxsize > 0``).  Two components that both
    block on full queues in a cycle can deadlock; unbounded queues (the
    framework default) cannot.

The extracted graph is emitted as a deterministic JSON artifact
(``docs/topology.json``) plus Graphviz DOT, and
:func:`conformance_violations` diffs edges observed at runtime by
:class:`repro.core.tracing.Tracer` against the static graph — the
trace-conformance mode of the test suite.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .findings import Finding, Severity
from .protocol import EXPLICITLY_UNROUTED, _msgtype_member

ORPHAN_DESTINATION = "orphan-destination"
BOUNDED_QUEUE_CYCLE = "bounded-queue-cycle"

#: Send-constructor call names (mirrors :mod:`repro.analysis.protocol`).
_SEND_CALLS = {"make_message", "make_header", "Message"}

#: Explicit class → role table for the framework's component classes.
ROLE_BY_CLASS: Dict[str, str] = {
    "ExplorerProcess": "explorer",
    "LearnerProcess": "learner",
    "CenterController": "controller",
    "Controller": "controller",
}

#: Roles the framework routes to; only these can be orphaned.
KNOWN_ROLES = ("explorer", "learner", "controller")

#: Queue-like constructors whose ``maxsize`` argument bounds them.
_QUEUE_CONSTRUCTORS = {"Queue", "MessageBuffer", "HeaderQueue", "SendBuffer", "ReceiveBuffer"}


def role_for_name(name: str) -> str:
    """Map a component/class/endpoint name to a framework role.

    Works for both static names (``ExplorerProcess``) and runtime endpoint
    names (``machine-0.explorer-1``, ``learner``, ``controller``).
    """
    if name in ROLE_BY_CLASS:
        return ROLE_BY_CLASS[name]
    lowered = name.lower()
    for role in KNOWN_ROLES:
        if role in lowered:
            return role
    if "center" in lowered:
        return "controller"
    if "target" in lowered:
        return "explorer"
    return "dynamic"


def _dst_role(expr: Optional[ast.AST]) -> str:
    """Infer the destination role from a destination-list expression."""
    if expr is None:
        return "dynamic"
    names: List[str] = []
    for node in ast.walk(expr):
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Attribute):
            names.append(node.attr)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            names.append(node.value)
    for name in names:
        role = role_for_name(name)
        if role != "dynamic":
            return role
    return "dynamic"


@dataclass(frozen=True)
class Edge:
    """One static communication edge: ``src`` sends ``msg_type`` to ``dst``."""

    src: str
    msg_type: str
    dst: str


@dataclass
class Topology:
    """The extracted communication graph."""

    #: component name (class or module) -> role
    components: Dict[str, str] = field(default_factory=dict)
    #: edge -> source sites ``(path, line)``
    edges: Dict[Edge, List[Tuple[str, int]]] = field(default_factory=dict)
    #: role -> MsgType member names it handles
    handled: Dict[str, Set[str]] = field(default_factory=dict)
    #: ``(path, line)`` sites constructing bounded queues
    bounded_queues: List[Tuple[str, int]] = field(default_factory=list)

    def role_edges(self) -> Set[Tuple[str, str, str]]:
        """Deduplicated ``(src_role, msg_type, dst_role)`` triples."""
        return {(edge.src, edge.msg_type, edge.dst) for edge in self.edges}

    def cycles(self) -> List[List[str]]:
        """Simple role-level send/recv cycles, each rotated to start at the
        lexicographically smallest role, sorted; ``dynamic`` is excluded."""
        graph: Dict[str, Set[str]] = {}
        for src, _, dst in self.role_edges():
            if "dynamic" in (src, dst):
                continue
            graph.setdefault(src, set()).add(dst)
        cycles: Set[Tuple[str, ...]] = set()

        def visit(node: str, path: List[str]) -> None:
            for nxt in sorted(graph.get(node, ())):
                if nxt in path:
                    cycle = path[path.index(nxt):]
                    pivot = cycle.index(min(cycle))
                    cycles.add(tuple(cycle[pivot:] + cycle[:pivot]))
                else:
                    visit(nxt, path + [nxt])

        for start in sorted(graph):
            visit(start, [start])
        return [list(cycle) for cycle in sorted(cycles)]


class _TopologyVisitor(ast.NodeVisitor):
    def __init__(self, path: str, topology: Topology):
        self.path = path
        self.topology = topology
        self.scope_stack: List[str] = []
        self.class_stack: List[str] = []

    # -- scope tracking -----------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.scope_stack.append(node.name)
        self.class_stack.append(node.name)
        self.generic_visit(node)
        self.class_stack.pop()
        self.scope_stack.pop()

    def _function(self, node: ast.AST) -> None:
        self.scope_stack.append(getattr(node, "name", "<scope>"))
        self.generic_visit(node)
        self.scope_stack.pop()

    visit_FunctionDef = _function
    visit_AsyncFunctionDef = _function

    def _component(self) -> str:
        if self.class_stack:
            return self.class_stack[-1]
        stem = self.path.rsplit("/", 1)[-1]
        return stem[:-3] if stem.endswith(".py") else stem

    def _src_role(self) -> str:
        for name in reversed(self.class_stack):
            role = role_for_name(name)
            if role != "dynamic":
                return role
        for name in reversed(self.scope_stack):
            role = role_for_name(name)
            if role != "dynamic":
                return role
        return role_for_name(self._component())

    # -- send side ----------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
        if name in _SEND_CALLS:
            member = ""
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                member = member or _msgtype_member(arg)
            if member:
                dst_expr: Optional[ast.AST] = None
                if name in ("make_message", "make_header") and len(node.args) >= 2:
                    dst_expr = node.args[1]
                for keyword in node.keywords:
                    if keyword.arg == "dst":
                        dst_expr = keyword.value
                component = self._component()
                src_role = self._src_role()
                self.topology.components.setdefault(component, src_role)
                edge = Edge(src_role, member, _dst_role(dst_expr))
                self.topology.edges.setdefault(edge, []).append(
                    (self.path, node.lineno)
                )
        elif name in _QUEUE_CONSTRUCTORS:
            self._check_bounded(node)
        self.generic_visit(node)

    def _check_bounded(self, node: ast.Call) -> None:
        for keyword in node.keywords:
            if keyword.arg == "maxsize":
                value = keyword.value
                if isinstance(value, ast.Constant) and isinstance(value.value, int):
                    if value.value > 0:
                        self.topology.bounded_queues.append((self.path, node.lineno))
                elif not isinstance(value, ast.Constant):
                    # Non-literal maxsize: conservatively treated as bounded
                    # only when it cannot be the unbounded default literal 0.
                    pass

    # -- handle side --------------------------------------------------------
    def _record_handled(self, member: str) -> None:
        role = self._src_role()
        if role != "dynamic":
            self.topology.handled.setdefault(role, set()).add(member)
            self.topology.components.setdefault(self._component(), role)

    def visit_Compare(self, node: ast.Compare) -> None:
        for operand in [node.left] + list(node.comparators):
            member = _msgtype_member(operand)
            if member:
                self._record_handled(member)
            if isinstance(operand, (ast.Tuple, ast.List, ast.Set)):
                for element in operand.elts:
                    element_member = _msgtype_member(element)
                    if element_member:
                        self._record_handled(element_member)
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:
        for key in node.keys:
            if key is not None:
                member = _msgtype_member(key)
                if member:
                    self._record_handled(member)
        self.generic_visit(node)


def extract_topology(sources: List[Tuple[str, ast.AST]]) -> Topology:
    """Build the communication topology from parsed ``(path, tree)`` pairs."""
    topology = Topology()
    for path, tree in sources:
        _TopologyVisitor(path, topology).visit(tree)
    return topology


def run_topology_rules(sources: List[Tuple[str, ast.AST]]) -> List[Finding]:
    """The ``orphan-destination`` and ``bounded-queue-cycle`` findings."""
    topology = extract_topology(sources)
    findings: List[Finding] = []
    for edge, sites in sorted(
        topology.edges.items(), key=lambda kv: (kv[0].src, kv[0].msg_type, kv[0].dst)
    ):
        if edge.dst not in KNOWN_ROLES:
            continue
        if edge.msg_type in EXPLICITLY_UNROUTED:
            continue
        if edge.msg_type in topology.handled.get(edge.dst, ()):
            continue
        for path, line in sites:
            findings.append(
                Finding(
                    path,
                    line,
                    Severity.ERROR,
                    ORPHAN_DESTINATION,
                    f"MsgType.{edge.msg_type} is sent to role '{edge.dst}' "
                    "which never handles it — orphan destination",
                    scope=f"{edge.src}->{edge.dst}",
                )
            )
    cycles = topology.cycles()
    if cycles and topology.bounded_queues:
        path, line = sorted(topology.bounded_queues)[0]
        rendered = "; ".join("->".join(cycle + [cycle[0]]) for cycle in cycles)
        findings.append(
            Finding(
                path,
                line,
                Severity.WARNING,
                BOUNDED_QUEUE_CYCLE,
                f"send/recv cycle ({rendered}) through a bounded queue "
                "constructed here — static deadlock risk",
                scope="<topology>",
            )
        )
    return findings


# -- artifacts ---------------------------------------------------------------

def topology_to_dict(topology: Topology) -> Dict:
    """Deterministic JSON-ready representation of the topology."""
    return {
        "components": {
            name: topology.components[name] for name in sorted(topology.components)
        },
        "edges": [
            {
                "src": edge.src,
                "type": edge.msg_type,
                "dst": edge.dst,
                "sites": sorted({path for path, _ in sites}),
            }
            for edge, sites in sorted(
                topology.edges.items(),
                key=lambda kv: (kv[0].src, kv[0].msg_type, kv[0].dst),
            )
        ],
        "handled": {
            role: sorted(types) for role, types in sorted(topology.handled.items())
        },
        "cycles": topology.cycles(),
        "bounded_queues": sorted({path for path, _ in topology.bounded_queues}),
    }


def topology_to_json(topology: Topology) -> str:
    return json.dumps(topology_to_dict(topology), indent=2, sort_keys=False) + "\n"


def topology_to_dot(topology: Topology) -> str:
    """Graphviz rendering of the role-level graph."""
    lines = [
        "// Generated by `python -m repro.analysis --emit-topology` — do not edit.",
        "digraph topology {",
        "  rankdir=LR;",
        "  node [shape=box, fontname=\"Helvetica\"];",
    ]
    roles = sorted(
        {edge.src for edge in topology.edges} | {edge.dst for edge in topology.edges}
    )
    for role in roles:
        lines.append(f'  "{role}";')
    for src, msg_type, dst in sorted(topology.role_edges()):
        lines.append(f'  "{src}" -> "{dst}" [label="{msg_type}"];')
    lines.append("}")
    return "\n".join(lines) + "\n"


# -- trace conformance -------------------------------------------------------

def observed_edges(events: Sequence) -> Set[Tuple[str, str, str]]:
    """``(src_role, TYPE, dst_role)`` triples from observed communication.

    Accepts a mix of two record shapes through one code path:

    * :class:`repro.core.tracing.TraceEvent` records — only ``kind ==
      "sent"`` events contribute; ``detail`` must include ``dst``
      (comma-joined destination names) and ``type`` (the ``str(MsgType)``
      value), the fields :meth:`ProcessEndpoint.send` records;
    * :class:`repro.obs.spans.SpanRecord` objects (anything with
      ``msg_type``/``src``/``dst`` attributes and no ``kind``) — each is
      one completed edge from the span aggregator.
    """
    edges: Set[Tuple[str, str, str]] = set()
    for event in events:
        kind = getattr(event, "kind", None)
        if kind is None and hasattr(event, "msg_type"):
            # SpanRecord shape: one (src, type, dst) edge per record.
            member = str(event.msg_type).rsplit(".", 1)[-1].upper()
            if not member:
                continue
            edges.add(
                (
                    role_for_name(str(getattr(event, "src", ""))),
                    member,
                    role_for_name(str(getattr(event, "dst", ""))),
                )
            )
            continue
        if kind != "sent":
            continue
        detail = getattr(event, "detail", {}) or {}
        type_value = detail.get("type")
        if not type_value:
            continue
        member = str(type_value).rsplit(".", 1)[-1].upper()
        src_role = role_for_name(
            getattr(event, "source", None) or getattr(event, "name", "")
        )
        for dst_name in str(detail.get("dst", "")).split(","):
            if dst_name:
                edges.add((src_role, member, role_for_name(dst_name)))
    return edges


def conformance_violations(
    events: Sequence, topology: Topology
) -> List[Tuple[str, str, str]]:
    """Observed runtime edges absent from the static topology.

    A static edge with a ``dynamic`` endpoint is a wildcard: it matches any
    observed role on that side.  Returns the sorted list of violations —
    empty means the trace conforms.
    """
    static = topology.role_edges()
    violations = []
    for src, msg_type, dst in sorted(observed_edges(events)):
        if (src, msg_type, dst) in static:
            continue
        if any(
            member == msg_type
            and (s in (src, "dynamic"))
            and (d in (dst, "dynamic"))
            for s, member, d in static
        ):
            continue
        violations.append((src, msg_type, dst))
    return violations
