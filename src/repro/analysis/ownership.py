"""Interprocedural ownership dataflow for object-store handles.

The protocol under analysis (§3.2): ``ObjectStore.put`` acquires ``refcount``
shares of a body and returns a handle (the object ID); every share must
eventually be balanced by exactly one ``release``; handles legitimately
*escape* their acquiring function only through an explicit ownership
transfer (attached to a header that crosses a queue, returned to a caller)
— marked with :func:`repro.core.ownership.transfers_ownership`.

Three rules, all path-sensitive over the per-function CFGs from
:mod:`repro.analysis.dataflow`:

``refcount-leak`` (error)
    A handle acquired on some path is still owned when the function exits —
    an early return, a fall-through, or an exception edge skipping the
    release.  Also fired when a ``put`` result is discarded outright
    (including ``store.get(store.put(x))`` — ``get`` does not consume a
    share) or overwritten before release.

``double-release`` (error)
    A path on which the same single-share handle reaches ``release`` twice.
    Handles inserted with a fan-out refcount (``refcount=`` anything other
    than a literal ``1``) are multi-share: repeated releases are the
    protocol working as designed and are not flagged.

``unannotated-handle-escape`` (warning)
    A handle escapes the acquiring function — returned, stored into a
    container/attribute, or passed to a call — without a
    ``@transfers_ownership`` annotation.  Either the transfer is
    intentional (annotate it) or the release is missing (fix it).

Interprocedural: the pass first computes summaries — helpers that *return*
a fresh handle act as acquisition sites in their callers; helpers that
*release a parameter* act as release sites — then propagates them over the
call graph to a fixed point before the reporting pass.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .dataflow import EXIT, CFG, FunctionInfo, build_cfg, iter_functions
from .findings import Finding, Severity

REFCOUNT_LEAK = "refcount-leak"
DOUBLE_RELEASE = "double-release"
UNANNOTATED_HANDLE_ESCAPE = "unannotated-handle-escape"

#: Decorator leaf name that authorizes escapes.
TRANSFER_DECORATOR = "transfers_ownership"

#: Handle lifecycle statuses (tracked as a may-set per variable).
OWNED = "owned"
RELEASED = "released"
ESCAPED = "escaped"

_FIXPOINT_LIMIT = 200  # per-function worklist iterations (safety bound)
_SUMMARY_ROUNDS = 3  # call-graph summary propagation rounds


@dataclass(frozen=True)
class Handle:
    """Abstract state of one handle-holding variable."""

    statuses: frozenset
    acq_line: int
    multi: bool  #: inserted with a non-1 refcount (fan-out shares)

    def merge(self, other: "Handle") -> "Handle":
        return Handle(
            self.statuses | other.statuses,
            min(self.acq_line, other.acq_line),
            self.multi or other.multi,
        )


State = Dict[str, Handle]


def _merge_states(a: State, b: State) -> State:
    merged = dict(a)
    for var, handle in b.items():
        merged[var] = handle.merge(merged[var]) if var in merged else handle
    return merged


@dataclass
class Summaries:
    """Interprocedural function summaries, keyed by leaf function name."""

    returns_handle: Set[str] = field(default_factory=set)
    #: leaf name -> positional indices of parameters it releases
    releases_params: Dict[str, Set[int]] = field(default_factory=dict)

    def snapshot(self) -> Tuple:
        return (
            frozenset(self.returns_handle),
            frozenset((k, frozenset(v)) for k, v in self.releases_params.items()),
        )


def _dotted(node: ast.AST) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts)).lower()


def _is_store_receiver(node: ast.AST) -> bool:
    """True when the call receiver looks like an object store."""
    return "store" in _dotted(node)


def _store_call(node: ast.AST, method: str) -> Optional[ast.Call]:
    """``node`` as a ``<store>.<method>(...)`` call, else ``None``."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == method
        and _is_store_receiver(node.func.value)
    ):
        return node
    return None


def _put_multi(call: ast.Call) -> bool:
    """True unless the put's refcount is omitted or a literal ``1``."""
    for keyword in call.keywords:
        if keyword.arg == "refcount":
            value = keyword.value
            return not (isinstance(value, ast.Constant) and value.value == 1)
    if len(call.args) >= 2:
        value = call.args[1]
        return not (isinstance(value, ast.Constant) and value.value == 1)
    return False


def _acquisition(node: ast.AST, summaries: Summaries) -> Optional[Tuple[int, bool]]:
    """``(line, multi)`` when evaluating ``node`` yields a fresh handle."""
    put = _store_call(node, "put")
    if put is not None:
        return put.lineno, _put_multi(put)
    if isinstance(node, ast.IfExp):
        for branch in (node.body, node.orelse):
            acquired = _acquisition(branch, summaries)
            if acquired is not None:
                return acquired
        return None
    if isinstance(node, ast.Call):
        name = (
            node.func.attr
            if isinstance(node.func, ast.Attribute)
            else getattr(node.func, "id", "")
        )
        if name in summaries.returns_handle and _store_call(node, "put") is None:
            return node.lineno, False
    return None


@dataclass
class _Report:
    line: int
    rule: str
    message: str


class _FunctionAnalysis:
    """Ownership dataflow over one function's CFG."""

    def __init__(self, info: FunctionInfo, cfg: CFG, summaries: Summaries):
        self.info = info
        self.cfg = cfg
        self.summaries = summaries
        self.annotated = TRANSFER_DECORATOR in info.decorators
        self.param_names = self._param_names(info.node)
        self.reports: List[_Report] = []
        self.returns_handle = False
        self.released_params: Set[int] = set()
        self._collecting = False

    @staticmethod
    def _param_names(node: ast.AST) -> List[str]:
        args = getattr(node, "args", None)
        if args is None:
            return []
        names = [arg.arg for arg in args.posonlyargs + args.args]
        return names

    # -- driver -------------------------------------------------------------
    def run(self) -> None:
        in_states: Dict[int, State] = {}
        out_states: Dict[int, State] = {}
        if self.cfg.entry is None:
            return
        worklist = [self.cfg.entry]
        in_states[self.cfg.entry] = {}
        iterations = 0
        while worklist and iterations < _FIXPOINT_LIMIT * max(1, len(self.cfg.nodes)):
            iterations += 1
            node_id = worklist.pop(0)
            in_state = in_states.get(node_id, {})
            out_state = self._transfer(node_id, in_state, collect=False)
            if out_states.get(node_id) == out_state and node_id in out_states:
                continue
            out_states[node_id] = out_state
            for successor, kind in self.cfg.successors(node_id):
                if successor == EXIT:
                    continue
                contribution = self._edge_state(node_id, kind, in_state, out_state)
                merged = _merge_states(in_states.get(successor, {}), contribution)
                if merged != in_states.get(successor):
                    in_states[successor] = merged
                    if successor not in worklist:
                        worklist.append(successor)

        # Reporting pass on the stabilized states.
        self._collecting = True
        for node_id in self.cfg.nodes:
            self._transfer(node_id, in_states.get(node_id, {}), collect=True)
        self._report_exit_leaks(in_states, out_states)

    def _report_exit_leaks(
        self, in_states: Dict[int, State], out_states: Dict[int, State]
    ) -> None:
        leaks: Dict[Tuple[str, int], Set[str]] = {}
        for node_id, kind in self.cfg.exit_edges():
            state = self._edge_state(
                node_id, kind, in_states.get(node_id, {}), out_states.get(node_id, {})
            )
            for var, handle in state.items():
                # A handle that escaped on *some* path has transferred its
                # ownership; the residual OWNED status on merged paths is the
                # analysis being path-insensitive about loop trip counts, not
                # a leak (the escape itself is reported separately).
                if OWNED in handle.statuses and ESCAPED not in handle.statuses:
                    leaks.setdefault((var, handle.acq_line), set()).add(kind)
        for (var, acq_line), kinds in sorted(leaks.items(), key=lambda kv: kv[0][1]):
            if self.annotated and not (kinds - {"exc", "raise"}):
                # Inside @transfers_ownership the OWNED window between put()
                # and the hand-off crosses may-raise statements by design.
                continue
            if kinds - {"exc", "raise"}:
                path = "not released on every path to function exit"
            else:
                path = "leaks when an exception skips the release"
            self._report(
                acq_line,
                REFCOUNT_LEAK,
                f"object-store handle '{var}' acquired here {path}",
            )

    def _edge_state(
        self, node_id: int, kind: str, in_state: State, out_state: State
    ) -> State:
        """The state carried along one outgoing edge of ``node_id``.

        Exception edges carry the *post*-statement state: an exception
        raised by ``store.release(h)`` itself does not resurrect the handle,
        so charging the pre-release OWNED state would flag every
        acquire/release pair as an exception-path leak.  The one exception
        is an acquisition statement — if the ``put`` raises, the handle was
        never created, so its exception edge carries the pre-statement
        state.
        """
        if kind not in ("exc", "raise"):
            return out_state
        statement = self.cfg.nodes.get(node_id)
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(statement, ast.Assign) and len(statement.targets) == 1:
            target, value = statement.targets[0], statement.value
        elif isinstance(statement, ast.AnnAssign):
            target, value = statement.target, statement.value
        if (
            isinstance(target, ast.Name)
            and value is not None
            and _acquisition(value, self.summaries) is not None
        ):
            return in_state
        return out_state

    def _report(self, line: int, rule: str, message: str) -> None:
        if not self._collecting:
            return
        report = _Report(line, rule, message)
        if report not in self.reports:
            self.reports.append(report)

    # -- transfer function --------------------------------------------------
    def _transfer(self, node_id: int, in_state: State, collect: bool) -> State:
        previous = self._collecting
        self._collecting = collect
        try:
            statement = self.cfg.nodes[node_id]
            state = dict(in_state)
            self._apply(statement, state)
            return state
        finally:
            self._collecting = previous

    def _apply(self, statement: ast.stmt, state: State) -> None:
        if isinstance(statement, ast.Assign) and len(statement.targets) == 1:
            self._apply_assign(statement.targets[0], statement.value, state)
            return
        if isinstance(statement, ast.AnnAssign) and statement.value is not None:
            self._apply_assign(statement.target, statement.value, state)
            return
        if isinstance(statement, ast.Expr):
            self._apply_expr_stmt(statement.value, state)
            return
        if isinstance(statement, ast.Return):
            if statement.value is not None:
                self._apply_return(statement.value, state)
            return
        if isinstance(statement, ast.If):
            self._scan(statement.test, state)
            return
        if isinstance(statement, ast.While):
            self._scan(statement.test, state)
            return
        if isinstance(statement, (ast.For, ast.AsyncFor)):
            self._scan(statement.iter, state)
            return
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                self._scan(item.context_expr, state)
            return
        # Everything else: conservatively scan contained expressions.
        for child in ast.iter_child_nodes(statement):
            if isinstance(child, ast.expr):
                self._scan(child, state)

    # -- statement forms ----------------------------------------------------
    def _apply_assign(self, target: ast.expr, value: ast.expr, state: State) -> None:
        acquired = _acquisition(value, self.summaries)
        if isinstance(target, ast.Name):
            if acquired is not None:
                line, multi = acquired
                self._check_overwrite(target.id, state, line)
                state[target.id] = Handle(frozenset({OWNED}), line, multi)
                return
            if isinstance(value, ast.Name) and value.id in state:
                # Alias move: the handle travels with the new name.
                self._check_overwrite(target.id, state, value.lineno)
                state[target.id] = state.pop(value.id)
                return
            self._scan(value, state)
            self._check_overwrite(target.id, state, getattr(value, "lineno", 0))
            state.pop(target.id, None)
            return
        # Attribute / subscript / tuple target: the value escapes the frame.
        if acquired is not None:
            line, _ = acquired
            self._escape(None, line, "stored outside the function", state)
        elif isinstance(value, ast.Name) and value.id in state:
            self._escape(value.id, value.lineno, "stored outside the function", state)
        else:
            self._scan(value, state)
        self._scan(target, state, skip_store_ops=True)

    def _check_overwrite(self, var: str, state: State, line: int) -> None:
        handle = state.get(var)
        if handle is not None and handle.statuses == frozenset({OWNED}):
            self._report(
                handle.acq_line,
                REFCOUNT_LEAK,
                f"object-store handle '{var}' acquired here is overwritten "
                "before release",
            )

    def _apply_expr_stmt(self, value: ast.expr, state: State) -> None:
        release = _store_call(value, "release")
        if release is not None and release.args:
            arg = release.args[0]
            if isinstance(arg, ast.Name):
                if arg.id in state:
                    self._release(arg.id, release.lineno, state)
                else:
                    self._note_param_release(arg.id)
                return
            self._scan(arg, state)
            return
        summary_release = self._summary_release(value, state)
        if summary_release:
            return
        acquired = _acquisition(value, self.summaries)
        if acquired is not None:
            line, _ = acquired
            self._report(
                line,
                REFCOUNT_LEAK,
                "object-store handle from put() is discarded without release",
            )
            return
        self._scan(value, state)

    def _apply_return(self, value: ast.expr, state: State) -> None:
        acquired = _acquisition(value, self.summaries)
        if acquired is not None:
            line, _ = acquired
            self.returns_handle = True
            self._escape(None, line, "returned to the caller", state)
            return
        if isinstance(value, ast.Name) and value.id in state:
            self.returns_handle = True
            self._escape(value.id, value.lineno, "returned to the caller", state)
            return
        self._scan(value, state)

    # -- handle events ------------------------------------------------------
    def _release(self, var: str, line: int, state: State) -> None:
        handle = state[var]
        if ESCAPED in handle.statuses and handle.statuses == frozenset({ESCAPED}):
            return  # ownership already transferred; foreign release semantics
        if RELEASED in handle.statuses and not handle.multi:
            self._report(
                line,
                DOUBLE_RELEASE,
                f"object-store handle '{var}' may already be released on "
                "this path (single-share handle)",
            )
        state[var] = Handle(frozenset({RELEASED}), handle.acq_line, handle.multi)

    def _escape(
        self, var: Optional[str], line: int, how: str, state: State
    ) -> None:
        if not self.annotated:
            name = f"'{var}' " if var else ""
            self._report(
                line,
                UNANNOTATED_HANDLE_ESCAPE,
                f"object-store handle {name}escapes ({how}) without a "
                "@transfers_ownership annotation — annotate the transfer or "
                "release locally",
            )
        if var is not None and var in state:
            handle = state[var]
            state[var] = Handle(frozenset({ESCAPED}), handle.acq_line, handle.multi)

    def _note_param_release(self, name: str) -> None:
        if name in self.param_names:
            index = self.param_names.index(name)
            if self.param_names and self.param_names[0] in ("self", "cls"):
                index -= 1
            if index >= 0:
                self.released_params.add(index)

    def _summary_release(self, value: ast.expr, state: State) -> bool:
        """Apply a releasing-helper call (``self._free(h)``); True if applied."""
        if not isinstance(value, ast.Call):
            return False
        name = (
            value.func.attr
            if isinstance(value.func, ast.Attribute)
            else getattr(value.func, "id", "")
        )
        indices = self.summaries.releases_params.get(name)
        if not indices:
            return False
        applied = False
        for position, arg in enumerate(value.args):
            if position in indices and isinstance(arg, ast.Name) and arg.id in state:
                self._release(arg.id, value.lineno, state)
                applied = True
        if applied:
            for position, arg in enumerate(value.args):
                if position not in indices:
                    self._scan(arg, state)
        return applied

    # -- generic expression scan --------------------------------------------
    def _scan(
        self, expr: ast.expr, state: State, *, skip_store_ops: bool = False
    ) -> None:
        """Find escapes/leaks in an arbitrary expression context."""
        if expr is None:  # defensive: optional sub-expressions
            return
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            get = _store_call(node, "get")
            release = _store_call(node, "release") if not skip_store_ops else None
            put_args: List[ast.expr] = list(node.args) + [
                kw.value for kw in node.keywords
            ]
            for arg in put_args:
                nested_put = _store_call(arg, "put")
                if nested_put is not None:
                    if get is not None:
                        # store.get(store.put(x)): get() consumes no share.
                        self._report(
                            nested_put.lineno,
                            REFCOUNT_LEAK,
                            "object-store handle from put() is discarded "
                            "without release (get() does not consume a share)",
                        )
                    else:
                        self._escape(
                            None, nested_put.lineno, "passed to a call", state
                        )
                elif isinstance(arg, ast.Name) and arg.id in state:
                    if get is not None or release is not None:
                        continue  # store read/release of the handle: not an escape
                    name = (
                        node.func.attr
                        if isinstance(node.func, ast.Attribute)
                        else getattr(node.func, "id", "")
                    )
                    indices = self.summaries.releases_params.get(name)
                    if indices is not None and put_args.index(arg) in indices:
                        self._release(arg.id, node.lineno, state)
                    else:
                        self._escape(arg.id, node.lineno, "passed to a call", state)
        # put() in a non-call context (comprehension element, comparison,
        # f-string...) — the fresh handle is unreachable afterwards.
        for node in ast.walk(expr):
            put = _store_call(node, "put")
            if put is None:
                continue
            if self._is_inside_call_args(expr, put):
                continue  # already classified above
            if _acquisition(node, self.summaries) is not None and node is put:
                context = self._put_context(expr, put)
                if context == "container":
                    self._escape(None, put.lineno, "stored into a container", state)
                else:
                    self._report(
                        put.lineno,
                        REFCOUNT_LEAK,
                        "object-store handle from put() is discarded without "
                        "release",
                    )

    @staticmethod
    def _is_inside_call_args(root: ast.expr, target: ast.Call) -> bool:
        for node in ast.walk(root):
            if isinstance(node, ast.Call) and node is not target:
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    if target is arg or any(n is target for n in ast.walk(arg)):
                        return True
        return False

    @staticmethod
    def _put_context(root: ast.expr, target: ast.Call) -> str:
        for node in ast.walk(root):
            if isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp,
                       ast.List, ast.Set, ast.Dict, ast.Tuple)
            ):
                if any(n is target for n in ast.walk(node)):
                    return "container"
        return "discard"


def _has_store_ops(info: FunctionInfo, summaries: Summaries) -> bool:
    relevant = {"put", "release"} | summaries.returns_handle | set(
        summaries.releases_params
    )
    for node in ast.walk(info.node):
        if isinstance(node, ast.Call):
            name = (
                node.func.attr
                if isinstance(node.func, ast.Attribute)
                else getattr(node.func, "id", "")
            )
            if name in relevant:
                return True
    return False


def run_ownership_rules(
    sources: List[Tuple[str, ast.AST]]
) -> List[Finding]:
    """Run the interprocedural ownership pass over parsed sources."""
    functions = list(iter_functions(sources))
    cfgs: Dict[int, CFG] = {}

    def analysis_for(index: int, info: FunctionInfo, summaries: Summaries):
        if index not in cfgs:
            cfgs[index] = build_cfg(info.node)
        return _FunctionAnalysis(info, cfgs[index], summaries)

    # Phase 1: summary propagation to a fixed point (bounded rounds).
    summaries = Summaries()
    for _ in range(_SUMMARY_ROUNDS):
        before = summaries.snapshot()
        for index, info in enumerate(functions):
            if not _has_store_ops(info, summaries):
                continue
            analysis = analysis_for(index, info, summaries)
            analysis.run()
            if analysis.returns_handle:
                summaries.returns_handle.add(info.name)
            if analysis.released_params:
                summaries.releases_params.setdefault(info.name, set()).update(
                    analysis.released_params
                )
        if summaries.snapshot() == before:
            break

    # Phase 2: reporting with stable summaries.
    findings: List[Finding] = []
    severities = {
        REFCOUNT_LEAK: Severity.ERROR,
        DOUBLE_RELEASE: Severity.ERROR,
        UNANNOTATED_HANDLE_ESCAPE: Severity.WARNING,
    }
    for index, info in enumerate(functions):
        if not _has_store_ops(info, summaries):
            continue
        analysis = analysis_for(index, info, summaries)
        analysis.run()
        for report in analysis.reports:
            findings.append(
                Finding(
                    info.path,
                    report.line,
                    severities[report.rule],
                    report.rule,
                    report.message,
                    info.qualname,
                )
            )
    return findings
