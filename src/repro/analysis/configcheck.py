"""Static validation of example configuration files.

Checks every ``examples/*.py`` (or any tree) against the configuration
schema without executing the examples:

* keyword arguments to ``single_machine_config`` / ``XingTianConfig`` (and
  nested ``StopCondition`` / ``SupervisionSpec`` / ``TelemetrySpec`` /
  ``MachineSpec`` constructors, and dict literals passed to
  ``XingTianConfig.from_dict``)
  must be known dataclass fields — a typo like ``fragement_steps=...``
  fails instead of being swallowed by ``**overrides``;
* literal ``algorithm=`` / ``environment=`` / ``model=`` / ``agent=``
  names (keyword or the leading positional arguments) must be registered
  in :data:`repro.api.registry.registry` *or* registered locally by the
  example itself (``@register_algorithm("reinforce")``).

Emits ``unknown-config-key`` / ``unregistered-name`` findings; both are
errors — an example that cannot run should fail CI, not readers.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from .findings import Finding, Severity, sort_findings

UNKNOWN_CONFIG_KEY = "unknown-config-key"
UNREGISTERED_NAME = "unregistered-name"

#: registry kind -> the keyword names that carry such a registered name
_KIND_KEYWORDS = {
    "algorithm": "algorithm",
    "environment": "environment",
    "model": "model",
    "agent": "agent",
}

#: constructor name -> (positional registry kinds, extra accepted keywords)
_CONFIG_CALLS: Dict[str, Tuple[Tuple[str, ...], Set[str]]] = {
    "single_machine_config": (("algorithm", "environment", "model"), {"explorers"}),
    "XingTianConfig": ((), set()),
}

#: harness entry points whose first positional argument is an algorithm name
_ALGORITHM_FIRST_CALLS = {
    "run_training_xingtian",
    "run_training_raylike",
    "single_machine_config",
}

_REGISTER_DECORATORS = {
    "register_environment": "environment",
    "register_model": "model",
    "register_algorithm": "algorithm",
    "register_agent": "agent",
}


def _config_field_names() -> Dict[str, Set[str]]:
    from repro.core.config import (
        FlowControlSpec,
        MachineSpec,
        StopCondition,
        SupervisionSpec,
        TelemetrySpec,
        XingTianConfig,
    )

    return {
        "XingTianConfig": {f.name for f in dataclasses.fields(XingTianConfig)},
        "StopCondition": {f.name for f in dataclasses.fields(StopCondition)},
        "SupervisionSpec": {f.name for f in dataclasses.fields(SupervisionSpec)},
        "TelemetrySpec": {f.name for f in dataclasses.fields(TelemetrySpec)},
        "FlowControlSpec": {f.name for f in dataclasses.fields(FlowControlSpec)},
        "MachineSpec": {f.name for f in dataclasses.fields(MachineSpec)},
    }


def _registered_names() -> Dict[str, Set[str]]:
    """The populated registry tables (importing the implementation zoos)."""
    import repro.algorithms  # noqa: F401 - populates the registry
    import repro.envs  # noqa: F401 - populates the registry
    from repro.api.registry import registry

    return {kind: set(registry.names(kind)) for kind in _KIND_KEYWORDS}


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Attribute):
        # ``XingTianConfig.from_dict`` keeps the class name interesting.
        if func.attr == "from_dict":
            return "from_dict"
        return func.attr
    return getattr(func, "id", "")


class _ExampleVisitor(ast.NodeVisitor):
    def __init__(
        self,
        path: str,
        fields: Dict[str, Set[str]],
        registered: Dict[str, Set[str]],
        local: Dict[str, Set[str]],
    ):
        self.path = path
        self.fields = fields
        self.registered = registered
        self.local = local
        self.findings: List[Finding] = []
        self.scope_stack: List[str] = []

    def _scope(self) -> str:
        return ".".join(self.scope_stack)

    def _scoped(self, node: ast.AST) -> None:
        self.scope_stack.append(getattr(node, "name", "<scope>"))
        self.generic_visit(node)
        self.scope_stack.pop()

    visit_FunctionDef = _scoped
    visit_AsyncFunctionDef = _scoped
    visit_ClassDef = _scoped

    def _report(self, line: int, rule: str, message: str) -> None:
        self.findings.append(
            Finding(self.path, line, Severity.ERROR, rule, message, self._scope())
        )

    # -- checks -------------------------------------------------------------
    def _check_keys(self, schema: str, keys: List[Tuple[str, int]]) -> None:
        allowed = self.fields[schema]
        if schema == "XingTianConfig":
            allowed = allowed | _CONFIG_CALLS["single_machine_config"][1]
        for key, line in keys:
            if key not in allowed:
                self._report(
                    line,
                    UNKNOWN_CONFIG_KEY,
                    f"unknown {schema} key '{key}' (known: "
                    f"{', '.join(sorted(self.fields[schema]))})",
                )

    def _check_name(self, kind: str, value: ast.AST) -> None:
        if not (isinstance(value, ast.Constant) and isinstance(value.value, str)):
            return
        name = value.value
        if name in self.registered.get(kind, ()) or name in self.local.get(kind, ()):
            return
        self._report(
            value.lineno,
            UNREGISTERED_NAME,
            f"{kind} '{name}' is not registered "
            f"(registered: {', '.join(sorted(self.registered.get(kind, ())))})",
        )

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node)
        keyword_sites = [
            (kw.arg, kw.value.lineno if hasattr(kw.value, "lineno") else node.lineno)
            for kw in node.keywords
            if kw.arg is not None
        ]
        if name in _CONFIG_CALLS:
            positional_kinds, _ = _CONFIG_CALLS[name]
            self._check_keys("XingTianConfig", keyword_sites)
            for kind, arg in zip(positional_kinds, node.args):
                self._check_name(kind, arg)
            for kw in node.keywords:
                if kw.arg in _KIND_KEYWORDS:
                    self._check_name(_KIND_KEYWORDS[kw.arg], kw.value)
        elif name in (
            "StopCondition",
            "SupervisionSpec",
            "TelemetrySpec",
            "FlowControlSpec",
            "MachineSpec",
        ):
            self._check_keys(name, keyword_sites)
        elif name == "from_dict" and node.args:
            literal = node.args[0]
            if isinstance(literal, ast.Dict):
                keys = [
                    (key.value, key.lineno)
                    for key in literal.keys
                    if isinstance(key, ast.Constant) and isinstance(key.value, str)
                ]
                self._check_keys("XingTianConfig", keys)
                for key, value in zip(literal.keys, literal.values):
                    if (
                        isinstance(key, ast.Constant)
                        and key.value in _KIND_KEYWORDS
                    ):
                        self._check_name(_KIND_KEYWORDS[key.value], value)
        elif name in _ALGORITHM_FIRST_CALLS and node.args:
            self._check_name("algorithm", node.args[0])
        self.generic_visit(node)


def _local_registrations(tree: ast.AST) -> Dict[str, Set[str]]:
    """Names an example registers itself via ``@register_*("name")``."""
    local: Dict[str, Set[str]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
        kind = _REGISTER_DECORATORS.get(name)
        if kind and node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                local.setdefault(kind, set()).add(first.value)
    return local


def validate_configs(
    root: str,
    *,
    registered: Optional[Dict[str, Set[str]]] = None,
) -> List[Finding]:
    """Validate every config-constructing file under ``root``."""
    from .engine import iter_python_files, _display_path

    fields = _config_field_names()
    if registered is None:
        registered = _registered_names()
    findings: List[Finding] = []
    root_path = Path(root)
    for path in iter_python_files(root_path):
        display = _display_path(path, root_path)
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        except SyntaxError as exc:
            findings.append(
                Finding(
                    display,
                    exc.lineno or 1,
                    Severity.ERROR,
                    "syntax-error",
                    exc.msg or "invalid syntax",
                    "<module>",
                )
            )
            continue
        visitor = _ExampleVisitor(
            display, fields, registered, _local_registrations(tree)
        )
        visitor.visit(tree)
        findings.extend(visitor.findings)
    return sort_findings(findings)
