"""Runtime concurrency checkers (opt-in via ``REPRO_RUNTIME_CHECKS=1``).

Two checkers complement the static rules:

* **Lock-order monitor** — :class:`CheckedLock` / :class:`CheckedRLock`
  wrap the stdlib primitives and record the per-thread lock-acquisition
  graph: acquiring ``B`` while holding ``A`` adds the edge ``A → B``.  A
  cycle in that graph means two threads can acquire the same locks in
  opposite orders — a potential deadlock — and is recorded as a
  :class:`LockOrderViolation` (optionally raised as
  :class:`~repro.core.errors.LockOrderError`).  The factory
  :func:`repro.core.concurrency.make_lock` hands these out framework-wide
  when checks are enabled, so the whole test suite runs instrumented.

* **Refcount auditor** — :func:`audit_object_store` asserts that every
  object-store refcount was balanced (all bodies fetched-and-released) and
  raises :class:`~repro.core.errors.RefcountLeakError` otherwise.
  :meth:`repro.core.broker.Broker.stop` calls it at shutdown when checks
  are enabled, which is exactly the gate that would have caught the PR-1
  sender-loop refcount leak before it shipped.

Locks are compared by *name* (the creation-site label), not by instance:
per-instance locks sharing a label form one node.  Self-edges (two
same-named locks nested) are ignored to avoid false cycles between sibling
instances; give locks distinct names where that ordering matters.
"""

from __future__ import annotations

import logging
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core.errors import LockOrderError, RefcountLeakError

LOG = logging.getLogger("repro.analysis.runtime")


@dataclass(frozen=True)
class LockOrderViolation:
    """One detected lock-order cycle."""

    edge: Tuple[str, str]  #: the edge whose addition closed the cycle
    cycle: Tuple[str, ...]  #: lock names along the cycle, starting at edge[1]
    thread: str  #: thread that added the closing edge

    def describe(self) -> str:
        chain = " -> ".join(self.cycle + (self.cycle[0],))
        return (
            f"lock-order cycle {chain} (closing edge {self.edge[0]} -> "
            f"{self.edge[1]} acquired on thread {self.thread!r})"
        )


class LockOrderMonitor:
    """Records the global lock-acquisition graph and detects cycles."""

    def __init__(self, *, raise_on_violation: bool = False):
        self.raise_on_violation = raise_on_violation
        self._graph_lock = threading.Lock()
        #: directed edges held-name -> acquired-name, with the observing thread
        self._edges: Dict[Tuple[str, str], str] = {}
        self._violations: List[LockOrderViolation] = []
        self._local = threading.local()

    # -- per-thread held stack ----------------------------------------------
    def _held(self) -> List[Tuple[int, str]]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def on_acquired(self, lock_id: int, name: str) -> None:
        held = self._held()
        first_acquisition = all(lock_id != held_id for held_id, _ in held)
        if first_acquisition:
            for _, held_name in held:
                if held_name != name:
                    self._add_edge(held_name, name)
        held.append((lock_id, name))

    def on_released(self, lock_id: int, name: str) -> None:
        held = self._held()
        for index in range(len(held) - 1, -1, -1):
            if held[index][0] == lock_id:
                del held[index]
                return

    # -- the graph -----------------------------------------------------------
    def _add_edge(self, source: str, target: str) -> None:
        thread_name = threading.current_thread().name
        with self._graph_lock:
            if (source, target) in self._edges:
                return
            self._edges[(source, target)] = thread_name
            cycle = self._find_path(target, source)
        if cycle is not None:
            violation = LockOrderViolation((source, target), tuple(cycle), thread_name)
            with self._graph_lock:
                self._violations.append(violation)
            LOG.error("runtime checker: %s", violation.describe())
            if self.raise_on_violation:
                raise LockOrderError(violation.describe())

    def _find_path(self, start: str, goal: str) -> Optional[List[str]]:
        """DFS path start → goal in the edge graph (caller holds _graph_lock)."""
        adjacency: Dict[str, Set[str]] = {}
        for (source, target) in self._edges:
            adjacency.setdefault(source, set()).add(target)
        stack: List[Tuple[str, List[str]]] = [(start, [start])]
        seen: Set[str] = set()
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            if node in seen:
                continue
            seen.add(node)
            for neighbor in adjacency.get(node, ()):
                stack.append((neighbor, path + [neighbor]))
        return None

    # -- introspection --------------------------------------------------------
    def edges(self) -> Dict[Tuple[str, str], str]:
        with self._graph_lock:
            return dict(self._edges)

    def violations(self) -> List[LockOrderViolation]:
        with self._graph_lock:
            return list(self._violations)

    def reset(self) -> None:
        with self._graph_lock:
            self._edges.clear()
            self._violations.clear()


_GLOBAL_MONITOR = LockOrderMonitor()


def lock_monitor() -> LockOrderMonitor:
    """The process-wide monitor used by framework-created locks."""
    return _GLOBAL_MONITOR


class _CheckedBase:
    """Shared acquire/release instrumentation around a stdlib lock."""

    def __init__(self, name: str, inner, monitor: Optional[LockOrderMonitor]):
        self.name = name
        self._inner = inner
        self._monitor = monitor if monitor is not None else lock_monitor()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._monitor.on_acquired(id(self), self.name)
        return acquired

    def release(self) -> None:
        self._monitor.on_released(id(self), self.name)
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class CheckedLock(_CheckedBase):
    """A ``threading.Lock`` that reports its acquisition order."""

    def __init__(self, name: str, monitor: Optional[LockOrderMonitor] = None):
        super().__init__(name, threading.Lock(), monitor)

    def locked(self) -> bool:
        return self._inner.locked()


class CheckedRLock(_CheckedBase):
    """A ``threading.RLock`` that reports its acquisition order.

    Re-entrant acquisitions of the same instance add no edges (they cannot
    deadlock against themselves).
    """

    def __init__(self, name: str, monitor: Optional[LockOrderMonitor] = None):
        super().__init__(name, threading.RLock(), monitor)


# -- refcount auditing --------------------------------------------------------

def audit_object_store(store, context: str = "") -> None:
    """Raise :class:`RefcountLeakError` when ``store`` holds unreleased refs.

    Call at shutdown, after consumers have drained their queues: every
    remaining entry is a body whose refcount was never balanced by
    fetch-and-release cycles — a leak.
    """
    leak_report = getattr(store, "leak_report", None)
    if leak_report is None:
        return
    leaks = leak_report()
    if not leaks:
        return
    where = f" at {context}" if context else ""
    detail = ", ".join(
        f"{object_id} (refcount={refcount}, {nbytes}B)"
        for object_id, refcount, nbytes in leaks[:10]
    )
    more = "" if len(leaks) <= 10 else f" … and {len(leaks) - 10} more"
    raise RefcountLeakError(
        f"object store refcount imbalance{where}: {len(leaks)} unreleased "
        f"object(s): {detail}{more}"
    )
