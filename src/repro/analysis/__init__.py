"""Framework-aware static & runtime analysis for the comms stack.

XingTian's core claim rests on a hand-rolled threaded communication stack —
broker, router, header/ID queues, and a refcounted object store — exactly
the kind of code where races, lock-order inversions, and silently-unrouted
messages hide.  This package turns that debugging into tooling:

* :mod:`repro.analysis.rules` — an AST-based lint engine with
  framework-specific rules (blocking calls under a lock, unguarded shared
  mutation in threaded classes, raw ``threading.Thread`` creation bypassing
  :func:`repro.core.concurrency.spawn_thread`, and ``MsgType`` send sites
  with no registered handler);
* :mod:`repro.analysis.protocol` — extraction of the message protocol
  (who sends / who handles each :class:`~repro.core.message.MsgType`) from
  the source tree, cross-checked by the ``unrouted-msgtype`` rule and the
  routing-table exhaustiveness test;
* :mod:`repro.analysis.dataflow` / :mod:`repro.analysis.ownership` — an
  interprocedural ownership dataflow pass over per-function CFGs tracking
  ``ObjectStore.put``/``get``/``release`` handle flow: refcount leaks along
  any control-flow path, double releases of single-share handles, and
  handles escaping without a
  :func:`repro.core.ownership.transfers_ownership` annotation;
* :mod:`repro.analysis.lifetime` — a zero-copy lifetime pass over the same
  CFGs tracking views derived from ``deserialize(copy=False)``, arena
  blocks, and pool handles: view-escapes past the owning block's release,
  release-while-borrowed, writes through read-only views, and
  ``LaneHeaderQueue`` call sites violating their CONTROL_BLOCK /
  CONTROL_UNBOUNDED reclaim contracts (``lane-contract``);
* :mod:`repro.analysis.topology` — static extraction of the communication
  topology (which component sends which ``MsgType`` to which role), the
  ``docs/topology.json``/DOT artifacts, the ``orphan-destination`` and
  ``bounded-queue-cycle`` rules, and the trace-conformance checker diffing
  :class:`repro.core.tracing.Tracer` events against the static graph;
* :mod:`repro.analysis.configcheck` — static validation of the examples'
  configuration calls against the config schema and
  :data:`repro.api.registry.registry`;
* :mod:`repro.analysis.runtime` — opt-in runtime checkers: an instrumented
  lock that records the per-thread lock-acquisition graph and reports
  cycles (potential deadlocks), and an object-store refcount auditor that
  asserts all refs are balanced at broker shutdown;
* :mod:`repro.analysis.cli` — ``python -m repro.analysis <path>`` emitting
  ``file:line severity rule message`` findings (``--format json``/``gha``
  for machine consumption), compared against a committed baseline so CI
  fails only on *new* findings.

See ``docs/STATIC_ANALYSIS.md`` for the rule catalog and workflows.
"""

from __future__ import annotations

from .engine import analyze_path, analyze_paths, analyze_source
from .findings import Baseline, Finding, Severity
from .lifetime import run_lifetime_rules
from .ownership import run_ownership_rules
from .protocol import EXPLICITLY_UNROUTED, Protocol, extract_protocol
from .topology import (
    Topology,
    conformance_violations,
    extract_topology,
    observed_edges,
)

__all__ = [
    "analyze_path",
    "analyze_paths",
    "analyze_source",
    "Baseline",
    "Finding",
    "Severity",
    "Protocol",
    "extract_protocol",
    "EXPLICITLY_UNROUTED",
    "run_ownership_rules",
    "run_lifetime_rules",
    "Topology",
    "extract_topology",
    "observed_edges",
    "conformance_violations",
]
