"""The analysis engine: parse a tree of Python files and run every rule."""

from __future__ import annotations

import ast
import fnmatch
from pathlib import Path
from typing import Iterable, List, Optional, Set, Tuple

from .findings import Finding, Severity, sort_findings
from .lifetime import run_lifetime_rules
from .ownership import run_ownership_rules
from .protocol import extract_from_sources
from .rules import SYNTAX_ERROR, run_file_rules, run_protocol_rule
from .topology import run_topology_rules

_SKIP_DIR_NAMES = {"__pycache__", ".git", ".mypy_cache", ".ruff_cache"}


def _display_path(path: Path, root: Path) -> str:
    """Stable, forward-slash path for findings and baseline fingerprints.

    Paths under the current working directory are shown relative to it (so
    ``python -m repro.analysis src`` from the repo root yields ``src/...``
    fingerprints everywhere); anything else is shown relative to the
    analyzed root (temp dirs in tests).
    """
    resolved = path.resolve()
    for base in (Path.cwd(), root.resolve() if root.is_dir() else root.resolve().parent):
        try:
            return resolved.relative_to(base).as_posix()
        except ValueError:
            continue
    return resolved.as_posix()


def iter_python_files(root: Path) -> List[Path]:
    if root.is_file():
        return [root]
    files = []
    for path in sorted(root.rglob("*.py")):
        if any(part in _SKIP_DIR_NAMES or part.startswith(".") for part in path.parts):
            continue
        files.append(path)
    return files


def parse_tree(root: str) -> List[Tuple[str, ast.AST]]:
    """Parse every ``.py`` under ``root`` into ``(display_path, ast)`` pairs.

    Files with syntax errors are skipped here (callers that need a finding
    for them use :func:`parse_tree_reporting_errors`).
    """
    sources, _ = parse_tree_reporting_errors(root)
    return sources


def parse_tree_reporting_errors(
    root: str,
) -> Tuple[List[Tuple[str, ast.AST]], List[Finding]]:
    """Like :func:`parse_tree`, plus a ``syntax-error`` finding per unparsable
    file — a file no rule can inspect must fail the gate, not silently pass."""
    root_path = Path(root)
    sources: List[Tuple[str, ast.AST]] = []
    errors: List[Finding] = []
    for path in iter_python_files(root_path):
        display = _display_path(path, root_path)
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        except SyntaxError as exc:
            errors.append(
                Finding(
                    path=display,
                    line=exc.lineno or 1,
                    severity=Severity.ERROR,
                    rule=SYNTAX_ERROR,
                    message=exc.msg or "invalid syntax",
                    scope="<module>",
                )
            )
            continue
        sources.append((display, tree))
    return sources, errors


def filter_sources(
    sources: List[Tuple[str, ast.AST]], excludes: Iterable[str]
) -> List[Tuple[str, ast.AST]]:
    """Drop sources whose display path matches any exclude pattern.

    A pattern matches when it is a substring of the path or an ``fnmatch``
    glob for it — ``tests/analysis/fixtures`` excludes the seeded-violation
    fixture files when the analyzer is pointed at ``tests/``.
    """
    patterns = list(excludes)
    if not patterns:
        return sources
    return [
        (path, tree)
        for path, tree in sources
        if not any(
            pattern in path or fnmatch.fnmatch(path, pattern)
            for pattern in patterns
        )
    ]


def _run_protocol_rules(
    sources: List[Tuple[str, ast.AST]],
    ignored_msgtypes: Optional[Set[str]],
) -> List[Finding]:
    """The whole-program ``unrouted-msgtype`` rule, scoped per tree.

    Sends in framework code (paths under ``src/``) must find their handler
    in framework code: a handler that only exists in a test must not mask an
    unrouted production type.  Sends elsewhere (tests, benchmarks) may be
    handled anywhere in the analyzed set.
    """
    src_sources = [(p, t) for p, t in sources if p.startswith("src/")]
    if not src_sources or len(src_sources) == len(sources):
        return run_protocol_rule(extract_from_sources(sources), ignored_msgtypes)
    findings = list(
        run_protocol_rule(extract_from_sources(src_sources), ignored_msgtypes)
    )
    for finding in run_protocol_rule(
        extract_from_sources(sources), ignored_msgtypes
    ):
        if not finding.path.startswith("src/"):
            findings.append(finding)
    return findings


def analyze_sources(
    sources: List[Tuple[str, ast.AST]],
    *,
    ignored_msgtypes: Optional[Set[str]] = None,
) -> List[Finding]:
    findings: List[Finding] = []
    for path, tree in sources:
        findings.extend(run_file_rules(path, tree))
    findings.extend(_run_protocol_rules(sources, ignored_msgtypes))
    findings.extend(run_ownership_rules(sources))
    findings.extend(run_lifetime_rules(sources))
    findings.extend(run_topology_rules(sources))
    return sort_findings(findings)


def analyze_paths(
    roots: Iterable[str],
    *,
    ignored_msgtypes: Optional[Set[str]] = None,
    excludes: Iterable[str] = (),
) -> List[Finding]:
    """Analyze several trees as one program; returns sorted findings."""
    sources: List[Tuple[str, ast.AST]] = []
    errors: List[Finding] = []
    for root in roots:
        root_sources, root_errors = parse_tree_reporting_errors(root)
        sources.extend(root_sources)
        errors.extend(root_errors)
    sources = filter_sources(sources, excludes)
    excluded = {pattern for pattern in excludes}
    if excluded:
        errors = [
            finding
            for finding in errors
            if not any(
                pattern in finding.path or fnmatch.fnmatch(finding.path, pattern)
                for pattern in excluded
            )
        ]
    return sort_findings(
        analyze_sources(sources, ignored_msgtypes=ignored_msgtypes) + errors
    )


def analyze_path(
    root: str, *, ignored_msgtypes: Optional[Set[str]] = None
) -> List[Finding]:
    """Analyze one file or directory tree; returns sorted findings."""
    return analyze_paths([root], ignored_msgtypes=ignored_msgtypes)


def analyze_source(source: str, path: str = "<memory>.py") -> List[Finding]:
    """Analyze an in-memory module (used by the rule unit tests)."""
    return analyze_sources([(path, ast.parse(source))])
