"""The analysis engine: parse a tree of Python files and run every rule."""

from __future__ import annotations

import ast
from pathlib import Path
from typing import List, Optional, Set, Tuple

from .findings import Finding, Severity, sort_findings
from .protocol import extract_from_sources
from .rules import SYNTAX_ERROR, run_file_rules, run_protocol_rule

_SKIP_DIR_NAMES = {"__pycache__", ".git", ".mypy_cache", ".ruff_cache"}


def _display_path(path: Path, root: Path) -> str:
    """Stable, forward-slash path for findings and baseline fingerprints.

    Paths under the current working directory are shown relative to it (so
    ``python -m repro.analysis src`` from the repo root yields ``src/...``
    fingerprints everywhere); anything else is shown relative to the
    analyzed root (temp dirs in tests).
    """
    resolved = path.resolve()
    for base in (Path.cwd(), root.resolve() if root.is_dir() else root.resolve().parent):
        try:
            return resolved.relative_to(base).as_posix()
        except ValueError:
            continue
    return resolved.as_posix()


def iter_python_files(root: Path) -> List[Path]:
    if root.is_file():
        return [root]
    files = []
    for path in sorted(root.rglob("*.py")):
        if any(part in _SKIP_DIR_NAMES or part.startswith(".") for part in path.parts):
            continue
        files.append(path)
    return files


def parse_tree(root: str) -> List[Tuple[str, ast.AST]]:
    """Parse every ``.py`` under ``root`` into ``(display_path, ast)`` pairs.

    Files with syntax errors are skipped here (callers that need a finding
    for them use :func:`parse_tree_reporting_errors`).
    """
    sources, _ = parse_tree_reporting_errors(root)
    return sources


def parse_tree_reporting_errors(
    root: str,
) -> Tuple[List[Tuple[str, ast.AST]], List[Finding]]:
    """Like :func:`parse_tree`, plus a ``syntax-error`` finding per unparsable
    file — a file no rule can inspect must fail the gate, not silently pass."""
    root_path = Path(root)
    sources: List[Tuple[str, ast.AST]] = []
    errors: List[Finding] = []
    for path in iter_python_files(root_path):
        display = _display_path(path, root_path)
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        except SyntaxError as exc:
            errors.append(
                Finding(
                    path=display,
                    line=exc.lineno or 1,
                    severity=Severity.ERROR,
                    rule=SYNTAX_ERROR,
                    message=exc.msg or "invalid syntax",
                    scope="<module>",
                )
            )
            continue
        sources.append((display, tree))
    return sources, errors


def analyze_sources(
    sources: List[Tuple[str, ast.AST]],
    *,
    ignored_msgtypes: Optional[Set[str]] = None,
) -> List[Finding]:
    findings: List[Finding] = []
    for path, tree in sources:
        findings.extend(run_file_rules(path, tree))
    protocol = extract_from_sources(sources)
    findings.extend(run_protocol_rule(protocol, ignored_msgtypes))
    return sort_findings(findings)


def analyze_path(
    root: str, *, ignored_msgtypes: Optional[Set[str]] = None
) -> List[Finding]:
    """Analyze one file or directory tree; returns sorted findings."""
    sources, errors = parse_tree_reporting_errors(root)
    return sort_findings(
        analyze_sources(sources, ignored_msgtypes=ignored_msgtypes) + errors
    )


def analyze_source(source: str, path: str = "<memory>.py") -> List[Finding]:
    """Analyze an in-memory module (used by the rule unit tests)."""
    return analyze_sources([(path, ast.parse(source))])
