"""``python -m repro.analysis`` — the analyzer's command-line front end.

Emits one ``file:line severity rule message`` line per finding.  With a
baseline file, findings already recorded there are suppressed and the exit
code reflects only *new* findings — that is what the CI ``analysis`` job
runs.  ``--write-baseline`` regenerates the baseline after intentional
changes; stale entries (baselined findings that no longer occur) are
reported so the baseline can be shrunk over time.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .engine import analyze_path
from .findings import Baseline, sort_findings
from .rules import RULES

DEFAULT_BASELINE = "analysis-baseline.txt"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Concurrency & message-protocol analyzer for the comms stack.",
    )
    parser.add_argument("paths", nargs="+", help="files or directories to analyze")
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: {DEFAULT_BASELINE} when it exists)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline; report and gate on every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    return parser


def _resolve_baseline_path(args: argparse.Namespace) -> Optional[Path]:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return Path(args.baseline)
    default = Path(DEFAULT_BASELINE)
    if default.exists() or args.write_baseline:
        return default
    return None


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for info in RULES.values():
            print(f"{info.name:<28} {info.severity:<8} {info.summary}")
        return 0

    findings = []
    for path in args.paths:
        if not Path(path).exists():
            print(f"error: no such path: {path}", file=sys.stderr)
            return 2
        findings.extend(analyze_path(path))
    findings = sort_findings(findings)

    baseline_path = _resolve_baseline_path(args)

    if args.write_baseline:
        if baseline_path is None:
            print("error: --write-baseline conflicts with --no-baseline", file=sys.stderr)
            return 2
        Baseline.from_findings(findings).save(baseline_path)
        print(f"wrote {len(findings)} finding(s) to {baseline_path}")
        return 0

    if baseline_path is not None and baseline_path.exists():
        baseline = Baseline.load(baseline_path)
    else:
        baseline = Baseline()

    diff = baseline.diff(findings)
    for finding in diff.new:
        print(finding.format())
    for fingerprint in diff.stale:
        print(f"stale-baseline-entry: {fingerprint}", file=sys.stderr)

    print(
        f"{len(findings)} finding(s): {len(diff.new)} new, "
        f"{len(diff.baselined)} baselined, {len(diff.stale)} stale baseline entr(ies)",
        file=sys.stderr,
    )
    return 1 if diff.new else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
