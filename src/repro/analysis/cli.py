"""``python -m repro.analysis`` — the analyzer's command-line front end.

Emits one ``file:line severity rule message`` line per finding (or JSON /
GitHub workflow annotations via ``--format``).  With a baseline file,
findings already recorded there are suppressed and the exit code reflects
only *new* findings — that is what the CI ``analysis`` job runs.
``--write-baseline`` regenerates the baseline after intentional changes.

Exit codes:

* ``0`` — clean (no new findings, no stale baseline entries)
* ``1`` — new findings
* ``2`` — usage error
* ``3`` — no new findings, but stale baseline entries remain (the baseline
  should be regenerated so reviewers see it shrink)
* ``4`` — ``--check-topology`` drift: the committed topology artifact does
  not match what the analyzer extracts from the sources
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .configcheck import validate_configs
from .engine import analyze_paths, filter_sources, parse_tree_reporting_errors
from .findings import Baseline, Finding, sort_findings
from .rules import RULES
from .topology import extract_topology, topology_to_dict, topology_to_dot, topology_to_json

DEFAULT_BASELINE = "analysis-baseline.txt"

EXIT_CLEAN = 0
EXIT_NEW_FINDINGS = 1
EXIT_USAGE = 2
EXIT_STALE_BASELINE = 3
EXIT_TOPOLOGY_DRIFT = 4


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Concurrency, ownership & message-protocol analyzer for the "
            "comms stack."
        ),
    )
    parser.add_argument("paths", nargs="+", help="files or directories to analyze")
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: {DEFAULT_BASELINE} when it exists)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline; report and gate on every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "gha"),
        default="text",
        help="output format: human text, JSON, or GitHub workflow annotations",
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=[],
        metavar="PATTERN",
        help="skip files whose path contains PATTERN (or fnmatch-es it); "
        "repeatable — e.g. --exclude tests/analysis/fixtures",
    )
    parser.add_argument(
        "--emit-topology",
        metavar="FILE",
        default=None,
        help="write the extracted communication topology to FILE (JSON) and "
        "a sibling .dot, then exit",
    )
    parser.add_argument(
        "--check-topology",
        metavar="FILE",
        default=None,
        help="fail (exit 4) when FILE differs from the topology extracted "
        "from the analyzed sources",
    )
    parser.add_argument(
        "--validate-configs",
        action="store_true",
        help="validate configuration-constructing files (examples/) against "
        "the registry and config schema instead of running lint rules",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    return parser


def _resolve_baseline_path(args: argparse.Namespace) -> Optional[Path]:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return Path(args.baseline)
    default = Path(DEFAULT_BASELINE)
    if default.exists() or args.write_baseline:
        return default
    return None


def _print_findings(findings: List[Finding], fmt: str) -> None:
    if fmt == "json":
        return  # JSON output is emitted once, in main()
    for finding in findings:
        if fmt == "gha":
            level = "error" if str(finding.severity) == "error" else "warning"
            print(
                f"::{level} file={finding.path},line={finding.line},"
                f"title={finding.rule}::{finding.message}"
            )
        else:
            print(finding.format())


def _json_payload(findings: List[Finding], summary: dict) -> str:
    return json.dumps(
        {
            "findings": [
                {
                    "path": f.path,
                    "line": f.line,
                    "severity": str(f.severity),
                    "rule": f.rule,
                    "message": f.message,
                    "scope": f.scope,
                    "fingerprint": f.fingerprint(),
                }
                for f in findings
            ],
            "summary": summary,
        },
        indent=2,
    )


def _load_sources(paths: List[str], excludes: List[str]):
    sources = []
    for path in paths:
        root_sources, _ = parse_tree_reporting_errors(path)
        sources.extend(root_sources)
    return filter_sources(sources, excludes)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for info in RULES.values():
            print(f"{info.name:<28} {info.severity:<8} {info.summary}")
        return EXIT_CLEAN

    for path in args.paths:
        if not Path(path).exists():
            print(f"error: no such path: {path}", file=sys.stderr)
            return EXIT_USAGE

    if args.validate_configs:
        findings: List[Finding] = []
        for path in args.paths:
            findings.extend(validate_configs(path))
        findings = sort_findings(findings)
        _print_findings(findings, args.format)
        if args.format == "json":
            print(_json_payload(findings, {"new": len(findings)}))
        print(f"{len(findings)} config finding(s)", file=sys.stderr)
        return EXIT_NEW_FINDINGS if findings else EXIT_CLEAN

    if args.emit_topology or args.check_topology:
        topology = extract_topology(_load_sources(args.paths, args.exclude))
        if args.emit_topology:
            out = Path(args.emit_topology)
            out.write_text(topology_to_json(topology), encoding="utf-8")
            out.with_suffix(".dot").write_text(
                topology_to_dot(topology), encoding="utf-8"
            )
            print(f"wrote {out} and {out.with_suffix('.dot')}", file=sys.stderr)
            return EXIT_CLEAN
        committed_path = Path(args.check_topology)
        if not committed_path.exists():
            print(f"error: no such file: {committed_path}", file=sys.stderr)
            return EXIT_USAGE
        committed = json.loads(committed_path.read_text(encoding="utf-8"))
        current = topology_to_dict(topology)
        if committed != current:
            print(
                f"topology drift: {committed_path} does not match the "
                "analyzed sources; regenerate with "
                f"--emit-topology {committed_path}",
                file=sys.stderr,
            )
            return EXIT_TOPOLOGY_DRIFT
        print(f"{committed_path} matches the analyzed sources", file=sys.stderr)
        return EXIT_CLEAN

    findings = analyze_paths(args.paths, excludes=args.exclude)

    baseline_path = _resolve_baseline_path(args)

    if args.write_baseline:
        if baseline_path is None:
            print(
                "error: --write-baseline conflicts with --no-baseline",
                file=sys.stderr,
            )
            return EXIT_USAGE
        Baseline.from_findings(findings).save(baseline_path)
        print(f"wrote {len(findings)} finding(s) to {baseline_path}")
        return EXIT_CLEAN

    if baseline_path is not None and baseline_path.exists():
        baseline = Baseline.load(baseline_path)
    else:
        baseline = Baseline()

    diff = baseline.diff(findings)
    _print_findings(diff.new, args.format)
    if args.format == "json":
        print(
            _json_payload(
                diff.new,
                {
                    "new": len(diff.new),
                    "baselined": len(diff.baselined),
                    "stale": len(diff.stale),
                },
            )
        )
    for fingerprint in diff.stale:
        print(f"stale-baseline-entry: {fingerprint}", file=sys.stderr)

    print(
        f"{len(findings)} finding(s): {len(diff.new)} new, "
        f"{len(diff.baselined)} baselined, {len(diff.stale)} stale baseline entr(ies)",
        file=sys.stderr,
    )
    if diff.new:
        return EXIT_NEW_FINDINGS
    if diff.stale:
        return EXIT_STALE_BASELINE
    return EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
