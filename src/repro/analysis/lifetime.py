"""Zero-copy lifetime dataflow: views must not outlive their blocks.

The zero-copy pipeline (PR 5) hands consumers *views* — ``deserialize(...,
copy=False)`` buffers, ``SlabArena`` block views, ``Block.buf`` — whose
memory is recycled the moment the owning block is freed.  A view that
outlives its block is a silent use-after-free: training batches read
whatever tenant occupies the block next.  This pass walks the per-function
CFGs from :mod:`repro.analysis.dataflow` tracking which variables hold
views, which hold the blocks/handles that own them, and where the owning
storage is released.

Four rules:

``view-escape`` (warning)
    A zero-copy view leaves the function that created it — returned, stored
    into an attribute/container, or passed to a call — without a
    :func:`~repro.core.ownership.detaches_view` annotation (and the callee
    not marked :func:`~repro.core.ownership.borrows_view`).  Once a view
    escapes, nothing ties its lifetime to the block's.

``release-while-borrowed`` (error)
    The owning block is freed (``arena.free``, ``read_body``,
    ``discard_body``, ``pool.read``/``discard``) while a view derived from
    it is still live on that path — or a view is used after its backing
    block was released on every path reaching the use.

``write-through-readonly-view`` (error)
    An element/slice write (or augmented assignment) through a
    ``deserialize(copy=False)`` buffer.  Those views are read-only by
    contract; at runtime the write raises ``TypeError``, and "fixing" it by
    copying first is what ``copy=True`` is for.

``lane-contract`` (error)
    A :class:`~repro.core.flowcontrol.LaneHeaderQueue` call site violating
    the declared reclaim-ownership contract: CONTROL_BLOCK queues
    self-reclaim rejected/shed headers and therefore need a ``reclaim=``
    callback at construction; CONTROL_UNBOUNDED queues put reclaim on the
    caller, so discarding the boolean result of ``put``/``put_many`` drops
    the only signal that a header (and its store share) was rejected.

Findings inside ``with pytest.raises(...)`` blocks are suppressed — tests
provoke these failures on purpose.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .dataflow import EXIT, CFG, FunctionInfo, build_cfg, iter_functions
from .findings import Finding, Severity

VIEW_ESCAPE = "view-escape"
RELEASE_WHILE_BORROWED = "release-while-borrowed"
WRITE_THROUGH_READONLY_VIEW = "write-through-readonly-view"
LANE_CONTRACT = "lane-contract"

#: Decorator leaf names declaring view intent (see ``core/ownership.py``).
BORROWS_DECORATOR = "borrows_view"
DETACHES_DECORATOR = "detaches_view"

#: Calls a view may be passed to without escaping: they consume the bytes
#: synchronously (or copy them) and never retain the view.
SAFE_VIEW_CALLS = {
    "bytes",
    "bytearray",
    "len",
    "memoryview",
    "print",
    "repr",
    "hash",
    "isinstance",
    "deserialize",
    "array_equal",  # numpy comparison: reads both operands, retains neither
    # The sanctioned escape: registering a view with the arena's export
    # tracker is how a caller *declares* the view outlives this frame.
    "register_export",
}

#: Value kinds tracked per variable.
VIEW = "view"
BLOCK = "block"
HANDLE = "handle"

#: Lifetime statuses (may-set, like the ownership pass).
LIVE = "live"
FREED = "freed"

_FIXPOINT_LIMIT = 200  # per-function worklist iterations (safety bound)


@dataclass(frozen=True)
class VState:
    """Abstract state of one view/block/handle-holding variable."""

    kind: str
    readonly: bool
    owner: str  #: root variable owning the backing storage
    statuses: frozenset
    src_line: int

    def merge(self, other: "VState") -> "VState":
        return VState(
            VIEW if VIEW in (self.kind, other.kind) else self.kind,
            self.readonly or other.readonly,
            self.owner,
            self.statuses | other.statuses,
            min(self.src_line, other.src_line),
        )


State = Dict[str, VState]


def _merge_states(a: State, b: State) -> State:
    merged = dict(a)
    for var, vstate in b.items():
        merged[var] = vstate.merge(merged[var]) if var in merged else vstate
    return merged


def _dotted(node: ast.AST) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts)).lower()


def _root_name(node: ast.AST) -> str:
    """Base variable of a chained expression (``b.buf[1:]`` → ``b``)."""
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Starred)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _unwrap_subscript(node: ast.AST) -> ast.AST:
    """Slicing a view yields a view: see through ``expr[...]`` chains."""
    while isinstance(node, ast.Subscript):
        node = node.value
    return node


def _call_leaf(node: ast.Call) -> str:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return getattr(node.func, "id", "")


def _is_zero_copy_deserialize(node: ast.AST) -> bool:
    """``deserialize(..., copy=False)`` — the only view-producing spelling."""
    if not (isinstance(node, ast.Call) and _call_leaf(node) == "deserialize"):
        return False
    for keyword in node.keywords:
        if keyword.arg == "copy":
            value = keyword.value
            return isinstance(value, ast.Constant) and value.value is False
    return False


def _arena_call(node: ast.AST, method: str) -> Optional[ast.Call]:
    """``node`` as ``<arena-ish>.<method>(...)``, else ``None``."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == method
        and "arena" in _dotted(node.func.value)
    ):
        return node
    return None


def _freed_roots(node: ast.AST) -> List[str]:
    """Root variables whose backing storage ``node`` releases, if any."""
    if not isinstance(node, ast.Call) or not node.args:
        return []
    leaf = _call_leaf(node)
    if leaf in ("read_body", "discard_body"):
        return [_root_name(node.args[0])]
    if isinstance(node.func, ast.Attribute):
        receiver = _dotted(node.func.value)
        if leaf == "free" and "arena" in receiver:
            return [_root_name(node.args[0])]
        if leaf in ("read", "discard") and "pool" in receiver:
            return [_root_name(node.args[0])]
    return []


@dataclass(frozen=True)
class _Report:
    line: int
    rule: str
    message: str


class _LifetimeAnalysis:
    """View-lifetime dataflow over one function's CFG."""

    def __init__(
        self,
        info: FunctionInfo,
        cfg: CFG,
        borrows: Set[str],
    ):
        self.info = info
        self.cfg = cfg
        self.borrows = borrows
        self.detaches = DETACHES_DECORATOR in info.decorators
        self.reports: List[_Report] = []
        self._collecting = False

    # -- driver -------------------------------------------------------------
    def run(self) -> None:
        if self.cfg.entry is None:
            return
        in_states: Dict[int, State] = {self.cfg.entry: {}}
        out_states: Dict[int, State] = {}
        worklist = [self.cfg.entry]
        iterations = 0
        bound = _FIXPOINT_LIMIT * max(1, len(self.cfg.nodes))
        while worklist and iterations < bound:
            iterations += 1
            node_id = worklist.pop(0)
            in_state = in_states.get(node_id, {})
            out_state = self._transfer(node_id, in_state, collect=False)
            if node_id in out_states and out_states[node_id] == out_state:
                continue
            out_states[node_id] = out_state
            for successor, _kind in self.cfg.successors(node_id):
                if successor == EXIT:
                    continue
                merged = _merge_states(in_states.get(successor, {}), out_state)
                if merged != in_states.get(successor):
                    in_states[successor] = merged
                    if successor not in worklist:
                        worklist.append(successor)
        self._collecting = True
        for node_id in self.cfg.nodes:
            self._transfer(node_id, in_states.get(node_id, {}), collect=True)

    def _transfer(self, node_id: int, in_state: State, collect: bool) -> State:
        previous = self._collecting
        self._collecting = collect
        try:
            statement = self.cfg.nodes[node_id]
            state = dict(in_state)
            self._apply(statement, state)
            return state
        finally:
            self._collecting = previous

    def _report(self, line: int, rule: str, message: str) -> None:
        if not self._collecting:
            return
        report = _Report(line, rule, message)
        if report not in self.reports:
            self.reports.append(report)

    # -- statement dispatch ---------------------------------------------------
    def _apply(self, statement: ast.stmt, state: State) -> None:
        if isinstance(statement, ast.Assign) and len(statement.targets) == 1:
            self._apply_assign(statement.targets[0], statement.value, state)
            return
        if isinstance(statement, ast.AnnAssign) and statement.value is not None:
            self._apply_assign(statement.target, statement.value, state)
            return
        if isinstance(statement, ast.AugAssign):
            self._check_readonly_write(statement.target, state)
            self._scan(statement.value, state)
            return
        if isinstance(statement, ast.Expr):
            self._apply_expr_stmt(statement.value, state)
            return
        if isinstance(statement, ast.Return):
            if statement.value is not None:
                self._apply_return(statement.value, state)
            return
        if isinstance(statement, ast.Delete):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    state.pop(target.id, None)
            return
        if isinstance(statement, ast.If):
            self._scan(statement.test, state)
            return
        if isinstance(statement, ast.While):
            self._scan(statement.test, state)
            return
        if isinstance(statement, (ast.For, ast.AsyncFor)):
            self._scan(statement.iter, state)
            return
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                self._scan(item.context_expr, state)
            return
        for child in ast.iter_child_nodes(statement):
            if isinstance(child, ast.expr):
                self._scan(child, state)

    # -- value classification --------------------------------------------------
    def _classify(self, value: ast.expr, target: str, state: State) -> Optional[VState]:
        """The :class:`VState` produced by assigning ``value``, if tracked."""
        source = _unwrap_subscript(value)
        line = getattr(value, "lineno", 0)
        if _is_zero_copy_deserialize(source):
            return VState(VIEW, True, target, frozenset({LIVE}), line)
        if _arena_call(source, "alloc") is not None:
            return VState(BLOCK, False, target, frozenset({LIVE}), line)
        view_call = _arena_call(source, "view")
        if view_call is not None:
            owner = _root_name(view_call.args[0]) if view_call.args else ""
            tracked = state.get(owner)
            if tracked is not None:
                owner = tracked.owner
            return VState(VIEW, False, owner or target, frozenset({LIVE}), line)
        if isinstance(source, ast.Attribute):
            base = state.get(_root_name(source))
            if base is not None and base.kind == BLOCK:
                if source.attr == "buf":
                    return VState(VIEW, False, base.owner, base.statuses, line)
                if source.attr == "handle":
                    return VState(HANDLE, False, base.owner, base.statuses, line)
        return None

    # -- statement forms --------------------------------------------------------
    def _apply_assign(self, target: ast.expr, value: ast.expr, state: State) -> None:
        if isinstance(target, ast.Name):
            produced = self._classify(value, target.id, state)
            if produced is not None:
                state[target.id] = produced
                return
            if isinstance(value, ast.Name) and value.id in state:
                state[target.id] = state[value.id]
                return
            self._scan(value, state)
            state.pop(target.id, None)
            return
        # Attribute/subscript/tuple target.
        self._check_readonly_write(target, state)
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            escaping = _unwrap_subscript(value)
            if isinstance(escaping, ast.Name):
                self._check_escape(escaping.id, value.lineno,
                                   "stored outside the frame", state)
            elif self._classify(value, "", state) is not None:
                vstate = self._classify(value, "", state)
                if vstate is not None and vstate.kind == VIEW:
                    self._escape_report(None, value.lineno,
                                        "stored outside the frame")
        self._scan(value, state)

    def _check_readonly_write(self, target: ast.expr, state: State) -> None:
        """Element/slice write through a read-only view."""
        if not isinstance(target, (ast.Subscript, ast.Name)):
            return
        node: ast.AST = target
        if isinstance(target, ast.Name):
            return  # rebinding a name is not a buffer write
        root = _root_name(node)
        vstate = state.get(root)
        if vstate is not None and vstate.kind == VIEW and vstate.readonly:
            self._report(
                getattr(target, "lineno", 0),
                WRITE_THROUGH_READONLY_VIEW,
                f"write through read-only zero-copy view '{root}' — "
                "deserialize with copy=True (or copy the buffer) before "
                "mutating",
            )

    def _apply_expr_stmt(self, value: ast.expr, state: State) -> None:
        if isinstance(value, ast.Call):
            # ``v.release()`` on a tracked view: the borrow ends here.
            if (
                isinstance(value.func, ast.Attribute)
                and value.func.attr == "release"
                and isinstance(value.func.value, ast.Name)
                and value.func.value.id in state
            ):
                state.pop(value.func.value.id, None)
                return
        self._scan(value, state)

    def _apply_return(self, value: ast.expr, state: State) -> None:
        escaping = _unwrap_subscript(value)
        if isinstance(escaping, ast.Name):
            self._check_escape(escaping.id, value.lineno,
                               "returned to the caller", state)
            return
        produced = self._classify(value, "", state)
        if produced is not None and produced.kind == VIEW:
            self._escape_report(None, value.lineno, "returned to the caller")
            return
        if isinstance(escaping, ast.Call):
            # Returning a call's *result*: the view arguments follow normal
            # call rules (borrowing/safe callees consume them in place).
            self._scan(value, state)
            return
        # A view inside a returned container escapes just the same.
        for node in ast.walk(value):
            if isinstance(node, ast.Name):
                self._check_escape(node.id, value.lineno,
                                   "returned to the caller", state)
        self._scan(value, state)

    # -- view events ---------------------------------------------------------
    def _check_escape(self, var: str, line: int, how: str, state: State) -> None:
        vstate = state.get(var)
        if vstate is None or vstate.kind != VIEW:
            return
        self._check_stale_use(var, line, state)
        if not self.detaches:
            self._escape_report(var, line, how)
        state.pop(var, None)

    def _escape_report(self, var: Optional[str], line: int, how: str) -> None:
        if self.detaches:
            return
        name = f"'{var}' " if var else ""
        self._report(
            line,
            VIEW_ESCAPE,
            f"zero-copy view {name}escapes ({how}) — copy the bytes first "
            "or annotate the function @detaches_view",
        )

    def _free(self, root: str, line: int, state: State) -> None:
        """Storage owned by ``root`` is released at ``line``."""
        for var, vstate in list(state.items()):
            if var != root and vstate.owner != root:
                continue
            if (
                vstate.kind == VIEW
                and var != root
                and LIVE in vstate.statuses
            ):
                self._report(
                    line,
                    RELEASE_WHILE_BORROWED,
                    f"block '{root}' is released here while zero-copy view "
                    f"'{var}' (created line {vstate.src_line}) is still "
                    "borrowed — release the view first",
                )
            state[var] = VState(
                vstate.kind, vstate.readonly, vstate.owner,
                frozenset({FREED}), vstate.src_line,
            )

    def _check_stale_use(self, var: str, line: int, state: State) -> None:
        vstate = state.get(var)
        if (
            vstate is not None
            and vstate.kind == VIEW
            and vstate.statuses == frozenset({FREED})
        ):
            self._report(
                line,
                RELEASE_WHILE_BORROWED,
                f"zero-copy view '{var}' is used after its backing block "
                "was released",
            )

    # -- generic expression scan ------------------------------------------------
    def _scan(self, expr: ast.expr, state: State) -> None:
        if expr is None:  # defensive: optional sub-expressions
            return
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            for root in _freed_roots(node):
                if root:
                    self._free(root, node.lineno, state)
            leaf = _call_leaf(node)
            frees = set(_freed_roots(node))
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                unwrapped = _unwrap_subscript(arg)
                if not isinstance(unwrapped, ast.Name):
                    continue
                var = unwrapped.id
                vstate = state.get(var)
                if vstate is None or vstate.kind != VIEW:
                    continue
                self._check_stale_use(var, node.lineno, state)
                if leaf in SAFE_VIEW_CALLS or leaf in self.borrows:
                    continue
                if var in frees or (vstate.owner in frees):
                    continue  # the free call itself consumes the reference
                self._check_escape(var, node.lineno, "passed to a call", state)
        # Bare stale uses outside call arguments (comparisons, slicing...).
        for node in ast.walk(expr):
            if isinstance(node, ast.Name):
                self._check_stale_use(node.id, getattr(node, "lineno", 0), state)


# -- lane-contract rule ---------------------------------------------------------


def _scoped_walk(root: ast.AST):
    """Walk ``root`` without descending into nested function scopes.

    Each function is its own analysis scope (``iter_functions`` yields it
    separately); the module scope covers only statements outside every
    function, so constructor sites are reported exactly once.
    """
    stack: List[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.append(child)


def _lane_policy(call: ast.Call) -> str:
    """Declared control policy of a ``LaneHeaderQueue(...)`` call site."""
    for keyword in call.keywords:
        if keyword.arg != "control_policy":
            continue
        value = keyword.value
        if isinstance(value, ast.Constant) and value.value == "unbounded":
            return "unbounded"
        leaf = value.attr if isinstance(value, ast.Attribute) else getattr(
            value, "id", ""
        )
        if leaf == "CONTROL_UNBOUNDED":
            return "unbounded"
        return "block"
    return "block"


def _has_reclaim(call: ast.Call) -> bool:
    return any(keyword.arg == "reclaim" for keyword in call.keywords)


def _lane_constructor_findings(
    path: str, scope: str, node: ast.AST, findings: List[Finding]
) -> Dict[str, ast.Call]:
    """Report contract violations at constructor sites inside ``node``.

    Returns ``dotted target -> constructor call`` for CONTROL_UNBOUNDED
    queues assigned in this scope, for the discarded-put check.
    """
    unbounded: Dict[str, ast.Call] = {}
    for child in _scoped_walk(node):
        if not (isinstance(child, ast.Call) and _call_leaf(child) == "LaneHeaderQueue"):
            continue
        policy = _lane_policy(child)
        if policy == "block" and not _has_reclaim(child):
            findings.append(
                Finding(
                    path,
                    child.lineno,
                    Severity.ERROR,
                    LANE_CONTRACT,
                    "LaneHeaderQueue with CONTROL_BLOCK policy has no "
                    "reclaim= callback — rejected/shed headers self-reclaim "
                    "through it (pass reclaim=..., or an explicit "
                    "reclaim=None to declare the headers own nothing)",
                    scope,
                )
            )
    # Map assigned names to unbounded constructor calls (same walk, but on
    # Assign statements so we know the target spelling).
    for child in _scoped_walk(node):
        if not isinstance(child, ast.Assign) or len(child.targets) != 1:
            continue
        value = child.value
        if not (isinstance(value, ast.Call) and _call_leaf(value) == "LaneHeaderQueue"):
            continue
        if _lane_policy(value) != "unbounded":
            continue
        target = child.targets[0]
        name = _dotted(target) if isinstance(
            target, (ast.Name, ast.Attribute)
        ) else ""
        if name:
            unbounded[name] = value
    return unbounded


def _lane_discard_findings(
    path: str,
    scope: str,
    node: ast.AST,
    unbounded: Dict[str, ast.Call],
    findings: List[Finding],
) -> None:
    """Flag bare ``q.put(...)`` statements on CONTROL_UNBOUNDED queues."""
    if not unbounded:
        return
    for child in _scoped_walk(node):
        if not isinstance(child, ast.Expr):
            continue
        value = child.value
        if not (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr in ("put", "put_many")
        ):
            continue
        receiver = _dotted(value.func.value)
        if receiver in unbounded:
            findings.append(
                Finding(
                    path,
                    value.lineno,
                    Severity.ERROR,
                    LANE_CONTRACT,
                    f"result of {value.func.attr}() on a CONTROL_UNBOUNDED "
                    "lane is discarded — on False the caller owns the "
                    "rejected header's reclaim (check the return value)",
                    scope,
                )
            )


def run_lane_contract_rules(
    sources: List[Tuple[str, ast.AST]]
) -> List[Finding]:
    """Check ``LaneHeaderQueue`` call sites against reclaim contracts."""
    findings: List[Finding] = []
    for path, tree in sources:
        if "LaneHeaderQueue" not in ast.dump(tree):
            continue
        scopes: List[Tuple[str, ast.AST]] = [("<module>", tree)]
        for info in iter_functions([(path, tree)]):
            scopes.append((info.qualname, info.node))
        for scope, node in scopes:
            unbounded = _lane_constructor_findings(path, scope, node, findings)
            _lane_discard_findings(path, scope, node, unbounded, findings)
    return findings


# -- entry point -----------------------------------------------------------------


_LIFETIME_MARKERS = ("deserialize", "read_body", "discard_body", ".alloc", ".view")


def _has_lifetime_ops(info: FunctionInfo) -> bool:
    for node in ast.walk(info.node):
        if not isinstance(node, ast.Call):
            continue
        leaf = _call_leaf(node)
        if leaf in ("deserialize", "read_body", "discard_body"):
            return True
        if isinstance(node.func, ast.Attribute):
            receiver = _dotted(node.func.value)
            if leaf in ("alloc", "view", "free") and "arena" in receiver:
                return True
            if leaf in ("read", "discard") and "pool" in receiver:
                return True
    return False


def _pytest_raises_ranges(tree: ast.AST) -> List[Tuple[int, int]]:
    """Line ranges of ``with pytest.raises(...)`` blocks."""
    ranges: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call) and "raises" in _dotted(expr.func):
                end = getattr(node, "end_lineno", node.lineno) or node.lineno
                ranges.append((node.lineno, end))
                break
    return ranges


def run_lifetime_rules(
    sources: List[Tuple[str, ast.AST]]
) -> List[Finding]:
    """Run the zero-copy lifetime pass over parsed sources."""
    functions = list(iter_functions(sources))
    borrows = {
        info.name for info in functions if BORROWS_DECORATOR in info.decorators
    }
    severities = {
        VIEW_ESCAPE: Severity.WARNING,
        RELEASE_WHILE_BORROWED: Severity.ERROR,
        WRITE_THROUGH_READONLY_VIEW: Severity.ERROR,
    }
    findings: List[Finding] = []
    for info in functions:
        if not _has_lifetime_ops(info):
            continue
        analysis = _LifetimeAnalysis(info, build_cfg(info.node), borrows)
        analysis.run()
        for report in analysis.reports:
            findings.append(
                Finding(
                    info.path,
                    report.line,
                    severities[report.rule],
                    report.rule,
                    report.message,
                    info.qualname,
                )
            )
    findings.extend(run_lane_contract_rules(sources))
    suppress: Dict[str, List[Tuple[int, int]]] = {}
    for path, tree in sources:
        ranges = _pytest_raises_ranges(tree)
        if ranges:
            suppress[path] = ranges
    return [
        finding
        for finding in findings
        if not any(
            start <= finding.line <= end
            for start, end in suppress.get(finding.path, ())
        )
    ]
