"""Message-protocol extraction.

The routing table of this framework is implicit: a :class:`~repro.core.message.MsgType`
is *sent* wherever a literal ``MsgType.X`` is passed to ``make_message`` /
``make_header`` / ``Message(...)``, and *handled* wherever code compares a
received message's type against ``MsgType.X`` (``==``, ``!=``, ``in``),
uses it as a dispatch-dict key, or passes it to a handler-registration
call.  This module recovers both sides of that table from the AST, so the
``unrouted-msgtype`` lint rule and the routing-table exhaustiveness test
can cross-check them without importing (or running) the framework.

Types that are sent but deliberately have no framework-level handler are
listed in :data:`EXPLICITLY_UNROUTED`; new message types must either gain a
handler or be added there *explicitly* — they cannot silently drop.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

#: MsgType members that are sent without a framework-registered handler, on
#: purpose.  DATA is the generic payload type: benchmark workloads (e.g. the
#: dummy DRL algorithm) consume it straight off their endpoint's receive
#: buffer without a type dispatch.
EXPLICITLY_UNROUTED: Set[str] = {"DATA"}

#: Call names whose MsgType argument means "this type is being sent".
_SEND_CALLS = {"make_message", "make_header", "Message"}

#: Call names whose MsgType argument registers a handler/route.
_REGISTER_CALLS = {"register_handler", "register_route", "add_route", "subscribe"}


@dataclass(frozen=True)
class Site:
    """One source location referencing a MsgType member."""

    path: str
    line: int
    member: str
    scope: str = ""


@dataclass
class Protocol:
    """Send/handle sides of the message protocol, plus the member list."""

    members: List[str] = field(default_factory=list)
    sends: Dict[str, List[Site]] = field(default_factory=dict)
    handlers: Dict[str, List[Site]] = field(default_factory=dict)

    def sent_types(self) -> Set[str]:
        return set(self.sends)

    def handled_types(self) -> Set[str]:
        return set(self.handlers)

    def unrouted_sends(self, ignored: Set[str] = frozenset()) -> List[Site]:
        """Send sites whose type has no handler and is not explicitly ignored."""
        ignored = set(ignored) | EXPLICITLY_UNROUTED
        sites: List[Site] = []
        for member, send_sites in sorted(self.sends.items()):
            if member in self.handlers or member in ignored:
                continue
            sites.extend(send_sites)
        return sites

    def unhandled_members(self, ignored: Set[str] = frozenset()) -> List[str]:
        """MsgType members with neither a handler nor an explicit-ignore entry."""
        ignored = set(ignored) | EXPLICITLY_UNROUTED
        return [
            member
            for member in self.members
            if member not in self.handlers and member not in ignored
        ]


def _msgtype_member(node: ast.AST) -> str:
    """``'X'`` when ``node`` is the attribute access ``MsgType.X``, else ``''``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "MsgType"
    ):
        return node.attr
    return ""


class _ProtocolVisitor(ast.NodeVisitor):
    def __init__(self, path: str):
        self.path = path
        self.scope_stack: List[str] = []
        self.sends: List[Site] = []
        self.handlers: List[Site] = []
        self.members: List[str] = []
        #: MsgType.X nodes already claimed by a send/handle pattern, by id()
        self._claimed: Set[int] = set()

    # -- scopes -------------------------------------------------------------
    def _scoped(self, node: ast.AST) -> None:
        self.scope_stack.append(getattr(node, "name", "<scope>"))
        self.generic_visit(node)
        self.scope_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._scoped(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._scoped(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if node.name == "MsgType":
            for statement in node.body:
                if (
                    isinstance(statement, ast.Assign)
                    and len(statement.targets) == 1
                    and isinstance(statement.targets[0], ast.Name)
                ):
                    self.members.append(statement.targets[0].id)
        self._scoped(node)

    def _site(self, node: ast.AST, member: str) -> Site:
        return Site(self.path, getattr(node, "lineno", 0), member, ".".join(self.scope_stack))

    # -- send side ----------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
        bucket = None
        if name in _SEND_CALLS:
            bucket = self.sends
        elif name in _REGISTER_CALLS:
            bucket = self.handlers
        if bucket is not None:
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                member = _msgtype_member(arg)
                if member:
                    bucket.append(self._site(arg, member))
                    self._claimed.add(id(arg))
        self.generic_visit(node)

    # -- handle side ---------------------------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        for operand in [node.left] + list(node.comparators):
            member = _msgtype_member(operand)
            if member:
                self.handlers.append(self._site(operand, member))
                self._claimed.add(id(operand))
            # membership tests: ``msg_type in (MsgType.A, MsgType.B)``
            if isinstance(operand, (ast.Tuple, ast.List, ast.Set)):
                for element in operand.elts:
                    element_member = _msgtype_member(element)
                    if element_member:
                        self.handlers.append(self._site(element, element_member))
                        self._claimed.add(id(element))
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:
        # Dispatch tables: ``{MsgType.X: handle_x, ...}``
        for key in node.keys:
            if key is None:
                continue
            member = _msgtype_member(key)
            if member:
                self.handlers.append(self._site(key, member))
                self._claimed.add(id(key))
        self.generic_visit(node)

    def visit_MatchValue(self, node: ast.AST) -> None:
        member = _msgtype_member(getattr(node, "value", None))
        if member:
            self.handlers.append(self._site(node, member))
        self.generic_visit(node)


def extract_from_sources(sources: List[Tuple[str, ast.AST]]) -> Protocol:
    """Build the protocol table from already-parsed ``(path, tree)`` pairs."""
    protocol = Protocol()
    for path, tree in sources:
        visitor = _ProtocolVisitor(path)
        visitor.visit(tree)
        protocol.members.extend(
            member for member in visitor.members if member not in protocol.members
        )
        for site in visitor.sends:
            protocol.sends.setdefault(site.member, []).append(site)
        for site in visitor.handlers:
            protocol.handlers.setdefault(site.member, []).append(site)
    return protocol


def extract_protocol(root: str) -> Protocol:
    """Parse every ``.py`` under ``root`` and extract the protocol table."""
    from .engine import parse_tree  # local import to avoid a cycle

    return extract_from_sources(parse_tree(root))
