"""Findings and the baseline machinery.

A :class:`Finding` is one analyzer diagnostic anchored to a file and line.
Baselines make the analyzer adoptable on a codebase with pre-existing
findings: accepted findings are committed to a text file and CI fails only
when a *new* finding appears.

Baseline entries are **fingerprints**, not ``file:line`` pairs — they name
the file, rule, enclosing scope, and message, so unrelated edits that shift
line numbers do not invalidate the baseline.  Duplicate fingerprints are
counted: two identical violations in one scope need two baseline entries.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Dict, Iterable, List, Tuple


class Severity(str, Enum):
    """Finding severity; ``error`` findings are meant to gate CI."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a lint rule."""

    path: str  #: path as given to the engine (normalized to forward slashes)
    line: int
    severity: Severity
    rule: str  #: kebab-case rule name, e.g. ``lock-held-blocking-call``
    message: str
    scope: str = ""  #: dotted enclosing scope, e.g. ``Broker.stop``

    def __post_init__(self) -> None:
        # Every finding must be addressable as ``path:line`` — GitHub
        # workflow annotations silently drop the file link otherwise.
        # Rules that anchor to synthesized nodes (lineno fallbacks of 0)
        # or whole-tree facts (no single file) get pinned to line 1 /
        # ``<unknown>`` rather than emitting an unclickable annotation.
        if not self.path:
            object.__setattr__(self, "path", "<unknown>")
        else:
            object.__setattr__(self, "path", self.path.replace("\\", "/"))
        if self.line < 1:
            object.__setattr__(self, "line", 1)

    def format(self) -> str:
        """The canonical ``file:line severity rule message`` output line."""
        return f"{self.path}:{self.line} {self.severity} {self.rule} {self.message}"

    def fingerprint(self) -> str:
        """Line-number-independent identity used by the baseline."""
        return f"{self.path}::{self.rule}::{self.scope}::{self.message}"


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.message))


@dataclass
class BaselineDiff:
    """Result of comparing current findings against a baseline."""

    new: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    stale: List[str] = field(default_factory=list)  #: fingerprints no longer seen


class Baseline:
    """A committed multiset of accepted finding fingerprints."""

    HEADER = (
        "# repro.analysis baseline — accepted findings, one fingerprint per line.\n"
        "# Regenerate with: python -m repro.analysis src tests benchmarks"
        " --exclude tests/analysis/fixtures --write-baseline\n"
    )

    def __init__(self, fingerprints: Iterable[str] = ()):
        self._counts: Counter = Counter(fingerprints)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        fingerprints = []
        for raw in path.read_text(encoding="utf-8").splitlines():
            line = raw.strip()
            if line and not line.startswith("#"):
                fingerprints.append(line)
        return cls(fingerprints)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls(finding.fingerprint() for finding in findings)

    def save(self, path: Path) -> None:
        """Write the baseline: sorted fingerprints, grouped by source tree.

        Output is fully deterministic (sorted within sections, sections in
        sorted order) so regenerating the baseline yields a reviewable diff.
        """
        sections: Dict[str, List[str]] = {}
        for fingerprint in sorted(self._counts.elements()):
            tree = fingerprint.split("/", 1)[0] if "/" in fingerprint else fingerprint
            sections.setdefault(tree, []).append(fingerprint)
        lines = [self.HEADER]
        for tree in sorted(sections):
            lines.append(f"\n# -- {tree}/ --\n")
            for fingerprint in sections[tree]:
                lines.append(fingerprint + "\n")
        path.write_text("".join(lines), encoding="utf-8")

    def __len__(self) -> int:
        return sum(self._counts.values())

    def __contains__(self, fingerprint: str) -> bool:
        return self._counts[fingerprint] > 0

    def diff(self, findings: Iterable[Finding]) -> BaselineDiff:
        """Split ``findings`` into new vs baselined; report stale entries."""
        diff = BaselineDiff()
        remaining: Dict[str, int] = dict(self._counts)
        for finding in sort_findings(findings):
            fingerprint = finding.fingerprint()
            if remaining.get(fingerprint, 0) > 0:
                remaining[fingerprint] -= 1
                diff.baselined.append(finding)
            else:
                diff.new.append(finding)
        for fingerprint, count in sorted(remaining.items()):
            diff.stale.extend([fingerprint] * count)
        return diff


def summarize(diff: BaselineDiff) -> Tuple[int, int, int]:
    """(new, baselined, stale) counts."""
    return len(diff.new), len(diff.baselined), len(diff.stale)
