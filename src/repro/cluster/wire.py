"""The ``wire`` deployment mode: machines joined by real TCP sockets.

Third mode next to in-proc threads and ``repro.mp`` processes: the
cluster's data fabric becomes a :class:`~repro.transport.tcp.SocketFabric`
whose inter-machine star is real TCP connections, addressed by each
:class:`~repro.core.config.MachineSpec`'s ``host:port`` ``address`` (or
auto-bound loopback listeners when unset).  Everything above the fabric —
brokers, routers, coalescing, flow control, tracing — is unchanged, which
is the point: the two-machine benchmarks stop *modelling* a NIC and start
*measuring* one.

:func:`run_wire_session` is the one-call loopback entry point the
wire-smoke CI job and ``bench_fig5_two_machines.py --transport wire`` use.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..core.config import MachineSpec, StopCondition, XingTianConfig
from ..core.tracing import Tracer
from ..transport.tcp import SocketFabric


def two_machine_wire_config(
    *,
    algorithm: str = "dqn",
    environment: str = "CartPole",
    model: str = "qnet",
    local_explorers: int = 1,
    remote_explorers: int = 2,
    addresses: Optional[Sequence[str]] = None,
    stop: Optional[StopCondition] = None,
    seed: Optional[int] = 0,
    **overrides: Any,
) -> XingTianConfig:
    """A two-machine config on the ``wire`` transport.

    Machine 0 hosts the learner (the data-transmission center, Fig. 2b)
    plus ``local_explorers``; machine 1 hosts ``remote_explorers`` whose
    rollouts cross a real socket.  ``addresses`` pins the two listeners to
    explicit ``host:port`` endpoints for an actual two-host deployment;
    unset, both bind loopback ephemerals — same code path, one host.
    """
    if addresses is not None and len(addresses) != 2:
        raise ValueError("addresses must name exactly two machines")
    machines = [
        MachineSpec(
            "m0",
            explorers=local_explorers,
            has_learner=True,
            address=addresses[0] if addresses else None,
        ),
        MachineSpec(
            "m1",
            explorers=remote_explorers,
            address=addresses[1] if addresses else None,
        ),
    ]
    return XingTianConfig(
        algorithm=algorithm,
        environment=environment,
        model=model,
        machines=machines,
        transport="wire",
        stop=stop or StopCondition(max_seconds=5.0),
        seed=seed,
        **overrides,
    )


@dataclass
class WireRunReport:
    """A wire-mode run plus what actually crossed the sockets."""

    result: Any  #: the :class:`~repro.runtime.RunResult`
    #: per-link wire counters from :meth:`SocketFabric.link_stats`
    link_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: fabric tracer events (wire_send/wire_deliver stage pairs), ready to
    #: merge with other per-process trace files
    trace_events: List[Any] = field(default_factory=list)

    @property
    def wire_bytes_sent(self) -> float:
        return sum(
            stats.get("bytes_sent", 0.0)
            for name, stats in self.link_stats.items()
            if not name.startswith("listen:")
        )

    @property
    def wire_items_received(self) -> float:
        return sum(
            stats.get("items_received", 0.0)
            for name, stats in self.link_stats.items()
            if name.startswith("listen:")
        )


def run_wire_session(
    config: Optional[XingTianConfig] = None,
    *,
    trace: bool = False,
    require_traffic: bool = True,
) -> WireRunReport:
    """Run a wire-transport session end to end and report link activity.

    Builds the cluster around an explicitly-constructed
    :class:`SocketFabric` so link counters (and, with ``trace``, the wire
    stage events) survive the run; asserts the session actually pushed
    bytes through sockets when ``require_traffic`` — a wire smoke that
    silently fell back to in-proc links must fail, not pass.
    """
    # Local imports: runtime imports this package, and the registries must
    # be populated (runtime pulls in algorithms/envs) before build_cluster.
    from ..runtime import XingTianSession
    from .cluster import build_cluster

    if config is None:
        config = two_machine_wire_config()
    if config.transport != "wire":
        raise ValueError("run_wire_session needs config.transport == 'wire'")
    tracer = Tracer() if trace else None
    fabric = SocketFabric("data", tracer=tracer)
    session = XingTianSession(config)

    # XingTianSession.run builds its own cluster; run the same lifecycle
    # here with our fabric substituted (the documented build_cluster hook)
    # so counters and trace events survive past teardown.
    cluster = build_cluster(config, data_fabric=fabric)
    started = time.monotonic()
    cluster.start()
    try:
        while True:
            reason = cluster.center.should_stop()
            if reason is not None:
                cluster.center.shutdown_reason = reason
                break
            cluster.raise_worker_errors()
            time.sleep(0.05)
    finally:
        elapsed = time.monotonic() - started
        result = session._collect(cluster, elapsed)
        link_stats = fabric.link_stats()
        trace_events = list(tracer.events()) if tracer is not None else []
        fabric.raise_errors()
        cluster.stop()
    if require_traffic:
        sent = sum(
            stats.get("bytes_sent", 0.0)
            for name, stats in link_stats.items()
            if not name.startswith("listen:")
        )
        if sent <= 0:
            raise RuntimeError(
                "wire session moved no bytes over sockets — the data plane "
                "fell back to in-proc links"
            )
    return WireRunReport(
        result=result, link_stats=link_stats, trace_events=trace_events
    )
