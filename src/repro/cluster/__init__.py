"""Multi-machine deployment of XingTian (simulated or real TCP wire)."""

from .machine import SimulatedMachine
from .cluster import Cluster, build_cluster
from .wire import WireRunReport, run_wire_session, two_machine_wire_config

__all__ = [
    "SimulatedMachine",
    "Cluster",
    "build_cluster",
    "WireRunReport",
    "run_wire_session",
    "two_machine_wire_config",
]
