"""Multi-machine deployment of XingTian (simulated; see DESIGN.md §2)."""

from .machine import SimulatedMachine
from .cluster import Cluster, build_cluster

__all__ = ["SimulatedMachine", "Cluster", "build_cluster"]
