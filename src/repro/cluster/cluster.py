"""Cluster builder: config → machines, brokers, fabrics, processes.

Mirrors the paper's launch sequence (§3.2.2): a center controller starts a
controller per machine over a fully-connected control fabric, brokers are
created per machine and joined by a data fabric with the learner's machine
as the center for data transmission, and finally the learner and explorers
are attached to their local brokers.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

import numpy as np

from ..api.agent import Agent
from ..api.algorithm import Algorithm
from ..api.registry import registry
from ..core.broker import Broker
from ..core.checkpoint import Checkpointer
from ..core.compression import CompressionPolicy
from ..core.config import SupervisionSpec, XingTianConfig
from ..core.controller import CenterController, Controller
from ..core.explorer import ExplorerProcess
from ..core.learner import LearnerProcess
from ..core.object_store import InMemoryObjectStore
from ..core.supervision import RestartPolicy, Supervisor
from ..transport.fabric import Fabric
from ..transport.tcp import SocketFabric
from .machine import SimulatedMachine

LEARNER_NAME = "learner"


class Cluster:
    """A built deployment, ready to start."""

    def __init__(
        self,
        config: XingTianConfig,
        machines: List[SimulatedMachine],
        center: CenterController,
        data_fabric: Fabric,
        control_fabric: Fabric,
        instrument_hooks: Optional[List[Callable[[Any], None]]] = None,
    ):
        self.config = config
        self.machines = machines
        self.center = center
        self.data_fabric = data_fabric
        self.control_fabric = control_fabric
        self._started = False
        #: attached :class:`repro.obs.Telemetry`, if any
        self.telemetry: Optional[Any] = None
        # Shared with the supervisor's restart closures: every hook runs on
        # a freshly built replacement process before it starts, so restarts
        # stay instrumented (tracer + metrics re-attached).
        self._instrument_hooks = (
            instrument_hooks if instrument_hooks is not None else []
        )

    def add_instrument_hook(self, hook: Callable[[Any], None]) -> None:
        """Run ``hook(process)`` on every restarted replacement process."""
        self._instrument_hooks.append(hook)

    # -- lookups ---------------------------------------------------------------
    @property
    def learner(self) -> LearnerProcess:
        for machine in self.machines:
            for process in machine.processes:
                if isinstance(process, LearnerProcess):
                    return process
        raise LookupError("no learner deployed")

    @property
    def explorers(self) -> List[ExplorerProcess]:
        return [
            process
            for machine in self.machines
            for process in machine.processes
            if isinstance(process, ExplorerProcess)
        ]

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for machine in self.machines:
            machine.controller.start_all()

    def stop(self) -> None:
        # The center broadcasts shutdown; other controllers follow (§3.2.2).
        self.center.stop_all()
        for machine in self.machines:
            machine.controller.stop_all()
        self.data_fabric.close()
        self.control_fabric.close()

    def raise_worker_errors(self) -> None:
        """Surface any exception captured in a workhorse thread."""
        for machine in self.machines:
            for process in machine.processes:
                error = getattr(process.workhorse, "error", None)
                if error is not None:
                    raise error


def build_cluster(
    config: XingTianConfig,
    *,
    data_fabric: Optional[Fabric] = None,
    control_fabric: Optional[Fabric] = None,
) -> Cluster:
    """Construct the full deployment described by ``config``.

    ``data_fabric``/``control_fabric`` may be supplied to substitute an
    instrumented fabric — e.g. a :class:`repro.testing.faults.FaultyFabric`
    that drops or delays inter-machine traffic.
    """
    config.validate()
    probe_env = registry.get("environment", config.environment)(dict(config.env_config))
    model_config = _fill_model_config(config, probe_env)
    probe_env.close()

    if data_fabric is None:
        # The wire transport swaps the simulated data plane for real TCP
        # sockets; the control fabric stays in-proc (commands are tiny and
        # this process hosts every controller either way).
        data_fabric = (
            SocketFabric("data") if config.transport == "wire" else Fabric("data")
        )
    control_fabric = control_fabric if control_fabric is not None else Fabric("control")
    compression = CompressionPolicy(
        enabled=config.compression_enabled, threshold=config.compression_threshold
    )

    learner_machine_name = config.learner_machine.name
    machines: List[SimulatedMachine] = []
    brokers: Dict[str, Broker] = {}
    center: Optional[CenterController] = None
    supervision = config.supervision

    for spec in config.machines:
        store = InMemoryObjectStore(
            copy_on_fetch=config.copy_on_fetch,
            compression=compression,
            copy_bandwidth=config.copy_bandwidth,
        )
        broker = Broker(
            f"{spec.name}.broker",
            store=store,
            fabric=data_fabric,
            # Under supervision a worker may legitimately be gone for the
            # length of a restart backoff; in-flight messages to it are
            # dropped (and counted) rather than poisoning the router.
            on_unroutable="drop" if supervision is not None else "raise",
            coalescing=config.coalescing,
            flow=config.flow_control,
        )
        brokers[spec.name] = broker
        if spec.name == learner_machine_name:
            controller: Controller = CenterController(
                f"{spec.name}.controller",
                broker,
                config.stop,
                control_fabric=control_fabric,
            )
            center = controller
        else:
            controller = Controller(f"{spec.name}.controller", broker, control_fabric)
        machines.append(SimulatedMachine(spec.name, broker, controller))
    assert center is not None

    _wire_fabrics(config, brokers, data_fabric, control_fabric, learner_machine_name)
    _register_routes(config, brokers, learner_machine_name)

    # Deploy processes.  Each process gets a zero-argument build closure so
    # the supervisor can rebuild a dead one from scratch (fresh endpoint,
    # fresh agent/algorithm) and re-register it with the local broker.
    explorer_names = config.explorer_names()
    controller_endpoint = CenterController.ENDPOINT_NAME
    heartbeat = supervision.heartbeat_interval if supervision is not None else None
    checkpointer: Optional[Checkpointer] = None
    if supervision is not None and supervision.checkpoint_dir is not None:
        checkpointer = Checkpointer(
            supervision.checkpoint_dir,
            every_train_steps=supervision.checkpoint_every,
            keep=supervision.checkpoint_keep,
        )
    supervisor: Optional[Supervisor] = None
    if supervision is not None:
        supervisor = Supervisor(
            suspect_after=supervision.suspect_after,
            dead_after=supervision.dead_after,
            policy=RestartPolicy(
                max_restarts=supervision.max_restarts,
                backoff_base=supervision.backoff_base,
                backoff_max=supervision.backoff_max,
                jitter=supervision.jitter,
            ),
            collector=center.collector,
            allow_degraded=supervision.allow_degraded,
            seed=supervision.seed,
        )
        center.attach_supervisor(supervisor)

    seed_base = config.seed if config.seed is not None else 0
    # Filled later by Cluster.add_instrument_hook (telemetry attachment);
    # restart closures capture the list so late hooks still apply.
    instrument_hooks: List[Callable[[Any], None]] = []
    explorer_index = 0
    for spec, machine in zip(config.machines, machines):
        broker = brokers[spec.name]
        if spec.has_learner:

            def build_learner(broker=broker):
                return LearnerProcess(
                    LEARNER_NAME,
                    broker,
                    _algorithm_factory(config, model_config),
                    explorer_names,
                    controller_name=controller_endpoint,
                    stats_interval=config.stats_interval,
                    heartbeat_interval=heartbeat,
                    checkpointer=checkpointer,
                )

            learner = build_learner()
            machine.deploy(learner)
            if supervisor is not None:
                supervisor.watch(
                    LEARNER_NAME,
                    learner,
                    kind="learner",
                    restart=_make_restart(
                        machine, broker, LEARNER_NAME, build_learner,
                        checkpointer=checkpointer,
                        instrument_hooks=instrument_hooks,
                    ),
                )
        for local_index in range(spec.explorers):
            name = f"{spec.name}.explorer-{local_index}"

            def build_explorer(
                broker=broker, name=name, seed=seed_base + explorer_index
            ):
                return ExplorerProcess(
                    name,
                    broker,
                    _agent_factory(config, model_config, seed),
                    learner_name=LEARNER_NAME,
                    controller_name=controller_endpoint,
                    fragment_steps=config.fragment_steps,
                    stats_interval=config.stats_interval,
                    heartbeat_interval=heartbeat,
                )

            explorer = build_explorer()
            machine.deploy(explorer)
            if supervisor is not None:
                supervisor.watch(
                    name,
                    explorer,
                    kind="explorer",
                    restart=_make_restart(
                        machine, broker, name, build_explorer,
                        instrument_hooks=instrument_hooks,
                    ),
                )
            explorer_index += 1
    return Cluster(
        config, machines, center, data_fabric, control_fabric,
        instrument_hooks=instrument_hooks,
    )


def _make_restart(
    machine: SimulatedMachine,
    broker: Broker,
    name: str,
    build: Callable[[], Any],
    *,
    checkpointer: Optional[Checkpointer] = None,
    instrument_hooks: Optional[List[Callable[[Any], None]]] = None,
):
    """Restart recipe for one process: tear down, rebuild, re-register.

    The dead process's ID queue is unregistered from the broker so the
    replacement's :class:`~repro.core.endpoint.ProcessEndpoint` gets a fresh
    one via ``Broker.register_process`` (a closed queue is unusable).  A
    restarted learner restores the latest checkpoint before starting, so it
    resumes from the last snapshot rather than from scratch.
    """

    def restart(old: Any) -> Any:
        try:
            old.stop(timeout=1.0)
        except Exception:  # noqa: BLE001 - a half-dead process must not block restart
            pass
        broker.communicator.unregister(name)
        replacement = build()
        if checkpointer is not None:
            checkpointer.restore_latest(replacement.algorithm)
        for hook in instrument_hooks or ():
            hook(replacement)
        machine.replace(old, replacement)
        replacement.start()
        return replacement

    return restart


def _fill_model_config(config: XingTianConfig, probe_env) -> Dict:
    """Derive obs/action dimensions from the environment when unset."""
    model_config = dict(config.model_config)
    obs_space = probe_env.observation_space
    action_space = probe_env.action_space
    model_config.setdefault("obs_dim", int(np.prod(obs_space.shape)) or 1)
    if hasattr(action_space, "n"):
        model_config.setdefault("num_actions", int(action_space.n))
    else:
        model_config.setdefault("action_dim", int(np.prod(action_space.shape)))
        model_config.setdefault("action_bound", float(np.max(np.abs(action_space.high))))
    if config.seed is not None:
        model_config.setdefault("seed", config.seed)
    return model_config


def _wire_fabrics(
    config: XingTianConfig,
    brokers: Dict[str, Broker],
    data_fabric: Fabric,
    control_fabric: Fabric,
    learner_machine: str,
) -> None:
    """Star data fabric centered on the learner's machine; fully-connected
    control fabric (commands are tiny, links stay direct).

    ``sim`` transport models each inter-machine link as a throttled NIC.
    ``wire`` transport opens one TCP listener per machine (at its
    configured ``address``, or loopback with an ephemeral port) and
    connects the same star over real sockets — bandwidth comes from the
    kernel, not a model.
    """
    names = [spec.name for spec in config.machines]
    wire = config.transport == "wire" and isinstance(data_fabric, SocketFabric)
    if wire and len(names) > 1:
        for spec in config.machines:
            if spec.address is not None:
                host, _, port = spec.address.rpartition(":")
                data_fabric.listen(brokers[spec.name].name, host, int(port))
            else:
                data_fabric.listen(brokers[spec.name].name)
    for name in names:
        if name == learner_machine:
            continue
        if wire:
            data_fabric.connect_bidirectional(
                brokers[name].name, brokers[learner_machine].name
            )
        else:
            data_fabric.connect_bidirectional(
                brokers[name].name,
                brokers[learner_machine].name,
                bandwidth=config.nic_bandwidth if len(names) > 1 else None,
                latency=config.nic_latency,
            )


def _register_routes(
    config: XingTianConfig, brokers: Dict[str, Broker], learner_machine: str
) -> None:
    """Teach each broker where every non-local process lives.

    All cross-machine data flows through the learner machine's broker (the
    center for data transmission, Fig. 2b), so non-center brokers route
    every remote name there, and the center broker routes per machine.
    """
    home: Dict[str, str] = {LEARNER_NAME: learner_machine}
    home[CenterController.ENDPOINT_NAME] = learner_machine
    for spec in config.machines:
        for index in range(spec.explorers):
            home[f"{spec.name}.explorer-{index}"] = spec.name
    for spec in config.machines:
        broker = brokers[spec.name]
        for process_name, machine_name in home.items():
            if machine_name == spec.name:
                continue
            if spec.name == learner_machine:
                target = brokers[machine_name].name
            else:
                target = brokers[learner_machine].name
            broker.add_remote_route(process_name, target)


def _algorithm_factory(
    config: XingTianConfig, model_config: Dict
) -> Callable[[], Algorithm]:
    algorithm_cls = registry.get("algorithm", config.algorithm)
    model_cls = registry.get("model", config.model)
    algorithm_config = dict(config.algorithm_config)
    algorithm_config.setdefault("num_explorers", config.num_explorers)
    if config.seed is not None:
        algorithm_config.setdefault("seed", config.seed)

    def factory() -> Algorithm:
        return algorithm_cls(model_cls(dict(model_config)), algorithm_config)

    return factory


def _agent_factory(
    config: XingTianConfig, model_config: Dict, seed: int
) -> Callable[[], Agent]:
    algorithm_cls = registry.get("algorithm", config.algorithm)
    model_cls = registry.get("model", config.model)
    agent_cls = registry.get("agent", config.agent_name)
    env_cls = registry.get("environment", config.environment)

    def factory() -> Agent:
        env_config = dict(config.env_config)
        env_config["seed"] = seed
        environment = env_cls(env_config)
        algorithm_config = dict(config.algorithm_config)
        algorithm_config.setdefault("num_explorers", config.num_explorers)
        # Explorer-side algorithm copies never train; shrink buffers.
        algorithm_config["buffer_size"] = 1
        algorithm_config["learn_start"] = 1
        algorithm = algorithm_cls(model_cls(dict(model_config)), algorithm_config)
        agent_config = dict(config.agent_config)
        agent_config.setdefault("seed", seed)
        return agent_cls(algorithm, environment, agent_config)

    return factory
