"""A simulated machine: one broker plus the processes deployed on it."""

from __future__ import annotations

from typing import Any, List

from ..core.broker import Broker
from ..core.controller import Controller


class SimulatedMachine:
    """Groups a broker, a controller, and the processes of one machine.

    Cross-machine traffic leaves through the broker's fabric links (which a
    cluster builds as throttled NIC models); intra-machine traffic stays in
    the broker's shared-memory communicator — the same locality structure as
    a real deployment (Fig. 2b).
    """

    def __init__(self, name: str, broker: Broker, controller: Controller):
        self.name = name
        self.broker = broker
        self.controller = controller
        self.processes: List[Any] = []

    def deploy(self, process: Any) -> None:
        self.processes.append(process)
        self.controller.manage(process)

    def replace(self, old: Any, new: Any) -> None:
        """Swap a restarted process in (machine list + controller set)."""
        for index, process in enumerate(self.processes):
            if process is old:
                self.processes[index] = new
                break
        else:
            self.processes.append(new)
        self.controller.replace(old, new)

    def local_process_names(self) -> List[str]:
        return [process.name for process in self.processes]
