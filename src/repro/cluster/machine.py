"""A simulated machine: one broker plus the processes deployed on it."""

from __future__ import annotations

from typing import Any, List

from ..core.broker import Broker
from ..core.controller import Controller


class SimulatedMachine:
    """Groups a broker, a controller, and the processes of one machine.

    Cross-machine traffic leaves through the broker's fabric links (which a
    cluster builds as throttled NIC models); intra-machine traffic stays in
    the broker's shared-memory communicator — the same locality structure as
    a real deployment (Fig. 2b).
    """

    def __init__(self, name: str, broker: Broker, controller: Controller):
        self.name = name
        self.broker = broker
        self.controller = controller
        self.processes: List[Any] = []

    def deploy(self, process: Any) -> None:
        self.processes.append(process)
        self.controller.manage(process)

    def local_process_names(self) -> List[str]:
        return [process.name for process in self.processes]
