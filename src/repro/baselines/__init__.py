"""Models of the comparison frameworks (paper §5).

These reproduce the *communication structure* of the paper's comparators —
not their internals (DESIGN.md §2):

* :mod:`rpc` — synchronous, caller-blocking simulated RPC: every transfer's
  serialize/wire/deserialize cost lands on the calling thread, which is the
  essence of receiver-initiated pulling;
* :mod:`taskgraph` — task graph + centralized driver loop, the programming
  model the paper attributes to prior DRL frameworks (§2.2);
* :mod:`raylike` — RLLib-like framework: parallel remote workers, but all
  data transfer happens inside the central driver's pull calls;
* :mod:`bufferframework` — Acme/Launchpad/Reverb-like framework: a central
  data buffer every rollout crosses twice over RPC.
"""

from .rpc import RpcChannel, RpcFuture
from .taskgraph import CentralDriver, Task, TaskGraph
from .raylike import RaylikeTrainer, RaylikeWorker, ReplayActor
from .bufferframework import BufferFrameworkTrainer, BufferServer, BufferWorker

__all__ = [
    "RpcChannel",
    "RpcFuture",
    "Task",
    "TaskGraph",
    "CentralDriver",
    "RaylikeWorker",
    "RaylikeTrainer",
    "ReplayActor",
    "BufferServer",
    "BufferWorker",
    "BufferFrameworkTrainer",
]
