"""Acme/Launchpad/Reverb-like framework: the central-buffer model (§2.2, §5.1).

"Several DRL frameworks always insert a data management buffer between the
explorers and the learner, and make them always communicate indirectly
through the buffer."  The buffer is a single server: every insert and every
sample is one RPC processed serially by the server thread, with the server
re-serializing payloads at its own (modest) processing bandwidth — the
bottleneck the paper observes ("the data buffer based on Reverb is the
bottleneck", Fig. 4: under 2 MB/s regardless of explorer count).
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from ..api.agent import Agent
from ..core.serialization import payload_nbytes
from ..core.stats import LatencyRecorder, ThroughputMeter


class BufferServer:
    """The central data buffer as a single-threaded RPC server.

    Requests (inserts and samples) queue up and are processed one at a
    time.  Each request charges ``item_overhead`` seconds (per-op RPC and
    chunking cost) plus ``nbytes / processing_bandwidth`` (the server
    deserializes, stores, and re-serializes every payload it handles).
    """

    def __init__(
        self,
        *,
        capacity: int = 1_000_000,
        processing_bandwidth: float = 50e6,
        item_overhead: float = 0.002,
    ):
        if processing_bandwidth <= 0:
            raise ValueError("processing_bandwidth must be positive")
        self.capacity = capacity
        self.processing_bandwidth = processing_bandwidth
        self.item_overhead = item_overhead
        self._items: Deque[Tuple[Any, int]] = deque()
        self._requests: "queue.Queue[Optional[Tuple[str, Any, Any]]]" = queue.Queue()
        self._stopped = threading.Event()
        self.total_inserted = 0
        self.total_sampled = 0
        self.bytes_processed = 0
        self._thread = threading.Thread(
            target=self._serve, name="buffer-server", daemon=True
        )
        self._thread.start()

    # -- client API (each call blocks until the server processed it) -----------
    def insert(self, item: Any, timeout: Optional[float] = None) -> None:
        """Rate-limited insert: returns once the server has stored the item."""
        done = threading.Event()
        self._requests.put(("insert", item, done))
        if not done.wait(timeout=timeout):
            raise TimeoutError("buffer server did not accept the insert in time")

    def sample(self, timeout: Optional[float] = None) -> Any:
        """Blocking sample of the oldest item (FIFO trajectory queue)."""
        slot: Dict[str, Any] = {}
        done = threading.Event()
        self._requests.put(("sample", slot, done))
        if not done.wait(timeout=timeout):
            raise TimeoutError("buffer server did not serve the sample in time")
        if "error" in slot:
            raise slot["error"]
        return slot["item"]

    def __len__(self) -> int:
        return len(self._items)

    def stop(self) -> None:
        self._stopped.set()
        self._requests.put(None)
        self._thread.join(timeout=5.0)

    # -- server loop ----------------------------------------------------------
    def _serve(self) -> None:
        while not self._stopped.is_set():
            try:
                request = self._requests.get(timeout=0.25)
            except queue.Empty:
                continue
            if request is None:
                return
            kind, payload, done = request
            if kind == "insert":
                nbytes = payload_nbytes(payload)
                self._charge(nbytes)
                self._items.append((payload, nbytes))
                if len(self._items) > self.capacity:
                    self._items.popleft()
                self.total_inserted += 1
                done.set()
            elif kind == "sample":
                slot = payload
                item = self._wait_for_item()
                if item is None:
                    slot["error"] = RuntimeError("buffer server stopped")
                    done.set()
                    continue
                body, nbytes = item
                self._charge(nbytes)
                self.total_sampled += 1
                slot["item"] = body
                done.set()

    def _wait_for_item(self) -> Optional[Tuple[Any, int]]:
        """Serve queued inserts until an item is available to sample."""
        while not self._items:
            try:
                request = self._requests.get(timeout=0.25)
            except queue.Empty:
                if self._stopped.is_set():
                    return None
                continue
            if request is None:
                return None
            kind, payload, done = request
            if kind == "insert":
                nbytes = payload_nbytes(payload)
                self._charge(nbytes)
                self._items.append((payload, nbytes))
                self.total_inserted += 1
                done.set()
            else:
                # A second sampler while starving: re-queue behind us.
                self._requests.put(request)
        return self._items.popleft()

    def _charge(self, nbytes: int) -> None:
        if self.item_overhead > 0:
            time.sleep(self.item_overhead)
        if nbytes > 0:
            time.sleep(nbytes / self.processing_bandwidth)
        self.bytes_processed += nbytes


class BufferWorker:
    """An explorer that pushes every fragment into the central buffer."""

    def __init__(
        self,
        name: str,
        agent_factory: Callable[[], Agent],
        server: BufferServer,
        fragment_steps: int = 200,
    ):
        self.name = name
        self.agent = agent_factory()
        self.server = server
        self.fragment_steps = fragment_steps
        self._stopped = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.episode_returns: List[float] = []
        self.steps_meter = ThroughputMeter()

    def start(self) -> None:
        self._thread = threading.Thread(target=self._run, name=self.name, daemon=True)
        self._thread.start()

    def _run(self) -> None:
        while not self._stopped.is_set():
            rollout, finished = self.agent.run_fragment(self.fragment_steps)
            self.episode_returns.extend(finished)
            self.steps_meter.record(len(rollout.get("reward", ())))
            try:
                self.server.insert(rollout, timeout=10.0)
            except (TimeoutError, RuntimeError):
                if self._stopped.is_set():
                    return

    def stop(self) -> None:
        self._stopped.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)


class BufferFrameworkTrainer:
    """The learner side: samples fragments from the buffer server and trains."""

    def __init__(self, algorithm, server: BufferServer):
        self.algorithm = algorithm
        self.server = server
        self.consumed_meter = ThroughputMeter()
        self.sample_recorder = LatencyRecorder("buffer.sample")
        self.train_recorder = LatencyRecorder("buffer.train")
        self.train_sessions = 0

    def run(
        self,
        *,
        max_trained_steps: Optional[int] = None,
        max_seconds: Optional[float] = None,
    ) -> None:
        if max_trained_steps is None and max_seconds is None:
            raise ValueError("need a stop criterion")
        deadline = time.monotonic() + max_seconds if max_seconds else None
        while True:
            if deadline is not None and time.monotonic() >= deadline:
                return
            if (
                max_trained_steps is not None
                and self.consumed_meter.total >= max_trained_steps
            ):
                return
            try:
                with self.sample_recorder.time():
                    rollout = self.server.sample(timeout=5.0)
            except TimeoutError:
                continue
            self.algorithm.prepare_data(rollout, source="buffer")
            while self.algorithm.ready_to_train():
                with self.train_recorder.time():
                    metrics = self.algorithm.train()
                self.train_sessions += 1
                self.consumed_meter.record(int(metrics.get("trained_steps", 0)))
