"""RLLib-like framework: the pull communication model (§2.2, §5).

Faithful to what the paper measures about RLLib:

* remote rollout workers compute **in parallel** (Ray gets that right);
* but every data transfer is **receiver-initiated**: the central driver
  calls ``sample()`` and pays serialize + wire + deserialize inline, then
  trains, then pushes weights inline — communication and computation are
  strictly serial on the driver;
* for replay algorithms (DQN), the replay buffer is a separate **actor**:
  inserts and samples each cross a process boundary via RPC (Fig. 9).

Workers reuse the zoo's :class:`Agent` and the trainer reuses the zoo's
:class:`Algorithm`, so XingTian and the baseline train literally the same
computation — only the communication management differs.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from ..api.agent import Agent
from ..api.algorithm import Algorithm
from ..core.stats import LatencyRecorder, ThroughputMeter
from ..replay import ReplayBuffer
from .rpc import RpcChannel, RpcFuture, wait_any


class RaylikeWorker:
    """A remote rollout worker: computes when asked, holds results until
    the driver pulls them."""

    def __init__(self, name: str, agent_factory: Callable[[], Agent]):
        self.name = name
        self.agent = agent_factory()
        self._requests: "queue.Queue[Optional[Tuple[int, RpcFuture]]]" = queue.Queue()
        self._thread = threading.Thread(target=self._run, name=name, daemon=True)
        self._stopped = threading.Event()
        self.episode_returns: List[float] = []
        self.steps_meter = ThroughputMeter()
        self._thread.start()

    def sample_async(self, fragment_steps: int) -> RpcFuture:
        """Request one rollout fragment; compute happens on the worker."""
        future = RpcFuture()
        self._requests.put((fragment_steps, future))
        return future

    def set_weights(self, weights) -> None:
        """Applied synchronously by the driver's push call."""
        self.agent.set_weights(weights)

    def _run(self) -> None:
        while not self._stopped.is_set():
            try:
                request = self._requests.get(timeout=0.25)
            except queue.Empty:
                continue
            if request is None:
                return
            fragment_steps, future = request
            try:
                rollout, finished = self.agent.run_fragment(fragment_steps)
            except BaseException as exc:  # noqa: BLE001 - surfaced via future
                future.set_error(exc)
                continue
            self.episode_returns.extend(finished)
            self.steps_meter.record(len(rollout.get("reward", ())))
            future.set_result(rollout)

    def stop(self) -> None:
        self._stopped.set()
        self._requests.put(None)
        self._thread.join(timeout=5.0)


class ReplayActor:
    """The replay buffer as a separate process-like actor (RLLib's layout).

    All access goes through :meth:`insert` / :meth:`sample`, which callers
    invoke via an :class:`RpcChannel` so the cross-process cost is charged.
    """

    def __init__(self, capacity: int, seed: Optional[int] = None):
        self._buffer = ReplayBuffer(capacity, seed=seed)
        self._lock = threading.Lock()

    def insert(self, rollout: Dict[str, Any]) -> int:
        with self._lock:
            return self._buffer.add_rollout(rollout)

    def sample(self, batch_size: int) -> Dict[str, Any]:
        with self._lock:
            return self._buffer.sample(batch_size)

    def __len__(self) -> int:
        with self._lock:
            return len(self._buffer)


class RaylikeTrainer:
    """The central driver: task-graph-style control loop over remote workers.

    ``mode`` selects the per-algorithm execution order the paper describes:

    * ``"sync"``  — PPO (Fig. 1a): sample all workers, pull all rollouts,
      train once on everything, push weights to all;
    * ``"async"`` — IMPALA (Fig. 1c): pull the first ready rollout, train on
      it, push weights back to that worker only;
    * ``"replay"`` — DQN (Fig. 1b): pull rollouts, insert into the replay
      *actor* via RPC, then sample batches from the actor via RPC and train.

    Instrumented with the same quantities as XingTian's learner so Figs.
    8-10 can chart both sides: consumed-steps meter, transfer/sample
    latency, training latency.
    """

    def __init__(
        self,
        algorithm: Algorithm,
        workers: List[RaylikeWorker],
        *,
        mode: str,
        fragment_steps: int = 200,
        channel: Optional[RpcChannel] = None,
        replay_actor: Optional[ReplayActor] = None,
        replay_channel: Optional[RpcChannel] = None,
        batch_size: int = 32,
        train_every: int = 4,
        learn_start: int = 1_000,
    ):
        if mode not in ("sync", "async", "replay"):
            raise ValueError(f"unknown mode {mode!r}")
        if mode == "replay" and replay_actor is None:
            raise ValueError("replay mode needs a replay_actor")
        self.algorithm = algorithm
        self.workers = workers
        self.mode = mode
        self.fragment_steps = fragment_steps
        self.channel = channel or RpcChannel()
        self.replay_actor = replay_actor
        self.replay_channel = replay_channel or self.channel
        self.batch_size = batch_size
        self.train_every = train_every
        self.learn_start = learn_start
        # Instrumentation.
        self.consumed_meter = ThroughputMeter()
        self.transfer_recorder = LatencyRecorder("raylike.transfer")
        self.train_recorder = LatencyRecorder("raylike.train")
        self.train_sessions = 0
        self.episode_returns: List[float] = []
        self._pending: List[Optional[RpcFuture]] = [None] * len(workers)
        self._replay_backlog = 0

    # -- public loop --------------------------------------------------------------
    def run(
        self,
        *,
        max_trained_steps: Optional[int] = None,
        max_seconds: Optional[float] = None,
    ) -> None:
        """Drive iterations until a budget is exhausted."""
        if max_trained_steps is None and max_seconds is None:
            raise ValueError("need a stop criterion")
        deadline = time.monotonic() + max_seconds if max_seconds else None
        while True:
            if deadline is not None and time.monotonic() >= deadline:
                return
            if (
                max_trained_steps is not None
                and self.consumed_meter.total >= max_trained_steps
            ):
                return
            self.run_iteration()

    def run_iteration(self) -> Dict[str, float]:
        if self.mode == "sync":
            return self._iteration_sync()
        if self.mode == "async":
            return self._iteration_async()
        return self._iteration_replay()

    def stop(self) -> None:
        for worker in self.workers:
            worker.stop()

    # -- the three execution orders -------------------------------------------------
    def _iteration_sync(self) -> Dict[str, float]:
        futures = [
            worker.sample_async(self.fragment_steps) for worker in self.workers
        ]
        rollouts = []
        with self.transfer_recorder.time():
            for worker, future in zip(self.workers, futures):
                rollouts.append(self._fetch(future))
        for worker, rollout in zip(self.workers, rollouts):
            self.algorithm.prepare_data(rollout, source=worker.name)
        metrics = self._train_ready()
        weights = self.algorithm.get_weights()
        with self.transfer_recorder.time():
            for worker in self.workers:
                self._push_weights(worker, weights)
        self._harvest_returns()
        return metrics

    def _iteration_async(self) -> Dict[str, float]:
        for index, worker in enumerate(self.workers):
            if self._pending[index] is None:
                self._pending[index] = worker.sample_async(self.fragment_steps)
        ready = wait_any([f for f in self._pending if f is not None])
        # Map back to the worker index (skipping exhausted slots).
        live = [i for i, f in enumerate(self._pending) if f is not None]
        index = live[ready]
        with self.transfer_recorder.time():
            rollout = self._fetch(self._pending[index])
        self._pending[index] = None
        worker = self.workers[index]
        self.algorithm.prepare_data(rollout, source=worker.name)
        metrics = self._train_ready()
        with self.transfer_recorder.time():
            self._push_weights(worker, self.algorithm.get_weights())
        self._harvest_returns()
        return metrics

    def _iteration_replay(self) -> Dict[str, float]:
        assert self.replay_actor is not None
        worker = self.workers[0]
        future = worker.sample_async(self.fragment_steps)
        with self.transfer_recorder.time():
            rollout = self._fetch(future)
            # Rollout crosses into the replay actor's process, too.
            added = self.replay_channel.call(self.replay_actor.insert, rollout)
        self._replay_backlog += added
        metrics: Dict[str, float] = {}
        if len(self.replay_actor) >= self.learn_start:
            while self._replay_backlog >= self.train_every:
                self._replay_backlog -= self.train_every
                with self.transfer_recorder.time():
                    batch = self.replay_channel.call(
                        self.replay_actor.sample, self.batch_size
                    )
                with self.train_recorder.time():
                    metrics = self._train_on_batch(batch)
                self.train_sessions += 1
                self.consumed_meter.record(self.batch_size)
                if self.algorithm.should_broadcast():
                    with self.transfer_recorder.time():
                        self._push_weights(worker, self.algorithm.get_weights())
        self._harvest_returns()
        return metrics

    # -- helpers -----------------------------------------------------------------
    def _fetch(self, future: RpcFuture) -> Dict[str, Any]:
        """ray.get analogue: wait for the worker, then pay the transfer."""
        rollout = future.result()
        self.channel.transfer(rollout)
        return rollout

    def _push_weights(self, worker: RaylikeWorker, weights) -> None:
        self.channel.transfer(weights)
        worker.set_weights(weights)

    def _train_ready(self) -> Dict[str, float]:
        metrics: Dict[str, float] = {}
        while self.algorithm.ready_to_train():
            with self.train_recorder.time():
                metrics = self.algorithm.train()
            self.train_sessions += 1
            self.consumed_meter.record(int(metrics.get("trained_steps", 0)))
        return metrics

    def _train_on_batch(self, batch: Dict[str, Any]) -> Dict[str, float]:
        """DQN path: train directly on an RPC-fetched batch.

        The algorithm's internal replay is bypassed — the actor owns the
        data — so we feed the batch through a one-shot buffer.
        """
        self.algorithm.replay._storage = []  # type: ignore[attr-defined]
        self.algorithm.replay._next_index = 0  # type: ignore[attr-defined]
        self.algorithm.replay.add_rollout(batch)
        self.algorithm._pending_inserts = self.algorithm.train_every  # type: ignore[attr-defined]
        return self.algorithm.train()

    def _harvest_returns(self) -> None:
        for worker in self.workers:
            if worker.episode_returns:
                self.episode_returns.extend(worker.episode_returns)
                worker.episode_returns = []

    def average_return(self, window: int = 100) -> Optional[float]:
        if not self.episode_returns:
            return None
        recent = self.episode_returns[-window:]
        return sum(recent) / len(recent)
