"""Simulated synchronous RPC.

The defining property of the pull model: the *caller's* thread pays for the
whole transfer — serialization of the request, wire time, execution wait,
serialization of the response, wire time back, deserialization (§2.2).
Nothing overlaps with the caller's other work, because the caller *is*
blocked inside the call.

Costs are charged with the same models XingTian's channel uses: an optional
``copy_bandwidth`` (bytes/s) for serialize/deserialize memory traffic (one
charge per direction per payload) and an optional ``wire_bandwidth`` for
NIC-bounded cross-machine transfer, plus a fixed per-call latency.  Setting
identical constants on both sides makes the comparison apples-to-apples.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Optional

from ..core.serialization import payload_nbytes


class RpcChannel:
    """A caller-blocking call channel with explicit cost accounting."""

    def __init__(
        self,
        *,
        call_latency: float = 0.0005,
        copy_bandwidth: Optional[float] = None,
        wire_bandwidth: Optional[float] = None,
        wire_lock: Optional[threading.Lock] = None,
    ):
        if copy_bandwidth is not None and copy_bandwidth <= 0:
            raise ValueError("copy_bandwidth must be positive")
        if wire_bandwidth is not None and wire_bandwidth <= 0:
            raise ValueError("wire_bandwidth must be positive")
        self.call_latency = call_latency
        self.copy_bandwidth = copy_bandwidth
        self.wire_bandwidth = wire_bandwidth
        # Concurrent RPCs crossing the same NIC share it; an external lock
        # lets several channels model one physical link.
        self._wire_lock = wire_lock or threading.Lock()
        self.calls = 0
        self.bytes_transferred = 0

    # -- cost model -------------------------------------------------------------
    def charge_copy(self, nbytes: int) -> None:
        if self.copy_bandwidth is not None and nbytes > 0:
            time.sleep(nbytes / self.copy_bandwidth)

    def charge_wire(self, nbytes: int) -> None:
        if self.wire_bandwidth is not None and nbytes > 0:
            with self._wire_lock:
                time.sleep(nbytes / self.wire_bandwidth)

    def transfer(self, payload: Any) -> int:
        """Charge one full payload transfer; returns the byte count."""
        nbytes = payload_nbytes(payload)
        self.charge_copy(nbytes)  # sender-side serialization
        self.charge_wire(nbytes)  # NIC occupancy (if cross-machine)
        self.charge_copy(nbytes)  # receiver-side deserialization
        self.bytes_transferred += nbytes
        return nbytes

    # -- calls -------------------------------------------------------------------
    def call(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Invoke ``fn`` remotely: request transfer, execute, response
        transfer — all on the calling thread."""
        self.calls += 1
        if self.call_latency > 0:
            time.sleep(self.call_latency)
        for arg in args:
            self.transfer(arg)
        result = fn(*args, **kwargs)
        if result is not None:
            self.transfer(result)
        return result


class RpcFuture:
    """Result slot for a request executing on a remote worker's thread.

    ``wait`` blocks until the remote computation finished; fetching the
    result (and paying its transfer) is the caller's job — see
    :meth:`raylike.RaylikeTrainer._fetch`.
    """

    def __init__(self):
        self._done = threading.Event()
        self._result: Any = None
        self._error: Optional[BaseException] = None

    def set_result(self, result: Any) -> None:
        self._result = result
        self._done.set()

    def set_error(self, error: BaseException) -> None:
        self._error = error
        self._done.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._done.wait(timeout=timeout)

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> Any:
        if not self._done.wait(timeout=timeout):
            raise TimeoutError("rpc future not ready")
        if self._error is not None:
            raise self._error
        return self._result


def wait_any(futures, poll: float = 0.0005) -> int:
    """Index of the first completed future (Ray's ``ray.wait`` analogue)."""
    if not futures:
        raise ValueError("wait_any needs at least one future")
    while True:
        for index, future in enumerate(futures):
            if future.done:
                return index
        time.sleep(poll)
