"""Task graphs with centralized control logic (§2.2).

Prior DRL frameworks "organize the computational components of DRL
algorithms into task graphs, and use the centralized control logic to
specify the components' execution order".  This module provides that
programming model so the ablation benchmarks can run the *same*
computational components under pull scheduling and compare against
XingTian's push channel.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..core.stats import LatencyRecorder, ThroughputMeter


class Task:
    """One node of the task graph: a named callable with dependencies."""

    def __init__(
        self,
        name: str,
        fn: Callable[[Dict[str, Any]], Any],
        deps: Sequence[str] = (),
    ):
        self.name = name
        self.fn = fn
        self.deps = list(deps)


class TaskGraph:
    """A DAG of tasks; ``order()`` yields a deterministic topological order."""

    def __init__(self):
        self._tasks: Dict[str, Task] = {}

    def add(self, task: Task) -> None:
        if task.name in self._tasks:
            raise ValueError(f"duplicate task {task.name!r}")
        for dep in task.deps:
            if dep not in self._tasks:
                raise ValueError(f"task {task.name!r} depends on unknown {dep!r}")
        self._tasks[task.name] = task

    def order(self) -> List[Task]:
        """Kahn's algorithm; insertion order breaks ties."""
        in_degree = {name: len(task.deps) for name, task in self._tasks.items()}
        dependents: Dict[str, List[str]] = {name: [] for name in self._tasks}
        for name, task in self._tasks.items():
            for dep in task.deps:
                dependents[dep].append(name)
        ready = [name for name, degree in in_degree.items() if degree == 0]
        ordered: List[Task] = []
        while ready:
            name = ready.pop(0)
            ordered.append(self._tasks[name])
            for dependent in dependents[name]:
                in_degree[dependent] -= 1
                if in_degree[dependent] == 0:
                    ready.append(dependent)
        if len(ordered) != len(self._tasks):
            raise ValueError("task graph has a cycle")
        return ordered

    def __len__(self) -> int:
        return len(self._tasks)


class CentralDriver:
    """The centralized control loop: execute the graph, iteration after
    iteration, every task on the driver's own thread.

    Each task receives a context dict holding prior tasks' outputs (keyed by
    task name).  Communication a task performs (RPC pulls) therefore blocks
    the whole pipeline — the behaviour the paper critiques.
    """

    def __init__(self, graph: TaskGraph):
        self.graph = graph
        self.iterations = 0
        self.iteration_time = LatencyRecorder("driver.iteration")
        self.task_time: Dict[str, LatencyRecorder] = {}
        self.throughput = ThroughputMeter()

    def run(
        self,
        *,
        max_iterations: Optional[int] = None,
        max_seconds: Optional[float] = None,
        stop_when: Optional[Callable[[Dict[str, Any]], bool]] = None,
    ) -> Dict[str, Any]:
        """Drive the loop; returns the final iteration's context."""
        if max_iterations is None and max_seconds is None and stop_when is None:
            raise ValueError("need at least one stop criterion")
        ordered = self.graph.order()
        for task in ordered:
            self.task_time.setdefault(task.name, LatencyRecorder(task.name))
        deadline = time.monotonic() + max_seconds if max_seconds else None
        context: Dict[str, Any] = {}
        while True:
            if max_iterations is not None and self.iterations >= max_iterations:
                return context
            if deadline is not None and time.monotonic() >= deadline:
                return context
            context = {}
            with self.iteration_time.time():
                for task in ordered:
                    with self.task_time[task.name].time():
                        context[task.name] = task.fn(context)
            self.iterations += 1
            if stop_when is not None and stop_when(context):
                return context
