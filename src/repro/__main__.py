"""Command-line entry point: run a XingTian configuration file.

Usage::

    python -m repro --config my_run.json
    python -m repro --algorithm impala --environment CartPole \\
        --model actor_critic --explorers 4 --max-seconds 20

The JSON configuration mirrors :class:`repro.core.config.XingTianConfig`
(see ``XingTianConfig.from_dict``); command-line flags build a simple
single-machine run without a file.
"""

from __future__ import annotations

import argparse
import json
import sys

from .core.config import StopCondition, XingTianConfig, single_machine_config
from .core.visualize import render_run_summary
from .runtime import run_config


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run a DRL algorithm under the XingTian reproduction.",
    )
    parser.add_argument("--config", help="path to a JSON configuration file")
    parser.add_argument("--algorithm", default="impala")
    parser.add_argument("--environment", default="CartPole")
    parser.add_argument("--model", default="actor_critic")
    parser.add_argument("--explorers", type=int, default=2)
    parser.add_argument("--fragment-steps", type=int, default=100)
    parser.add_argument("--max-seconds", type=float, default=20.0)
    parser.add_argument(
        "--trained-steps", type=int, default=None,
        help="stop after the learner consumes this many rollout steps",
    )
    parser.add_argument(
        "--target-return", type=float, default=None,
        help="stop once the average episode return reaches this value",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--quiet", action="store_true", help="print only the summary line"
    )
    return parser


def config_from_args(args: argparse.Namespace) -> XingTianConfig:
    if args.config:
        with open(args.config) as handle:
            return XingTianConfig.from_dict(json.load(handle))
    stop = StopCondition(
        max_seconds=args.max_seconds,
        total_trained_steps=args.trained_steps,
        target_return=args.target_return,
    )
    return single_machine_config(
        args.algorithm,
        args.environment,
        args.model,
        explorers=args.explorers,
        fragment_steps=args.fragment_steps,
        stop=stop,
        seed=args.seed,
    )


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    config = config_from_args(args)
    result = run_config(config)
    if args.quiet:
        print(
            f"{result.shutdown_reason} | steps={result.total_trained_steps} "
            f"| return={result.average_return}"
        )
    else:
        print(render_run_summary(result))
    return 0


if __name__ == "__main__":
    sys.exit(main())
