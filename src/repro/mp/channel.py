"""Cross-process channel primitives.

``write_segment`` serializes a body into a fresh shared-memory segment and
returns its name; ``read_segment`` attaches by name, deserializes, and
(optionally) unlinks.  The :class:`MpChannel` bundles the queues one
explorer needs: a header queue toward the learner and a weights queue back.

Two body-transfer paths exist:

* **pooled** (the default when a :class:`SharedSlabPool` is attached) —
  bodies are scatter-gather-written into fixed-size blocks of slab
  segments the parent created *before* forking.  No ``shm_open`` /
  ``ftruncate`` / ``mmap`` per message; the reader returns the block to a
  shared free list.
* **legacy** — each body gets its own segment and the single consumer
  unlinks it after reading: the degenerate (refcount == 1) case of the
  broker store.  Oversized bodies and pool-exhaustion overflow land here.

Handles crossing the queues are either a legacy segment name (``str``) or
a pool block tuple; :func:`write_body` / :func:`read_body` dispatch.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import time
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Any, Dict, Optional, Tuple, Union

from ..core.concurrency import runtime_checks_enabled
from ..core.message import new_trace_id
from ..core.serialization import Frame, deserialize, make_frame
from ..core.tracing import flight_recorder

_SIZE_HEADER = 8

#: first element of a pooled block handle (vs a legacy segment-name str)
_POOL_TAG = "blk"

#: (tag, block_index, total_bytes_including_length_prefix)
PoolHandle = Tuple[str, int, int]
BodyHandle = Union[str, PoolHandle]

_POOL_COUNTER = itertools.count()

#: reserved metadata key carrying cross-process trace context; the receiving
#: session pops it before handing metadata to the algorithm
TRACE_META = "_trace"

#: per-process rollout sequence (trace ids are globally unique via their
#: pid-keyed nonce; seq only orders one sender's stream)
_MP_SEQ = itertools.count(1)


def write_segment(
    body: Any, name: Optional[str] = None, frame: Optional[Frame] = None
) -> str:
    """Serialize ``body`` into a new shared-memory segment; returns its name.

    The first 8 bytes store the payload length so readers can attach
    without knowing the size out of band.  The frame is scatter-gathered
    straight into the mapped segment — no intermediate contiguous bytes.
    """
    framed = make_frame(body) if frame is None else frame
    total = _SIZE_HEADER + framed.nbytes
    segment = shared_memory.SharedMemory(name=name, create=True, size=total)
    try:
        segment.buf[:_SIZE_HEADER] = framed.nbytes.to_bytes(_SIZE_HEADER, "little")
        framed.serialize_into(segment.buf[_SIZE_HEADER:total])
    finally:
        segment.close()
    # Ownership transfers to the consumer (it unlinks after reading), so the
    # creator's resource tracker must forget the segment — otherwise every
    # cross-process handoff draws a leak warning at interpreter shutdown.
    _untrack(segment.name)
    return segment.name


def _untrack(name: str) -> None:
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary by version
        pass


def read_segment(name: str, unlink: bool = True) -> Any:
    """Attach to a segment by name and deserialize its body.

    With ``unlink`` (the default) the segment is freed afterwards — the
    consumer owns cleanup, matching the release-after-fetch protocol of the
    in-process store.
    """
    segment = shared_memory.SharedMemory(name=name)
    try:
        length = int.from_bytes(bytes(segment.buf[:_SIZE_HEADER]), "little")
        body = deserialize(segment.buf[_SIZE_HEADER : _SIZE_HEADER + length])
    finally:
        segment.close()
        if unlink:
            try:
                segment.unlink()
            except FileNotFoundError:
                pass
    return body


class SharedSlabPool:
    """A pre-forked pool of fixed-size shared-memory blocks.

    The parent creates one slab segment holding ``num_blocks`` blocks of
    ``block_bytes`` each *before* forking explorers, so every process
    inherits the mapping.  The allocator is a free-index stack kept in a
    small control segment guarded by one ``multiprocessing.Lock`` —
    synchronous, so a block freed by the reader is visible to the very
    next write (unlike an ``mp.Queue``, whose feeder thread makes
    ``get_nowait`` racy).  Writing a body costs a stack pop plus one
    scatter-gather copy into the block — no ``shm_open``/``ftruncate``/
    ``mmap`` syscalls on the per-message path, which is where the legacy
    one-segment-per-message channel spends most of its time for small and
    medium bodies.  Readers deserialize with a copy (the block is recycled
    immediately) and push the index back.

    Bodies larger than a block — and writes finding the stack empty —
    return ``None`` from :meth:`write`; callers fall back to
    :func:`write_segment`.  The pool never blocks a sender.
    """

    # Control layout: 8-byte stack depth, 4-byte indices, then one state
    # byte per block (0 = free, 1 = allocated) shared by every process.
    _TOP = 8

    def __init__(
        self,
        context: Any = None,
        *,
        block_bytes: int = 1 << 20,
        num_blocks: int = 32,
        name: Optional[str] = None,
    ):
        if block_bytes <= _SIZE_HEADER:
            raise ValueError("block_bytes must exceed the length prefix")
        if num_blocks < 1:
            raise ValueError("num_blocks must be >= 1")
        ctx = context if context is not None else mp.get_context("fork")
        self.block_bytes = block_bytes
        self.num_blocks = num_blocks
        self.name = name or f"xtpool-{os.getpid()}-{next(_POOL_COUNTER)}"
        self._shm = shared_memory.SharedMemory(
            name=self.name, create=True, size=block_bytes * num_blocks
        )
        self._state_off = self._TOP + 4 * num_blocks
        self._ctrl = shared_memory.SharedMemory(
            name=f"{self.name}-ctrl",
            create=True,
            size=self._state_off + num_blocks,
        )
        ctrl = self._ctrl.buf
        ctrl[: self._TOP] = num_blocks.to_bytes(self._TOP, "little")
        for index in range(num_blocks):
            ctrl[self._TOP + 4 * index : self._TOP + 4 * index + 4] = (
                index.to_bytes(4, "little")
            )
        # State bytes start zeroed (shared memory is zero-filled) == free.
        self._lock = ctx.Lock()
        self._owner_pid = os.getpid()
        self._closed = False
        # Per-process counters (each fork gets its own copies).
        self.total_pool_writes = 0
        self.total_fallback = 0
        self.total_double_discard = 0
        self.total_stale_reads = 0

    # -- free-index stack -------------------------------------------------
    def _pop_free(self) -> Optional[int]:
        with self._lock:
            ctrl = self._ctrl.buf
            top = int.from_bytes(ctrl[: self._TOP], "little")
            if top == 0:
                return None
            top -= 1
            slot = self._TOP + 4 * top
            index = int.from_bytes(ctrl[slot : slot + 4], "little")
            ctrl[: self._TOP] = top.to_bytes(self._TOP, "little")
            ctrl[self._state_off + index] = 1
            return index

    def _push_free(self, index: int) -> bool:
        """Return the block to the free stack.

        ``False`` means the block was *already* free — a double discard.
        Pushing anyway would duplicate the index on the stack and hand the
        same block to two writers, so the push is skipped instead.
        """
        with self._lock:
            ctrl = self._ctrl.buf
            if ctrl[self._state_off + index] == 0:
                return False
            ctrl[self._state_off + index] = 0
            top = int.from_bytes(ctrl[: self._TOP], "little")
            slot = self._TOP + 4 * top
            ctrl[slot : slot + 4] = index.to_bytes(4, "little")
            ctrl[: self._TOP] = (top + 1).to_bytes(self._TOP, "little")
            return True

    def _allocated(self, index: int) -> bool:
        with self._lock:
            return self._ctrl.buf[self._state_off + index] == 1

    # -- hot path ---------------------------------------------------------
    def write(self, body: Any, frame: Optional[Frame] = None) -> Optional[PoolHandle]:
        """Write ``body`` into a free block; ``None`` means "use the
        fallback path" (body too large, pool exhausted, or closed)."""
        if self._closed:
            return None
        framed = make_frame(body) if frame is None else frame
        total = _SIZE_HEADER + framed.nbytes
        if total > self.block_bytes:
            self.total_fallback += 1
            return None
        index = self._pop_free()
        if index is None:
            self.total_fallback += 1
            return None
        start = index * self.block_bytes
        buf = self._shm.buf
        buf[start : start + _SIZE_HEADER] = framed.nbytes.to_bytes(
            _SIZE_HEADER, "little"
        )
        framed.serialize_into(buf[start + _SIZE_HEADER : start + total])
        self.total_pool_writes += 1
        return (_POOL_TAG, index, total)

    def read(self, handle: PoolHandle) -> Any:
        """Deserialize a block's body (with copy) and recycle the block."""
        _, index, total = handle
        if runtime_checks_enabled() and not self._allocated(index):
            self.total_stale_reads += 1
            raise ValueError(
                f"stale pool handle {handle!r} on {self.name!r}: the block "
                "was already read or discarded"
            )
        start = index * self.block_bytes
        buf = self._shm.buf
        length = int.from_bytes(bytes(buf[start : start + _SIZE_HEADER]), "little")
        try:
            body = deserialize(buf[start + _SIZE_HEADER : start + total])
        finally:
            self.discard(handle)
        assert length + _SIZE_HEADER == total
        return body

    def discard(self, handle: PoolHandle) -> None:
        """Recycle a block without reading it (shutdown drains).

        Discarding a handle whose block is already free is bookkeeping
        corruption waiting to happen (the index would sit on the free stack
        twice, so two writers would later share one block).  The push is
        skipped, the per-process ``total_double_discard`` counter ticks,
        and under ``REPRO_RUNTIME_CHECKS=1`` the caller gets a
        ``ValueError`` instead of a silent save.
        """
        if self._closed:
            return
        index = handle[1]
        if self._push_free(index):
            return
        self.total_double_discard += 1
        if runtime_checks_enabled():
            raise ValueError(
                f"double discard of pool block {index} on {self.name!r}: "
                "the block is already on the free list"
            )

    # -- lifecycle --------------------------------------------------------
    def free_blocks(self) -> int:
        """Current free-stack depth."""
        if self._closed:
            return 0
        with self._lock:
            return int.from_bytes(self._ctrl.buf[: self._TOP], "little")

    def close(self) -> None:
        """Tear down: owner unlinks the segments; everyone drops mappings."""
        if self._closed:
            return
        self._closed = True
        owner = os.getpid() == self._owner_pid
        for segment in (self._shm, self._ctrl):
            try:
                segment.close()
            except BufferError:  # pragma: no cover - view outlived a message
                pass
            if owner:
                try:
                    segment.unlink()
                except FileNotFoundError:
                    pass


def is_pool_handle(handle: Any) -> bool:
    return isinstance(handle, tuple) and len(handle) == 3 and handle[0] == _POOL_TAG


def write_body(body: Any, pool: Optional[SharedSlabPool] = None) -> BodyHandle:
    """Write ``body`` for another process: pooled when possible, else a
    dedicated segment.  The frame is built once either way."""
    frame = make_frame(body)
    if pool is not None:
        handle = pool.write(body, frame=frame)
        if handle is not None:
            return handle
    return write_segment(body, frame=frame)


def read_body(handle: BodyHandle, pool: Optional[SharedSlabPool] = None) -> Any:
    """Inverse of :func:`write_body`; frees the block or segment."""
    if is_pool_handle(handle):
        if pool is None:
            raise ValueError(f"pool handle {handle!r} but no pool attached")
        return pool.read(handle)
    return read_segment(handle)


def discard_body(handle: BodyHandle, pool: Optional[SharedSlabPool] = None) -> None:
    """Free the storage behind ``handle`` without deserializing (drains)."""
    if is_pool_handle(handle):
        if pool is not None:
            pool.discard(handle)
        return
    try:
        stale = shared_memory.SharedMemory(name=handle)
        stale.close()
        stale.unlink()
    except FileNotFoundError:
        pass


@dataclass
class MpChannel:
    """The queue pair connecting one explorer process to the learner.

    ``headers`` carries (explorer_name, body_handle, metadata) tuples —
    lightweight, like the paper's ID queues; ``weights`` carries body
    handles of weight snapshots pushed by the learner.  When a
    :class:`SharedSlabPool` is attached, handles are pooled blocks;
    otherwise (and for oversized bodies) they are per-message segment
    names.
    """

    headers: Any = field(default_factory=lambda: mp.Queue())
    weights: Any = field(default_factory=lambda: mp.Queue())
    pool: Optional[SharedSlabPool] = None

    def send_rollout(
        self, explorer: str, body: Any, metadata: Optional[Dict] = None
    ) -> Dict[str, Any]:
        """Ship one rollout; returns the trace context stamped into it.

        Every rollout carries ``metadata[TRACE_META]`` — trace/span ids, a
        per-sender seq, and the sender's monotonic send timestamp — so the
        learner can reconstruct cross-process causal chains offline.  On one
        host ``CLOCK_MONOTONIC`` is system-wide, so ``sent_ts`` and the
        learner's receive timestamps share a timebase.
        """
        handle = write_body(body, self.pool)
        trace = new_trace_id()
        context: Dict[str, Any] = {
            "trace": trace,
            "span": new_trace_id(),
            "seq": next(_MP_SEQ),
            "src": explorer,
            "sent_ts": time.monotonic(),
        }
        stamped = dict(metadata or {})
        stamped[TRACE_META] = context
        recorder = flight_recorder()
        if recorder is not None:
            recorder.record(
                "sent", f"{explorer}.send", seq=context["seq"], trace=trace
            )
        self.headers.put((explorer, handle, stamped))
        return context

    def receive_rollout(self, timeout: Optional[float] = None) -> Optional[Tuple[str, Any, Dict]]:
        try:
            explorer, handle, metadata = self.headers.get(timeout=timeout)
        except Exception:
            return None
        return explorer, read_body(handle, self.pool), metadata

    def push_weights(self, body: Any) -> None:
        self.weights.put(write_body(body, self.pool))

    def poll_weights(self) -> Optional[Any]:
        """Non-blocking: newest weights if any are queued, else None."""
        latest = None
        while True:
            try:
                handle = self.weights.get_nowait()
            except Exception:
                break
            if latest is not None:
                # An unconsumed older snapshot: free it.
                discard_body(latest, self.pool)
            latest = handle
        if latest is None:
            return None
        return read_body(latest, self.pool)

    def close(self) -> None:
        for queue in (self.headers, self.weights):
            queue.close()
            queue.join_thread()
