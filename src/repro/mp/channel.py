"""Cross-process channel primitives.

``write_segment`` serializes a body into a fresh shared-memory segment and
returns its name; ``read_segment`` attaches by name, deserializes, and
(optionally) unlinks.  The :class:`MpChannel` bundles the queues one
explorer needs: a header queue toward the learner and a weights queue back.

Each message body gets its own segment and the single consumer unlinks it
after reading — the degenerate (refcount == 1) case of the broker store,
which is exactly the rollout path's shape (explorer -> learner).  Weight
broadcasts write one segment per destination.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Any, Dict, Optional, Tuple

from ..core.serialization import deserialize, serialize

_SIZE_HEADER = 8


def write_segment(body: Any, name: Optional[str] = None) -> str:
    """Serialize ``body`` into a new shared-memory segment; returns its name.

    The first 8 bytes store the payload length so readers can attach
    without knowing the size out of band.
    """
    payload = serialize(body)
    segment = shared_memory.SharedMemory(
        name=name, create=True, size=_SIZE_HEADER + len(payload)
    )
    try:
        segment.buf[:_SIZE_HEADER] = len(payload).to_bytes(_SIZE_HEADER, "little")
        segment.buf[_SIZE_HEADER : _SIZE_HEADER + len(payload)] = payload
    finally:
        segment.close()
    # Ownership transfers to the consumer (it unlinks after reading), so the
    # creator's resource tracker must forget the segment — otherwise every
    # cross-process handoff draws a leak warning at interpreter shutdown.
    _untrack(segment.name)
    return segment.name


def _untrack(name: str) -> None:
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary by version
        pass


def read_segment(name: str, unlink: bool = True) -> Any:
    """Attach to a segment by name and deserialize its body.

    With ``unlink`` (the default) the segment is freed afterwards — the
    consumer owns cleanup, matching the release-after-fetch protocol of the
    in-process store.
    """
    segment = shared_memory.SharedMemory(name=name)
    try:
        length = int.from_bytes(bytes(segment.buf[:_SIZE_HEADER]), "little")
        body = deserialize(bytes(segment.buf[_SIZE_HEADER : _SIZE_HEADER + length]))
    finally:
        segment.close()
        if unlink:
            try:
                segment.unlink()
            except FileNotFoundError:
                pass
    return body


@dataclass
class MpChannel:
    """The queue pair connecting one explorer process to the learner.

    ``headers`` carries (explorer_name, segment_name, metadata) tuples —
    lightweight, like the paper's ID queues; ``weights`` carries segment
    names of weight snapshots pushed by the learner.
    """

    headers: Any = field(default_factory=lambda: mp.Queue())
    weights: Any = field(default_factory=lambda: mp.Queue())

    def send_rollout(self, explorer: str, body: Any, metadata: Optional[Dict] = None) -> None:
        segment = write_segment(body)
        self.headers.put((explorer, segment, metadata or {}))

    def receive_rollout(self, timeout: Optional[float] = None) -> Optional[Tuple[str, Any, Dict]]:
        try:
            explorer, segment, metadata = self.headers.get(timeout=timeout)
        except Exception:
            return None
        return explorer, read_segment(segment), metadata

    def push_weights(self, body: Any) -> None:
        self.weights.put(write_segment(body))

    def poll_weights(self) -> Optional[Any]:
        """Non-blocking: newest weights if any are queued, else None."""
        latest = None
        while True:
            try:
                segment = self.weights.get_nowait()
            except Exception:
                break
            if latest is not None:
                # An unconsumed older snapshot: free it.
                try:
                    stale = shared_memory.SharedMemory(name=latest)
                    stale.close()
                    stale.unlink()
                except FileNotFoundError:
                    pass
            latest = segment
        if latest is None:
            return None
        return read_segment(latest)

    def close(self) -> None:
        for queue in (self.headers, self.weights):
            queue.close()
            queue.join_thread()
