"""One-call multi-process runs.

:class:`MpSession` spawns one OS process per explorer (each builds its
Environment/Model/Algorithm/Agent from registry *names*, so nothing
unpicklable crosses the fork), runs the learner's trainer loop in the
calling process, and connects them with :class:`MpChannel` queues over
shared-memory segments.  This is the paper's §4.1 implementation shape
with real parallelism — no GIL sharing between environment interaction and
training.
"""

from __future__ import annotations

import glob
import multiprocessing as mp
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..core.stats import LatencyRecorder, ThroughputMeter
from .channel import TRACE_META, MpChannel, SharedSlabPool, discard_body


@dataclass
class MpRunResult:
    elapsed_s: float
    trained_steps: int
    train_sessions: int
    rollouts_received: int
    episode_returns: List[float] = field(default_factory=list)
    throughput_steps_per_s: float = 0.0
    mean_wait_s: float = 0.0
    mean_train_s: float = 0.0
    #: ``repro.obs`` JSON snapshot when the session enables telemetry
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: per-process JSONL trace files when the session sets ``trace_dir``
    #: (merge them with ``python -m repro.obs.trace``)
    trace_files: List[str] = field(default_factory=list)

    def average_return(self, window: int = 100) -> Optional[float]:
        if not self.episode_returns:
            return None
        recent = self.episode_returns[-window:]
        return float(np.mean(recent))


def _explorer_main(
    name: str,
    channel: MpChannel,
    spec: Dict[str, Any],
    stop_event,
) -> None:
    """Explorer process entry point: build from names, then sample-send."""
    # Imports inside the child keep the module picklable under 'spawn'.
    from .. import algorithms as _algorithms  # noqa: F401
    from .. import envs as _envs  # noqa: F401
    from ..api.registry import registry

    env_cls = registry.get("environment", spec["environment"])
    model_cls = registry.get("model", spec["model"])
    algorithm_cls = registry.get("algorithm", spec["algorithm"])
    agent_cls = registry.get("agent", spec.get("agent") or spec["algorithm"])

    env_config = dict(spec.get("env_config", {}))
    env_config.setdefault("seed", spec.get("seed", 0))
    algorithm_config = dict(spec.get("algorithm_config", {}))
    algorithm_config.update({"buffer_size": 1, "learn_start": 1})
    agent_config = dict(spec.get("agent_config", {}))
    agent_config.setdefault("seed", spec.get("seed", 0))

    algorithm = algorithm_cls(model_cls(dict(spec["model_config"])), algorithm_config)
    agent = agent_cls(algorithm, env_cls(env_config), agent_config)
    fragment_steps = int(spec.get("fragment_steps", 200))
    trace_dir = spec.get("trace_dir")
    trace_events: List[Dict[str, Any]] = []

    try:
        while not stop_event.is_set():
            weights = channel.poll_weights()
            if weights is not None:
                agent.set_weights(weights)
            rollout, finished = agent.run_fragment(fragment_steps)
            if stop_event.is_set():
                return
            try:
                context = channel.send_rollout(name, rollout, {"returns": finished})
            except (OSError, ValueError):
                return  # queues torn down during shutdown
            if trace_dir is not None:
                trace_events.append(
                    {
                        "ts": context["sent_ts"],
                        "kind": "sent",
                        "source": f"{name}.send",
                        "detail": {
                            "seq": context["seq"],
                            "trace": context["trace"],
                            "span": context["span"],
                            "dst": "learner",
                        },
                    }
                )
    finally:
        if trace_dir is not None and trace_events:
            from ..obs.trace.events import write_events

            write_events(
                os.path.join(trace_dir, f"{name}.jsonl"),
                trace_events,
                process=name,
            )


class MpSession:
    """Spawn explorers as OS processes; train in the calling process.

    ``spec`` mirrors the registry-name fields of :class:`XingTianConfig`:
    ``algorithm``, ``environment``, ``model``, ``model_config`` (must be
    explicit — there is no probe across processes), plus the usual config
    dicts, ``fragment_steps`` and ``seed``.
    """

    def __init__(
        self,
        spec: Dict[str, Any],
        *,
        num_explorers: int = 2,
        broadcast_every: int = 1,
        telemetry: bool = False,
        trace_dir: Optional[str] = None,
        use_pool: bool = True,
        pool_block_bytes: int = 1 << 20,
        pool_blocks: int = 32,
    ):
        if "model_config" not in spec:
            raise ValueError("mp spec needs an explicit model_config")
        self.spec = dict(spec)
        self.num_explorers = num_explorers
        self.broadcast_every = broadcast_every
        self.telemetry = telemetry
        #: when set, every process writes its trace ring here as JSONL
        #: (``<process>.jsonl``) at shutdown; use a fresh directory per run
        self.trace_dir = trace_dir
        self.use_pool = use_pool
        self.pool_block_bytes = pool_block_bytes
        self.pool_blocks = pool_blocks
        self._context = mp.get_context("fork")

    def run(
        self,
        *,
        max_trained_steps: Optional[int] = None,
        max_seconds: Optional[float] = None,
    ) -> MpRunResult:
        if max_trained_steps is None and max_seconds is None:
            raise ValueError("need a stop criterion")
        from .. import algorithms as _algorithms  # noqa: F401
        from ..api.registry import registry

        model_cls = registry.get("model", self.spec["model"])
        algorithm_cls = registry.get("algorithm", self.spec["algorithm"])
        algorithm_config = dict(self.spec.get("algorithm_config", {}))
        algorithm_config.setdefault(
            "num_explorers", self.num_explorers
        )
        algorithm = algorithm_cls(
            model_cls(dict(self.spec["model_config"])), algorithm_config
        )

        stop_event = self._context.Event()
        # The slab pool must exist before forking so every explorer inherits
        # the mapping; all channels share the one pool and its free list.
        pool = (
            SharedSlabPool(
                self._context,
                block_bytes=self.pool_block_bytes,
                num_blocks=self.pool_blocks,
            )
            if self.use_pool
            else None
        )
        if self.trace_dir is not None:
            os.makedirs(self.trace_dir, exist_ok=True)
        channels = [MpChannel(pool=pool) for _ in range(self.num_explorers)]
        workers = []
        for index, channel in enumerate(channels):
            spec = dict(self.spec)
            spec["seed"] = int(self.spec.get("seed", 0)) + index
            if self.trace_dir is not None:
                spec["trace_dir"] = self.trace_dir
            worker = self._context.Process(
                target=_explorer_main,
                args=(f"explorer-{index}", channel, spec, stop_event),
                daemon=True,
            )
            workers.append(worker)

        consumed = ThroughputMeter()
        wait_recorder = LatencyRecorder("mp.wait")
        train_recorder = LatencyRecorder("mp.train")
        episode_returns: List[float] = []
        rollouts_received = 0
        train_sessions = 0
        trace_events: List[Dict[str, Any]] = []

        registry_obs = None
        wait_histogram = train_histogram = None
        rollouts_counter = steps_counter = sessions_counter = None
        if self.telemetry:
            from ..obs import MetricsRegistry

            registry_obs = MetricsRegistry()
            labels = {"process": "learner"}
            wait_histogram = registry_obs.histogram(
                "trainer_wait_seconds", labels,
                help="actual wait: idle time before a training session starts",
            )
            train_histogram = registry_obs.histogram(
                "trainer_train_seconds", labels,
                help="wall time of one training session",
            )
            rollouts_counter = registry_obs.counter(
                "trainer_rollouts_received_total", labels,
                help="rollout fragments received from explorer processes",
            )
            steps_counter = registry_obs.counter(
                "trainer_trained_steps_total", labels,
                help="rollout steps consumed by training",
            )
            sessions_counter = registry_obs.counter(
                "trainer_train_sessions_total", labels,
                help="completed training sessions",
            )

        started = time.monotonic()
        deadline = started + max_seconds if max_seconds else None
        for worker in workers:
            worker.start()
        try:
            while True:
                if deadline is not None and time.monotonic() >= deadline:
                    break
                if (
                    max_trained_steps is not None
                    and consumed.total >= max_trained_steps
                ):
                    break
                wait_started = time.monotonic()
                received = None
                for channel in channels:
                    received = channel.receive_rollout(timeout=0.02)
                    if received is not None:
                        break
                if received is None:
                    continue
                waited = time.monotonic() - wait_started
                wait_recorder.record(waited)
                if wait_histogram is not None:
                    wait_histogram.observe(waited)
                explorer, rollout, metadata = received
                context = metadata.pop(TRACE_META, None)
                if self.trace_dir is not None and context is not None:
                    detail = {
                        "seq": context.get("seq"),
                        "trace": context.get("trace"),
                        "span": context.get("span"),
                        "dst": "learner",
                        "src": explorer,
                    }
                    trace_events.append(
                        {
                            "ts": time.monotonic(),
                            "kind": "delivered",
                            "source": "learner.recv",
                            "detail": detail,
                        }
                    )
                episode_returns.extend(metadata.get("returns", []))
                rollouts_received += 1
                if rollouts_counter is not None:
                    rollouts_counter.inc()
                algorithm.prepare_data(rollout, source=explorer)
                if self.trace_dir is not None and context is not None:
                    trace_events.append(
                        {
                            "ts": time.monotonic(),
                            "kind": "consumed",
                            "source": "learner.recv",
                            "detail": dict(detail),
                        }
                    )
                while algorithm.ready_to_train():
                    train_started = time.monotonic()
                    if self.trace_dir is not None:
                        trace_events.append(
                            {
                                "ts": train_started,
                                "kind": "train_start",
                                "source": "learner",
                                "detail": {},
                            }
                        )
                    with train_recorder.time():
                        metrics = algorithm.train()
                    if self.trace_dir is not None:
                        trace_events.append(
                            {
                                "ts": time.monotonic(),
                                "kind": "train_end",
                                "source": "learner",
                                "detail": {},
                            }
                        )
                    if train_histogram is not None:
                        train_histogram.observe(time.monotonic() - train_started)
                        sessions_counter.inc()
                    train_sessions += 1
                    trained = int(metrics.get("trained_steps", 0))
                    consumed.record(trained)
                    if steps_counter is not None:
                        steps_counter.inc(trained)
                    if train_sessions % self.broadcast_every == 0:
                        weights = algorithm.get_weights()
                        targets = algorithm.broadcast_targets(
                            [f"explorer-{i}" for i in range(self.num_explorers)]
                        )
                        for index, channel in enumerate(channels):
                            if f"explorer-{index}" in targets:
                                channel.push_weights(weights)
        finally:
            stop_event.set()
            elapsed = time.monotonic() - started
            for worker in workers:
                worker.join(timeout=3.0)
                if worker.is_alive():
                    worker.terminate()
                    worker.join(timeout=2.0)
            self._drain(channels)
            if pool is not None:
                pool.close()
        trace_files: List[str] = []
        if self.trace_dir is not None:
            from ..obs.trace.events import write_events

            write_events(
                os.path.join(self.trace_dir, "learner.jsonl"),
                trace_events,
                process="learner",
            )
            # Explorer files were written by the (now-joined) children.
            trace_files = sorted(
                glob.glob(os.path.join(self.trace_dir, "*.jsonl"))
            )
        metrics_snapshot: Dict[str, Any] = {}
        if registry_obs is not None:
            from ..obs import snapshot as obs_snapshot

            metrics_snapshot = obs_snapshot(
                registry_obs, meta={"elapsed_s": round(elapsed, 6), "mode": "mp"}
            )
        return MpRunResult(
            elapsed_s=elapsed,
            trained_steps=int(consumed.total),
            train_sessions=train_sessions,
            rollouts_received=rollouts_received,
            episode_returns=episode_returns,
            throughput_steps_per_s=consumed.total / max(elapsed, 1e-9),
            mean_wait_s=wait_recorder.mean(),
            mean_train_s=train_recorder.mean(),
            metrics=metrics_snapshot,
            trace_files=trace_files,
        )

    @staticmethod
    def _drain(channels: List[MpChannel]) -> None:
        """Free storage still referenced by queued handles (both kinds:
        pooled blocks go back to the free list, segments are unlinked)."""
        for channel in channels:
            while True:
                try:
                    _, handle, _ = channel.headers.get_nowait()
                except Exception:
                    break
                discard_body(handle, channel.pool)
            while True:
                try:
                    handle = channel.weights.get_nowait()
                except Exception:
                    break
                discard_body(handle, channel.pool)
