"""True multi-process deployment (the paper's implementation substrate).

The default deployment in :mod:`repro.cluster` backs "processes" with
threads for determinism and speed; this package provides the faithful
alternative: explorer OS processes connected to the learner through
``multiprocessing.Queue`` header/ID queues and a shared-memory object store
(``multiprocessing.shared_memory``), exactly the §4.1 implementation notes.

Use :class:`MpSession` for a one-call run, or the lower-level pieces to
build custom topologies.  Bodies cross process boundaries zero-copy: only
segment names travel through queues.
"""

from .channel import (
    MpChannel,
    SharedSlabPool,
    discard_body,
    read_body,
    read_segment,
    write_body,
    write_segment,
)
from .session import MpSession, MpRunResult

__all__ = [
    "MpChannel",
    "SharedSlabPool",
    "write_segment",
    "read_segment",
    "write_body",
    "read_body",
    "discard_body",
    "MpSession",
    "MpRunResult",
]
