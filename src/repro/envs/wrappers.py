"""Environment wrappers.

The paper's Environment class "is a wrapper for both widely-used testbed
environments and self-defined ones" (§4.2).  These composable wrappers
cover the standard DRL preprocessing stack: frame stacking, observation
normalization, reward clipping/scaling, action repeat, and time limits.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..api.environment import Environment
from .spaces import Box, Space


class Wrapper(Environment):
    """Base wrapper: delegates everything to the wrapped environment."""

    def __init__(self, env: Environment):
        super().__init__(env.config)
        self.env = env

    @property
    def observation_space(self) -> Space:
        return self.env.observation_space

    @property
    def action_space(self) -> Space:
        return self.env.action_space

    def reset(self) -> Any:
        return self.env.reset()

    def step(self, action: Any) -> Tuple[Any, float, bool, Dict[str, Any]]:
        return self.env.step(action)

    def seed(self, seed: Optional[int] = None) -> None:
        self.env.seed(seed)

    def close(self) -> None:
        self.env.close()

    def unwrapped(self) -> Environment:
        env = self.env
        while isinstance(env, Wrapper):
            env = env.env
        return env


class FrameStack(Wrapper):
    """Stack the last ``k`` observations along a new leading axis."""

    def __init__(self, env: Environment, k: int = 4):
        if k < 1:
            raise ValueError("k must be >= 1")
        super().__init__(env)
        self.k = k
        self._frames: deque = deque(maxlen=k)
        inner = env.observation_space
        self._space = Box(
            np.repeat(np.asarray(inner.low)[None], k, axis=0),
            np.repeat(np.asarray(inner.high)[None], k, axis=0),
            dtype=inner.dtype,
        )

    @property
    def observation_space(self) -> Box:
        return self._space

    def reset(self) -> np.ndarray:
        frame = self.env.reset()
        self._frames.clear()
        for _ in range(self.k):
            self._frames.append(frame)
        return self._observation()

    def step(self, action: Any):
        frame, reward, done, info = self.env.step(action)
        self._frames.append(frame)
        return self._observation(), reward, done, info

    def _observation(self) -> np.ndarray:
        return np.stack(self._frames)


class NormalizeObservation(Wrapper):
    """Running mean/variance normalization (Welford's algorithm)."""

    def __init__(self, env: Environment, epsilon: float = 1e-8, clip: float = 10.0):
        super().__init__(env)
        self.epsilon = epsilon
        self.clip = clip
        shape = env.observation_space.shape
        self._mean = np.zeros(shape, dtype=np.float64)
        self._m2 = np.zeros(shape, dtype=np.float64)
        self._count = 0

    def reset(self) -> np.ndarray:
        return self._normalize(self.env.reset())

    def step(self, action: Any):
        obs, reward, done, info = self.env.step(action)
        return self._normalize(obs), reward, done, info

    def _normalize(self, obs: Any) -> np.ndarray:
        obs = np.asarray(obs, dtype=np.float64)
        self._count += 1
        delta = obs - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (obs - self._mean)
        if self._count < 2:
            return np.clip(obs - self._mean, -self.clip, self.clip)
        variance = self._m2 / (self._count - 1)
        return np.clip(
            (obs - self._mean) / np.sqrt(variance + self.epsilon),
            -self.clip,
            self.clip,
        )


class ClipReward(Wrapper):
    """Clip rewards to [low, high] (DQN's classic {-1, 0, 1} uses ±1)."""

    def __init__(self, env: Environment, low: float = -1.0, high: float = 1.0):
        if low > high:
            raise ValueError("low must be <= high")
        super().__init__(env)
        self.low = low
        self.high = high

    def step(self, action: Any):
        obs, reward, done, info = self.env.step(action)
        info = dict(info)
        info.setdefault("raw_reward", reward)
        return obs, float(np.clip(reward, self.low, self.high)), done, info


class ScaleReward(Wrapper):
    """Multiply rewards by a constant."""

    def __init__(self, env: Environment, scale: float):
        super().__init__(env)
        self.scale = scale

    def step(self, action: Any):
        obs, reward, done, info = self.env.step(action)
        return obs, reward * self.scale, done, info


class ActionRepeat(Wrapper):
    """Repeat each action ``k`` times, summing rewards (Atari frame skip)."""

    def __init__(self, env: Environment, k: int = 4):
        if k < 1:
            raise ValueError("k must be >= 1")
        super().__init__(env)
        self.k = k

    def step(self, action: Any):
        total_reward = 0.0
        obs, done, info = None, False, {}
        for _ in range(self.k):
            obs, reward, done, info = self.env.step(action)
            total_reward += reward
            if done:
                break
        return obs, total_reward, done, info


class TimeLimit(Wrapper):
    """Truncate episodes after ``max_steps`` steps."""

    def __init__(self, env: Environment, max_steps: int):
        if max_steps < 1:
            raise ValueError("max_steps must be >= 1")
        super().__init__(env)
        self.max_steps = max_steps
        self._elapsed = 0

    def reset(self) -> Any:
        self._elapsed = 0
        return self.env.reset()

    def step(self, action: Any):
        obs, reward, done, info = self.env.step(action)
        self._elapsed += 1
        if self._elapsed >= self.max_steps and not done:
            done = True
            info = dict(info)
            info["truncated"] = True
        return obs, reward, done, info
