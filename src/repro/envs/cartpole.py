"""CartPole: the classic cart-pole swing-up control problem, from scratch.

Physics follow Barto, Sutton & Anderson (1983) — the same dynamics the gym
``CartPole-v1`` environment integrates with explicit Euler.  A pole is hinged
to a cart on a frictionless track; the agent pushes the cart left or right
and the episode ends when the pole falls past ±12° or the cart leaves ±2.4,
with +1 reward per surviving step, capped at ``max_episode_steps``.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..api.environment import Environment
from .spaces import Box, Discrete

GRAVITY = 9.8
CART_MASS = 1.0
POLE_MASS = 0.1
TOTAL_MASS = CART_MASS + POLE_MASS
POLE_HALF_LENGTH = 0.5
POLE_MASS_LENGTH = POLE_MASS * POLE_HALF_LENGTH
FORCE_MAG = 10.0
TAU = 0.02  # seconds between state updates
THETA_THRESHOLD = 12 * 2 * math.pi / 360
X_THRESHOLD = 2.4


class CartPoleEnv(Environment):
    """CartPole with gym-compatible observation/action spaces."""

    def __init__(self, config: Optional[Dict[str, Any]] = None):
        super().__init__(config)
        self.max_episode_steps = int(self.config.get("max_episode_steps", 500))
        high = np.array(
            [X_THRESHOLD * 2, np.inf, THETA_THRESHOLD * 2, np.inf], dtype=np.float32
        )
        self._observation_space = Box(-high, high, dtype=np.float32)
        self._action_space = Discrete(2)
        self._rng = np.random.default_rng(self.config.get("seed"))
        self._state: Optional[np.ndarray] = None
        self._steps = 0

    @property
    def observation_space(self) -> Box:
        return self._observation_space

    @property
    def action_space(self) -> Discrete:
        return self._action_space

    def seed(self, seed: Optional[int] = None) -> None:
        self._rng = np.random.default_rng(seed)

    def reset(self) -> np.ndarray:
        self._state = self._rng.uniform(-0.05, 0.05, size=4).astype(np.float64)
        self._steps = 0
        return self._state.astype(np.float32)

    def step(self, action: int) -> Tuple[np.ndarray, float, bool, Dict[str, Any]]:
        if self._state is None:
            raise RuntimeError("call reset() before step()")
        if not self._action_space.contains(action):
            raise ValueError(f"invalid action {action!r} for {self._action_space}")

        x, x_dot, theta, theta_dot = self._state
        force = FORCE_MAG if action == 1 else -FORCE_MAG
        cos_theta = math.cos(theta)
        sin_theta = math.sin(theta)

        temp = (force + POLE_MASS_LENGTH * theta_dot**2 * sin_theta) / TOTAL_MASS
        theta_acc = (GRAVITY * sin_theta - cos_theta * temp) / (
            POLE_HALF_LENGTH * (4.0 / 3.0 - POLE_MASS * cos_theta**2 / TOTAL_MASS)
        )
        x_acc = temp - POLE_MASS_LENGTH * theta_acc * cos_theta / TOTAL_MASS

        x += TAU * x_dot
        x_dot += TAU * x_acc
        theta += TAU * theta_dot
        theta_dot += TAU * theta_acc
        self._state = np.array([x, x_dot, theta, theta_dot], dtype=np.float64)
        self._steps += 1

        fell = bool(
            x < -X_THRESHOLD
            or x > X_THRESHOLD
            or theta < -THETA_THRESHOLD
            or theta > THETA_THRESHOLD
        )
        truncated = self._steps >= self.max_episode_steps
        done = fell or truncated
        reward = 1.0
        info: Dict[str, Any] = {"truncated": truncated and not fell}
        return self._state.astype(np.float32), reward, done, info
