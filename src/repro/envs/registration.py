"""Register the bundled environments with the global registry."""

from __future__ import annotations

from ..api.registry import registry
from .atari_sim import (
    BeamRiderSimEnv,
    BreakoutSimEnv,
    QbertSimEnv,
    SpaceInvadersSimEnv,
)
from .cartpole import CartPoleEnv
from .dummy import DummyPayloadEnv
from .pendulum import PendulumEnv

_ENVIRONMENTS = {
    "CartPole": CartPoleEnv,
    "Pendulum": PendulumEnv,
    "BeamRider": BeamRiderSimEnv,
    "Breakout": BreakoutSimEnv,
    "Qbert": QbertSimEnv,
    "SpaceInvaders": SpaceInvadersSimEnv,
    "DummyPayload": DummyPayloadEnv,
}


def register_all() -> None:
    """Idempotently register every bundled environment."""
    for name, cls in _ENVIRONMENTS.items():
        registry.register("environment", name, cls, overwrite=True)


register_all()
