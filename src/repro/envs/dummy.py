"""Dummy payload environment.

Produces observations of an exact configurable byte size with zero
computation, for exercising the communication path in isolation — the
environment-side counterpart of the paper's dummy DRL algorithm (§5.1).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..api.environment import Environment
from .spaces import Box, Discrete


class DummyPayloadEnv(Environment):
    """Observations are ``payload_bytes``-sized uint8 arrays.

    Config keys: ``payload_bytes`` (default 1024), ``episode_length``
    (default 100), ``seed``.
    """

    def __init__(self, config: Optional[Dict[str, Any]] = None):
        super().__init__(config)
        self.payload_bytes = int(self.config.get("payload_bytes", 1024))
        if self.payload_bytes < 1:
            raise ValueError("payload_bytes must be >= 1")
        self.episode_length = int(self.config.get("episode_length", 100))
        self._observation_space = Box(0, 255, shape=(self.payload_bytes,), dtype=np.uint8)
        self._action_space = Discrete(2)
        self._rng = np.random.default_rng(self.config.get("seed"))
        self._payload = self._rng.integers(
            0, 256, size=self.payload_bytes, dtype=np.uint8
        )
        self._steps = 0

    @property
    def observation_space(self) -> Box:
        return self._observation_space

    @property
    def action_space(self) -> Discrete:
        return self._action_space

    def reset(self) -> np.ndarray:
        self._steps = 0
        return self._payload

    def step(self, action: Any) -> Tuple[np.ndarray, float, bool, Dict[str, Any]]:
        self._steps += 1
        done = self._steps >= self.episode_length
        return self._payload, 0.0, done, {}
