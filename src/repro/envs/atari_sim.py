"""Synthetic Atari-like environments.

The paper evaluates on four Atari games (BeamRider, Breakout, Qbert,
SpaceInvaders).  The ALE is unavailable offline, so these simulators stand in
(DESIGN.md §2): each game is a small latent-state MDP rendered into an
image-shaped ``uint8`` observation, with per-game reward magnitudes chosen to
mimic published score ranges.  What the communication experiments need is
preserved exactly: realistic observation payload sizes (84×84 frames by
default), episodic structure, and a tunable per-step computation cost
standing in for emulator time.

The latent dynamics are simple but learnable: every latent state has a
"correct" action drawn from a per-game seed; choosing it scores points and
advances the state, wrong choices cost a life.  The latent state is stamped
into the top rows of the frame so function approximators can, in principle,
decode it.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..api.environment import Environment
from .spaces import Box, Discrete


class AtariSimEnv(Environment):
    """Parameterized synthetic Atari-like game.

    Config keys:

    * ``obs_shape`` — observation frame shape, default ``(84, 84)``;
    * ``num_actions`` — action-space size;
    * ``num_states`` — latent MDP size;
    * ``reward_scale`` — points per correct action (per-game score scale);
    * ``lives`` — wrong actions tolerated before the episode ends;
    * ``max_episode_steps`` — hard episode cap;
    * ``step_compute_s`` — busy time per step simulating emulator cost
      (0 disables; used by throughput benchmarks);
    * ``seed`` — RNG seed.
    """

    game_name = "atari-sim"

    def __init__(self, config: Optional[Dict[str, Any]] = None):
        super().__init__(config)
        self.obs_shape: Tuple[int, ...] = tuple(self.config.get("obs_shape", (84, 84)))
        self.num_actions = int(self.config.get("num_actions", 6))
        self.num_states = int(self.config.get("num_states", 32))
        self.reward_scale = float(self.config.get("reward_scale", 10.0))
        self.lives = int(self.config.get("lives", 3))
        self.max_episode_steps = int(self.config.get("max_episode_steps", 1000))
        self.step_compute_s = float(self.config.get("step_compute_s", 0.0))
        seed = self.config.get("seed", 0)

        self._observation_space = Box(0, 255, shape=self.obs_shape, dtype=np.uint8)
        self._action_space = Discrete(self.num_actions)
        game_rng = np.random.default_rng(seed)
        # Frozen per-game structure: correct action per latent state, and a
        # texture bank so frames look state-dependent without per-step cost.
        self._correct_action = game_rng.integers(
            self.num_actions, size=self.num_states
        )
        self._textures = game_rng.integers(
            0, 256, size=(self.num_states,) + self.obs_shape, dtype=np.uint8
        )
        self._rng = np.random.default_rng(seed)
        self._state = 0
        self._lives_left = self.lives
        self._steps = 0
        self._started = False

    @property
    def observation_space(self) -> Box:
        return self._observation_space

    @property
    def action_space(self) -> Discrete:
        return self._action_space

    def seed(self, seed: Optional[int] = None) -> None:
        self._rng = np.random.default_rng(seed)

    def reset(self) -> np.ndarray:
        self._state = int(self._rng.integers(self.num_states))
        self._lives_left = self.lives
        self._steps = 0
        self._started = True
        return self._render()

    def step(self, action: int) -> Tuple[np.ndarray, float, bool, Dict[str, Any]]:
        if not self._started:
            raise RuntimeError("call reset() before step()")
        if not self._action_space.contains(action):
            raise ValueError(f"invalid action {action!r} for {self._action_space}")
        if self.step_compute_s > 0:
            _busy_wait(self.step_compute_s)

        self._steps += 1
        correct = int(self._correct_action[self._state])
        if int(action) == correct:
            reward = self.reward_scale
            self._state = (self._state + 1 + int(self._rng.integers(2))) % self.num_states
        else:
            reward = 0.0
            self._lives_left -= 1
            self._state = int(self._rng.integers(self.num_states))

        done = self._lives_left <= 0 or self._steps >= self.max_episode_steps
        info = {"lives": self._lives_left, "latent_state": self._state}
        return self._render(), reward, done, info

    def _render(self) -> np.ndarray:
        frame = self._textures[self._state].copy()
        # Stamp the latent state into the top-left corner so the MDP is
        # observable (one bright column per state index).
        width = int(np.prod(self.obs_shape[1:])) if len(self.obs_shape) > 1 else 1
        column = self._state % max(width, 1)
        flat = frame.reshape(self.obs_shape[0], -1)
        flat[0, :] = 0
        flat[0, column] = 255
        return frame


def _busy_wait(seconds: float) -> None:
    """Model emulator CPU time.

    The paper's explorers are separate OS processes with their own cores, so
    emulator time does not steal cycles from the learner.  Our explorers are
    threads; a GIL-holding spin would serialize everyone, so the cost is
    charged as a sleep — each explorer's wall-clock per step matches a real
    emulator while the learner's NumPy keeps its core.
    """
    time.sleep(seconds)


class BeamRiderSimEnv(AtariSimEnv):
    """BeamRider-like scales: large scores, long episodes."""

    game_name = "BeamRider"

    def __init__(self, config: Optional[Dict[str, Any]] = None):
        merged = {"reward_scale": 44.0, "num_actions": 9, "lives": 3, "seed": 101}
        merged.update(config or {})
        super().__init__(merged)


class BreakoutSimEnv(AtariSimEnv):
    """Breakout-like scales: small per-brick rewards."""

    game_name = "Breakout"

    def __init__(self, config: Optional[Dict[str, Any]] = None):
        merged = {"reward_scale": 1.0, "num_actions": 4, "lives": 5, "seed": 102}
        merged.update(config or {})
        super().__init__(merged)


class QbertSimEnv(AtariSimEnv):
    """Qbert-like scales: 25-point hops."""

    game_name = "Qbert"

    def __init__(self, config: Optional[Dict[str, Any]] = None):
        merged = {"reward_scale": 25.0, "num_actions": 6, "lives": 4, "seed": 103}
        merged.update(config or {})
        super().__init__(merged)


class SpaceInvadersSimEnv(AtariSimEnv):
    """SpaceInvaders-like scales: 5–30 points per invader."""

    game_name = "SpaceInvaders"

    def __init__(self, config: Optional[Dict[str, Any]] = None):
        merged = {"reward_scale": 15.0, "num_actions": 6, "lives": 3, "seed": 104}
        merged.update(config or {})
        super().__init__(merged)


_GAMES = {
    "BeamRider": BeamRiderSimEnv,
    "Breakout": BreakoutSimEnv,
    "Qbert": QbertSimEnv,
    "SpaceInvaders": SpaceInvadersSimEnv,
}


def make_atari_sim(game: str, config: Optional[Dict[str, Any]] = None) -> AtariSimEnv:
    """Build one of the four bundled synthetic games by name."""
    try:
        cls = _GAMES[game]
    except KeyError:
        raise KeyError(f"unknown game {game!r}; available: {sorted(_GAMES)}") from None
    return cls(config)
