"""Observation/action spaces (the minimal gym-style subset we need)."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np


class Space:
    """Base class for spaces; supports sampling and membership tests."""

    def __init__(self, shape: Tuple[int, ...], dtype):
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)

    def sample(self, rng: Optional[np.random.Generator] = None):
        raise NotImplementedError

    def contains(self, value) -> bool:
        raise NotImplementedError


class Discrete(Space):
    """{0, 1, ..., n-1}."""

    def __init__(self, n: int):
        if n < 1:
            raise ValueError(f"Discrete space needs n >= 1, got {n}")
        super().__init__((), np.int64)
        self.n = int(n)

    def sample(self, rng: Optional[np.random.Generator] = None) -> int:
        rng = rng or np.random.default_rng()
        return int(rng.integers(self.n))

    def contains(self, value) -> bool:
        try:
            ivalue = int(value)
        except (TypeError, ValueError):
            return False
        return 0 <= ivalue < self.n and float(value) == ivalue

    def __repr__(self) -> str:
        return f"Discrete({self.n})"

    def __eq__(self, other) -> bool:
        return isinstance(other, Discrete) and other.n == self.n


class Box(Space):
    """A bounded (possibly unbounded) box in R^n."""

    def __init__(self, low, high, shape: Optional[Sequence[int]] = None, dtype=np.float32):
        if shape is None:
            shape = np.broadcast(np.asarray(low), np.asarray(high)).shape
        super().__init__(tuple(shape), dtype)
        self.low = np.broadcast_to(np.asarray(low, dtype=self.dtype), self.shape).copy()
        self.high = np.broadcast_to(np.asarray(high, dtype=self.dtype), self.shape).copy()
        if np.any(self.low > self.high):
            raise ValueError("Box low must be <= high elementwise")

    def sample(self, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        rng = rng or np.random.default_rng()
        low = np.where(np.isfinite(self.low), self.low, -1.0)
        high = np.where(np.isfinite(self.high), self.high, 1.0)
        return rng.uniform(low, high, size=self.shape).astype(self.dtype)

    def contains(self, value) -> bool:
        arr = np.asarray(value)
        if arr.shape != self.shape:
            return False
        return bool(np.all(arr >= self.low) and np.all(arr <= self.high))

    def __repr__(self) -> str:
        return f"Box(shape={self.shape}, dtype={self.dtype})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Box)
            and other.shape == self.shape
            and np.array_equal(other.low, self.low)
            and np.array_equal(other.high, self.high)
        )
