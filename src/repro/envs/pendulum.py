"""Pendulum swing-up: the classic continuous-control testbed, from scratch.

Dynamics match gym's ``Pendulum-v1``: a torque-limited pendulum must swing
up and balance.  Observations are (cos θ, sin θ, θ̇); the action is a torque
in [-2, 2]; reward penalizes angle, velocity and effort.  Used by the DDPG
member of the algorithm zoo.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..api.environment import Environment
from .spaces import Box

MAX_SPEED = 8.0
MAX_TORQUE = 2.0
DT = 0.05
GRAVITY = 10.0
MASS = 1.0
LENGTH = 1.0


class PendulumEnv(Environment):
    """Torque-limited pendulum swing-up."""

    def __init__(self, config: Optional[Dict[str, Any]] = None):
        super().__init__(config)
        self.max_episode_steps = int(self.config.get("max_episode_steps", 200))
        high = np.array([1.0, 1.0, MAX_SPEED], dtype=np.float32)
        self._observation_space = Box(-high, high, dtype=np.float32)
        self._action_space = Box(-MAX_TORQUE, MAX_TORQUE, shape=(1,), dtype=np.float32)
        self._rng = np.random.default_rng(self.config.get("seed"))
        self._theta = 0.0
        self._theta_dot = 0.0
        self._steps = 0
        self._started = False

    @property
    def observation_space(self) -> Box:
        return self._observation_space

    @property
    def action_space(self) -> Box:
        return self._action_space

    def seed(self, seed: Optional[int] = None) -> None:
        self._rng = np.random.default_rng(seed)

    def reset(self) -> np.ndarray:
        self._theta = self._rng.uniform(-math.pi, math.pi)
        self._theta_dot = self._rng.uniform(-1.0, 1.0)
        self._steps = 0
        self._started = True
        return self._observe()

    def step(self, action) -> Tuple[np.ndarray, float, bool, Dict[str, Any]]:
        if not self._started:
            raise RuntimeError("call reset() before step()")
        torque = float(np.clip(np.asarray(action).reshape(-1)[0], -MAX_TORQUE, MAX_TORQUE))
        theta = self._theta
        angle_cost = _angle_normalize(theta) ** 2 + 0.1 * self._theta_dot**2 + 0.001 * torque**2

        theta_dot = self._theta_dot + (
            3.0 * GRAVITY / (2.0 * LENGTH) * math.sin(theta)
            + 3.0 / (MASS * LENGTH**2) * torque
        ) * DT
        theta_dot = float(np.clip(theta_dot, -MAX_SPEED, MAX_SPEED))
        self._theta = theta + theta_dot * DT
        self._theta_dot = theta_dot
        self._steps += 1
        done = self._steps >= self.max_episode_steps
        return self._observe(), -angle_cost, done, {}

    def _observe(self) -> np.ndarray:
        return np.array(
            [math.cos(self._theta), math.sin(self._theta), self._theta_dot],
            dtype=np.float32,
        )


def _angle_normalize(theta: float) -> float:
    return ((theta + math.pi) % (2 * math.pi)) - math.pi
