"""Environment substrate: spaces plus bundled testbed environments."""

from .spaces import Box, Discrete, Space
from .cartpole import CartPoleEnv
from .atari_sim import (
    AtariSimEnv,
    BeamRiderSimEnv,
    BreakoutSimEnv,
    QbertSimEnv,
    SpaceInvadersSimEnv,
    make_atari_sim,
)
from .dummy import DummyPayloadEnv
from .pendulum import PendulumEnv
from . import registration

__all__ = [
    "Space",
    "Box",
    "Discrete",
    "CartPoleEnv",
    "AtariSimEnv",
    "BeamRiderSimEnv",
    "BreakoutSimEnv",
    "QbertSimEnv",
    "SpaceInvadersSimEnv",
    "make_atari_sim",
    "DummyPayloadEnv",
    "PendulumEnv",
    "registration",
]
