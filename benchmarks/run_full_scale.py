"""Full-scale transmission sweep: the paper's exact Fig. 4/5 parameters.

The pytest benchmarks run scaled-down sweeps so the whole suite finishes in
minutes.  This standalone script runs the paper's actual parameters — 1 KB
to 64 MB messages, 20 messages per explorer, 16 explorers, the measured
118.04 MB/s NIC — and prints Fig. 4(a)/4(b)/5(a) tables.  Expect ~30-60
minutes of wall time.

Usage::

    python benchmarks/run_full_scale.py             # everything
    python benchmarks/run_full_scale.py --max-mb 8  # cap the sweep
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.dummy_algorithm import (
    run_dummy_buffer,
    run_dummy_raylike,
    run_dummy_xingtian,
)
from repro.bench.reporting import format_table
from repro.bench.workloads import FULL_MESSAGE_SIZES_KB

COPY_BANDWIDTH = 1e9  # bytes/s, generous for a 2666 MT/s DRAM testbed
NIC = 118.04e6  # the paper's measured 1GbE
MESSAGES = 20  # the paper's per-explorer message count
BUFFER_KW = dict(processing_bandwidth=2e6, item_overhead=0.002)  # Reverb-like


def sweep_single_machine(num_explorers: int, sizes_kb) -> str:
    rows = []
    for size_kb in sizes_kb:
        size = size_kb * 1024
        xt = run_dummy_xingtian(
            num_explorers, size, messages_per_explorer=MESSAGES,
            copy_bandwidth=COPY_BANDWIDTH, timeout_s=3600,
        )
        rl = run_dummy_raylike(
            num_explorers, size, messages_per_explorer=MESSAGES,
            copy_bandwidth=COPY_BANDWIDTH,
        )
        if size_kb <= 1024:  # the buffer path is ~2 MB/s; cap its sweep
            buffered = run_dummy_buffer(
                num_explorers, size, messages_per_explorer=MESSAGES,
                timeout_s=3600, **BUFFER_KW,
            ).throughput_mb_s
        else:
            buffered = float("nan")
        rows.append(
            [size_kb, xt.throughput_mb_s, rl.throughput_mb_s, buffered,
             xt.elapsed_s, rl.elapsed_s]
        )
        print(f"  {size_kb} KB done", file=sys.stderr)
    return format_table(
        ["KB", "XingTian MB/s", "RLLib-like MB/s", "Reverb-like MB/s",
         "XT latency s", "RL latency s"],
        rows,
        title=f"Fig 4 full scale: single machine, {num_explorers} explorers",
    )


def sweep_two_machines(sizes_kb) -> str:
    rows = []
    for size_kb in sizes_kb:
        size = size_kb * 1024
        spread = run_dummy_xingtian(
            32, size, messages_per_explorer=MESSAGES, machines=[16, 16],
            copy_bandwidth=COPY_BANDWIDTH, nic_bandwidth=NIC, timeout_s=3600,
        )
        remote = run_dummy_xingtian(
            16, size, messages_per_explorer=MESSAGES, machines=[0, 16],
            copy_bandwidth=COPY_BANDWIDTH, nic_bandwidth=NIC, timeout_s=3600,
        )
        pull = run_dummy_raylike(
            32, size, messages_per_explorer=MESSAGES, machines=[16, 16],
            copy_bandwidth=COPY_BANDWIDTH, nic_bandwidth=NIC,
        )
        rows.append(
            [size_kb, spread.throughput_mb_s, remote.throughput_mb_s,
             pull.throughput_mb_s]
        )
        print(f"  {size_kb} KB done", file=sys.stderr)
    rows.append(["(NIC)", NIC / 1e6, NIC / 1e6, NIC / 1e6])
    return format_table(
        ["KB", "XT 32 spread MB/s", "XT 16 remote MB/s", "RLLib-like 32 MB/s"],
        rows,
        title="Fig 5 full scale: two machines (NIC 118.04 MB/s)",
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-mb", type=float, default=64.0,
                        help="largest message size in MB (default: 64)")
    parser.add_argument("--skip-two-machines", action="store_true")
    args = parser.parse_args()
    sizes_kb = [kb for kb in FULL_MESSAGE_SIZES_KB if kb <= args.max_mb * 1024]

    print(sweep_single_machine(1, sizes_kb))
    print()
    print(sweep_single_machine(16, sizes_kb))
    if not args.skip_two_machines:
        print()
        print(sweep_two_machines(sizes_kb))
    return 0


if __name__ == "__main__":
    sys.exit(main())
