"""Communication micro-benchmarks for the zero-copy hot path.

Times the four layers the hot path crosses, in isolation:

* **serialize / deserialize** — scatter-gather frames vs the wire bytes
  they produce, plus the ``copy=False`` zero-copy read path;
* **object store** — ``put``/``get``/``release`` of a 1 MB array through
  the pooled arena vs the legacy one-segment-per-message path;
* **SHM transport** — ``write_segment``/``read_segment`` vs a
  :class:`SharedSlabPool` block write/read;
* **endpoint throughput** — small (≤4 KB) messages through a live broker
  with coalescing on vs off.

Results land in ``BENCH_comm.json`` at the repo root so the perf
trajectory has a committed baseline, and two coarse regression gates are
asserted (the ISSUE's acceptance bars, halved nowhere):

* coalescing must deliver >= 2x small-message throughput;
* the arena must cut 1 MB serialize+write latency by >= 25%.
"""

from __future__ import annotations

import json
import os
import statistics
import time

import numpy as np
import pytest

from repro.core.broker import Broker
from repro.core.config import CoalescingSpec
from repro.core.endpoint import ProcessEndpoint
from repro.core.message import MsgType, make_message
from repro.core.object_store import SharedMemoryObjectStore
from repro.core.serialization import deserialize, make_frame, serialize
from repro.bench.reporting import format_table, ratio
from repro.mp.channel import SharedSlabPool, read_segment, write_segment

from .conftest import emit

BENCH_JSON = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_comm.json")

MB = 1 << 20

#: acceptance bars from the ISSUE, enforced as coarse CI regression gates
MIN_COALESCING_SPEEDUP = 2.0
MIN_ARENA_LATENCY_CUT = 0.25

SMALL_MESSAGES = 3000  # per throughput run; bodies stay under 4 KB


def _timeit(fn, *, repeats: int = 30, warmup: int = 3) -> float:
    """Median seconds per call over ``repeats`` timed runs."""
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


# -- layer 1: serialization ------------------------------------------------

def _bench_serialization() -> dict:
    payload = {"obs": np.random.default_rng(0).random((256, 1024)),  # 2 MB
               "meta": {"step": 1, "ids": list(range(32))}}
    blob = serialize(payload)
    frame = make_frame(payload)
    dest = bytearray(frame.nbytes)

    return {
        "payload_bytes": len(blob),
        "serialize_s": _timeit(lambda: serialize(payload)),
        "make_frame_s": _timeit(lambda: make_frame(payload)),
        "serialize_into_s": _timeit(lambda: frame.serialize_into(dest)),
        "deserialize_copy_s": _timeit(lambda: deserialize(blob, copy=True)),
        "deserialize_view_s": _timeit(lambda: deserialize(blob, copy=False)),
    }


# -- layer 2: object store (arena vs per-segment) --------------------------

def _store_cycle(store: SharedMemoryObjectStore, body) -> None:
    object_id = store.put(body)
    try:
        store.get(object_id)
    finally:
        store.release(object_id)


def _store_put_release(store: SharedMemoryObjectStore, body) -> None:
    object_id = store.put(body)
    store.release(object_id)


def _bench_object_store() -> dict:
    body = np.random.default_rng(1).random(MB // 8)  # exactly 1 MB
    arena_store = SharedMemoryObjectStore()
    segment_store = SharedMemoryObjectStore(use_arena=False)
    try:
        # serialize+write latency: put alone (release keeps occupancy flat
        # without touching the timed put path's syscall profile).
        arena_put = _timeit(lambda: _store_put_release(arena_store, body))
        segment_put = _timeit(lambda: _store_put_release(segment_store, body))
        arena_rt = _timeit(lambda: _store_cycle(arena_store, body))
        segment_rt = _timeit(lambda: _store_cycle(segment_store, body))
    finally:
        arena_store.close()
        segment_store.close()
    return {
        "body_bytes": body.nbytes,
        "arena_put_release_s": arena_put,
        "segment_put_release_s": segment_put,
        "arena_roundtrip_s": arena_rt,
        "segment_roundtrip_s": segment_rt,
        "put_latency_cut": 1.0 - ratio(arena_put, segment_put),
    }


# -- layer 3: SHM transport (pool vs per-message segments) -----------------

def _bench_shm_transport() -> dict:
    body = {"rollout": np.random.default_rng(2).random((64, 512))}  # 256 KB

    def segment_cycle():
        read_segment(write_segment(body))

    pool = SharedSlabPool(block_bytes=MB, num_blocks=4)
    try:
        def pool_cycle():
            handle = pool.write(body)
            assert handle is not None
            pool.read(handle)

        segment_s = _timeit(segment_cycle)
        pool_s = _timeit(pool_cycle)
    finally:
        pool.close()
    return {
        "body_bytes": 64 * 512 * 8,
        "segment_write_read_s": segment_s,
        "pool_write_read_s": pool_s,
        "pool_speedup": ratio(segment_s, pool_s),
    }


# -- layer 4: endpoint throughput (coalescing on vs off) -------------------

def _throughput(coalescing: CoalescingSpec | None) -> float:
    """Messages/s for SMALL_MESSAGES sub-4KB bodies through one pair.

    Runs over the shared-memory store — the deployment the hot path is
    for — so the measurement covers serialization, arena writes, and the
    per-message queue/routing costs coalescing amortizes.
    """
    broker = Broker(
        "bench-broker",
        store=SharedMemoryObjectStore(),
        coalescing=coalescing,
    )
    broker.start()
    sender = ProcessEndpoint("bench-src", broker)
    sink = ProcessEndpoint("bench-dst", broker)
    body = b"x" * 700  # a typical pre-encoded control/stats payload
    try:
        sender.start()
        sink.start()
        started = time.perf_counter()
        for _ in range(SMALL_MESSAGES):
            sender.send(
                make_message("bench-src", ["bench-dst"], MsgType.DATA, body)
            )
        received = 0
        deadline = time.monotonic() + 60.0
        while received < SMALL_MESSAGES and time.monotonic() < deadline:
            received += len(sink.receive_many(512, timeout=0.25))
        elapsed = time.perf_counter() - started
        assert received == SMALL_MESSAGES, f"dropped {SMALL_MESSAGES - received}"
        return SMALL_MESSAGES / elapsed
    finally:
        sender.stop()
        sink.stop()
        broker.stop()


def _bench_coalescing() -> dict:
    # Best-of-2 per mode: throughput is a max-capacity measurement, and a
    # single run is at the mercy of scheduler noise on shared CI boxes.
    baseline = max(_throughput(None) for _ in range(2))
    coalesced = max(_throughput(CoalescingSpec()) for _ in range(2))
    return {
        "messages": SMALL_MESSAGES,
        "baseline_msgs_per_s": baseline,
        "coalesced_msgs_per_s": coalesced,
        "speedup": ratio(coalesced, baseline),
    }


# -- driver ----------------------------------------------------------------

@pytest.mark.benchmark(group="comm-micro")
def test_comm_micro(once):
    def run():
        return {
            "serialization": _bench_serialization(),
            "object_store": _bench_object_store(),
            "shm_transport": _bench_shm_transport(),
            "coalescing": _bench_coalescing(),
        }

    results = once(run)

    store = results["object_store"]
    shm = results["shm_transport"]
    coal = results["coalescing"]
    rows = [
        ["serialize 2MB (ms)", results["serialization"]["serialize_s"] * 1e3],
        ["deserialize 2MB copy (ms)",
         results["serialization"]["deserialize_copy_s"] * 1e3],
        ["deserialize 2MB view (ms)",
         results["serialization"]["deserialize_view_s"] * 1e3],
        ["1MB put: segment (ms)", store["segment_put_release_s"] * 1e3],
        ["1MB put: arena (ms)", store["arena_put_release_s"] * 1e3],
        ["arena put latency cut", f"{store['put_latency_cut'] * 100:.1f}%"],
        ["256KB shm roundtrip: segment (ms)", shm["segment_write_read_s"] * 1e3],
        ["256KB shm roundtrip: pool (ms)", shm["pool_write_read_s"] * 1e3],
        ["small msgs/s: coalescing off", f"{coal['baseline_msgs_per_s']:,.0f}"],
        ["small msgs/s: coalescing on", f"{coal['coalesced_msgs_per_s']:,.0f}"],
        ["coalescing speedup", f"{coal['speedup']:.2f}x"],
    ]
    emit(
        "comm_micro",
        format_table(["metric", "value"], rows,
                     title="Communication micro-benchmarks (zero-copy hot path)"),
    )

    with open(BENCH_JSON, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # Coarse regression gates (the ISSUE's acceptance bars).
    assert coal["speedup"] >= MIN_COALESCING_SPEEDUP, (
        f"coalescing speedup {coal['speedup']:.2f}x < "
        f"{MIN_COALESCING_SPEEDUP}x"
    )
    assert store["put_latency_cut"] >= MIN_ARENA_LATENCY_CUT, (
        f"arena cut 1MB put latency by only {store['put_latency_cut'] * 100:.1f}% "
        f"(< {MIN_ARENA_LATENCY_CUT * 100:.0f}%)"
    )
