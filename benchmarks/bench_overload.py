"""Overload benchmark: bounded queues and lane latency under 2x load.

Drives a flow-controlled broker at roughly twice the rate its (throttled)
consumer can sustain, with a weight broadcast threaded through the bulk
flood, and verifies the three acceptance bars from the overload-control
ISSUE:

* **bounded queues** — header-queue and ID-queue depths never exceed
  their watermarks; the overflow is absorbed by shedding the *oldest*
  bulk entries, never by unbounded growth;
* **bounded arena** — shared-memory arena occupancy never exceeds its
  capacity;
* **priority lanes** — p99 delivery latency of control/weights traffic is
  at least ``MIN_CONTROL_ADVANTAGE``x lower than bulk traffic's, because
  control overtakes the bulk backlog at every queue.

Results land in ``BENCH_overload.json`` at the repo root (the committed
baseline the ``overload-smoke`` CI job regenerates and gates on).  The
run is short by design — a few seconds — so CI can afford it; set
``OVERLOAD_SECONDS`` for longer soak runs.
"""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.core.broker import Broker
from repro.core.concurrency import spawn_thread
from repro.core.config import FlowControlSpec
from repro.core.endpoint import ProcessEndpoint
from repro.core.message import MsgType, make_message
from repro.core.object_store import SharedMemoryObjectStore
from repro.bench.reporting import format_table, ratio

from .conftest import emit

BENCH_JSON = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_overload.json"
)

#: acceptance bar: control p99 latency must beat bulk p99 by this factor
MIN_CONTROL_ADVANTAGE = 3.0
#: acceptance bar: offered load must be at least this multiple of drained
MIN_OVERLOAD_FACTOR = 2.0

RUN_SECONDS = float(os.environ.get("OVERLOAD_SECONDS", "4.0"))

#: consumer throttle: <= CONSUME_BATCH messages per CONSUME_SLEEP_S seconds
#: (~2.7k msgs/s drain ceiling)
CONSUME_BATCH = 16
CONSUME_SLEEP_S = 0.006

#: producer pacing: one burst per sleep ≈ 6.4k msgs/s, roughly 2.5x what
#: the throttled consumer can drain — the ISSUE's "2x sustainable load"
#: regime, where a *standing* bulk backlog forms and control must
#: overtake it (an unpaced flood just churns the shed path instead:
#: delivered bulk stays artificially young because everything older was
#: already dropped)
FLOOD_BURST = 32
FLOOD_SLEEP_S = 0.005

FLOW = FlowControlSpec(
    bulk_watermark=256,
    control_watermark=32,
    control_deadline_s=5.0,
    # The adaptation loop is benchmarked indirectly (tests/integration);
    # here the controller is left off so the measured bounds are the
    # *static* watermark guarantees, not a moving target.
    adapt_interval_s=60.0,
)


def _percentile(samples: list, fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(len(ordered) * fraction))
    return ordered[index]


def _run_overload() -> dict:
    store = SharedMemoryObjectStore()
    broker = Broker("ovl-broker", store=store, flow=FLOW)
    broker.start()
    producer = ProcessEndpoint("ovl-src", broker)
    sink = ProcessEndpoint("ovl-dst", broker)
    producer.start()
    sink.start()

    bulk_body = b"x" * 2048
    weight_body = b"w" * 2048
    stop = threading.Event()
    offered = [0, 0]  # bulk, control

    def flood():
        # Bulk floods unthrottled; weight broadcasts tick at a fixed (and
        # realistic) ~20 Hz — it is the *bulk* overload whose backlog the
        # control lane must overtake, not a control-plane flood.
        last_weights = 0.0
        while not stop.is_set():
            for _ in range(FLOOD_BURST):
                producer.send(
                    make_message("ovl-src", ["ovl-dst"], MsgType.DATA, bulk_body)
                )
            offered[0] += FLOOD_BURST
            time.sleep(FLOOD_SLEEP_S)
            now = time.monotonic()
            if now - last_weights >= 0.05:
                producer.send(
                    make_message(
                        "ovl-src", ["ovl-dst"], MsgType.WEIGHTS, weight_body
                    )
                )
                offered[1] += 1
                last_weights = now

    bulk_ages: list = []
    control_ages: list = []
    max_depths = {"headers": 0, "id": 0, "send": 0, "recv": 0}
    arena_peak = 0
    arena_capacity = 0

    try:
        flooder = spawn_thread("ovl-flood", flood)
        deadline = time.monotonic() + RUN_SECONDS
        while time.monotonic() < deadline:
            # Throttled consumer: the drain rate cap is what makes the
            # offered load an overload rather than a steady state.
            batch = sink.receive_many(CONSUME_BATCH, timeout=0.05)
            now = time.monotonic()
            for message in batch:
                age = max(message.age(now), 0.0)
                if message.msg_type is MsgType.WEIGHTS:
                    control_ages.append(age)
                else:
                    bulk_ages.append(age)
            # Depth/occupancy probes ride the consumer loop, so bounds are
            # checked continuously, not just at the end.
            depths = broker.communicator.lane_depths()
            header = depths.get("headers", {})
            max_depths["headers"] = max(
                max_depths["headers"], sum(header.values())
            )
            for name, lanes in depths.items():
                if name.startswith("id."):
                    max_depths["id"] = max(max_depths["id"], sum(lanes.values()))
            max_depths["send"] = max(
                max_depths["send"], producer.send_buffer.qsize()
            )
            max_depths["recv"] = max(
                max_depths["recv"], sink.receive_buffer.qsize()
            )
            arena = getattr(store, "arena", None)
            if arena is not None:
                arena_stats = arena.stats()
                arena_peak = max(arena_peak, arena_stats["allocated_bytes"])
                arena_capacity = arena_stats["capacity_bytes"]
            time.sleep(CONSUME_SLEEP_S)
        stop.set()
        flooder.join(timeout=10.0)
        drained = len(bulk_ages) + len(control_ages)
        shed = sum(
            stats["bulk_shed"]
            for stats in broker.communicator.flow_stats().values()
        )
        shed += producer.send_buffer.flow_stats()["bulk_shed"]
        shed += sink.receive_buffer.flow_stats()["bulk_shed"]
    finally:
        stop.set()
        producer.stop()
        sink.stop()
        broker.stop()

    total_offered = offered[0] + offered[1]
    return {
        "regime": {
            "run_seconds": RUN_SECONDS,
            "bulk_watermark": FLOW.bulk_watermark,
            "control_watermark": FLOW.control_watermark,
            "consume_batch": CONSUME_BATCH,
            "consume_sleep_s": CONSUME_SLEEP_S,
            "body_bytes": len(bulk_body),
        },
        "load": {
            "offered_msgs": total_offered,
            "drained_msgs": drained,
            "offered_msgs_per_s": total_offered / RUN_SECONDS,
            "drained_msgs_per_s": drained / RUN_SECONDS,
            "overload_factor": ratio(total_offered, max(drained, 1)),
            "shed_total": shed,
        },
        "bounds": {
            "max_header_queue_depth": max_depths["headers"],
            "max_id_queue_depth": max_depths["id"],
            "max_send_backlog": max_depths["send"],
            "max_receive_backlog": max_depths["recv"],
            "queue_bound": FLOW.bulk_watermark + FLOW.control_watermark,
            "arena_peak_bytes": arena_peak,
            "arena_capacity_bytes": arena_capacity,
        },
        "latency": {
            "bulk_delivered": len(bulk_ages),
            "control_delivered": len(control_ages),
            "bulk_p50_s": _percentile(bulk_ages, 0.50),
            "bulk_p99_s": _percentile(bulk_ages, 0.99),
            "control_p50_s": _percentile(control_ages, 0.50),
            "control_p99_s": _percentile(control_ages, 0.99),
            "control_advantage_p99": ratio(
                _percentile(bulk_ages, 0.99),
                max(_percentile(control_ages, 0.99), 1e-9),
            ),
        },
    }


@pytest.mark.benchmark(group="overload")
def test_overload(once):
    results = once(_run_overload)

    load = results["load"]
    bounds = results["bounds"]
    latency = results["latency"]
    rows = [
        ["offered (msgs/s)", f"{load['offered_msgs_per_s']:,.0f}"],
        ["drained (msgs/s)", f"{load['drained_msgs_per_s']:,.0f}"],
        ["overload factor", f"{load['overload_factor']:.1f}x"],
        ["bulk shed", load["shed_total"]],
        ["max header-queue depth", bounds["max_header_queue_depth"]],
        ["max ID-queue depth", bounds["max_id_queue_depth"]],
        ["queue bound (watermarks)", bounds["queue_bound"]],
        ["arena peak / capacity (MB)",
         f"{bounds['arena_peak_bytes'] / 2**20:.1f} / "
         f"{bounds['arena_capacity_bytes'] / 2**20:.1f}"],
        ["bulk p99 latency (ms)", f"{latency['bulk_p99_s'] * 1e3:.1f}"],
        ["control p99 latency (ms)", f"{latency['control_p99_s'] * 1e3:.1f}"],
        ["control p99 advantage", f"{latency['control_advantage_p99']:.1f}x"],
    ]
    emit(
        "overload",
        format_table(["metric", "value"], rows,
                     title="Overload control (2x sustainable load)"),
    )

    with open(BENCH_JSON, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # -- acceptance gates (the ISSUE's bars, also the CI overload-smoke
    # job's "no unbounded queue growth" guarantee) ------------------------
    assert load["overload_factor"] >= MIN_OVERLOAD_FACTOR, (
        f"offered load only {load['overload_factor']:.2f}x drained; "
        "the regime is not an overload"
    )
    bound = bounds["queue_bound"]
    assert bounds["max_header_queue_depth"] <= bound, (
        f"header queue grew to {bounds['max_header_queue_depth']} "
        f"(> {bound}): admission is unbounded"
    )
    assert bounds["max_id_queue_depth"] <= bound, (
        f"ID queue grew to {bounds['max_id_queue_depth']} (> {bound})"
    )
    assert bounds["max_send_backlog"] <= bound, (
        f"send buffer grew to {bounds['max_send_backlog']} (> {bound})"
    )
    assert bounds["arena_peak_bytes"] <= bounds["arena_capacity_bytes"], (
        "arena occupancy exceeded capacity"
    )
    assert latency["control_delivered"] > 0, "no weights delivered under load"
    assert latency["control_advantage_p99"] >= MIN_CONTROL_ADVANTAGE, (
        f"control p99 only {latency['control_advantage_p99']:.2f}x better "
        f"than bulk (need >= {MIN_CONTROL_ADVANTAGE}x)"
    )
