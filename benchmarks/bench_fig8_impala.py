"""Fig. 8: IMPALA throughput and transmission-time analysis.

Three panels reproduced at scale:

(a) learner throughput (steps/s): XingTian above the RLLib-like baseline
    (paper: +70.71% on average);
(b) latency breakdown: in the pull framework the learner waits the full
    rollout transmission before each training session, while XingTian's
    *actual wait* is a small fraction of the raw transmission time, because
    transmission overlaps with training on other explorers' rollouts;
(c) the CDF of XingTian's wait-before-training: the distribution's mass
    sits at small waits (paper: <=20ms in 96.61% of cases).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import run_training_raylike, run_training_xingtian
from repro.bench.reporting import (
    cdf_fraction_below,
    format_series,
    format_table,
    improvement_pct,
)

from .conftest import emit

KWARGS = dict(
    environment="BeamRider",
    env_config={"obs_shape": (42, 42), "step_compute_s": 0.0002},
    explorers=4,
    fragment_steps=200,
    algorithm_config={"lr": 3e-4},
    copy_bandwidth=100e6,
    max_seconds=12.0,
    seed=0,
)


@pytest.fixture(scope="module")
def fig8_runs():
    xt = run_training_xingtian("impala", **KWARGS)
    rl = run_training_raylike("impala", **KWARGS)
    return xt, rl


@pytest.mark.benchmark(group="fig8")
def test_fig8a_throughput(once, fig8_runs):
    xt, rl = once(lambda: fig8_runs)
    emit(
        "fig8a_impala_throughput",
        format_table(
            ["framework", "steps/s", "train sessions"],
            [
                ["XingTian", xt.throughput_steps_per_s, xt.train_sessions],
                ["RLLib-like", rl.throughput_steps_per_s, rl.train_sessions],
            ],
            title=(
                "Fig 8(a) (scaled) IMPALA throughput — XingTian "
                f"{improvement_pct(xt.throughput_steps_per_s, rl.throughput_steps_per_s):+.1f}%"
            ),
        )
        + "\n"
        + format_series(
            xt.throughput_series, name="XingTian steps/s over time",
            x_label="s", y_label="steps/s",
        ),
    )
    assert xt.throughput_steps_per_s > rl.throughput_steps_per_s


@pytest.mark.benchmark(group="fig8")
def test_fig8b_latency_breakdown(once, fig8_runs):
    xt, rl = once(lambda: fig8_runs)
    emit(
        "fig8b_impala_latency",
        format_table(
            ["quantity", "ms"],
            [
                ["RLLib-like transmission (per train)", rl.mean_transfer_s * 1e3],
                ["XingTian actual wait (per train)", xt.mean_wait_s * 1e3],
                ["XingTian train time", xt.mean_train_s * 1e3],
                ["RLLib-like train time", rl.mean_train_s * 1e3],
            ],
            title="Fig 8(b) (scaled) IMPALA latency breakdown",
        ),
    )
    # The overlap claim: XingTian's wait is far below the baseline's
    # serial transmission time.
    assert xt.mean_wait_s < rl.mean_transfer_s * 0.5


@pytest.mark.benchmark(group="fig8")
def test_fig8c_wait_cdf(once, fig8_runs):
    xt, _ = once(lambda: fig8_runs)
    # The paper reports the fraction of waits under a small threshold
    # (96.61% under 20ms at testbed scale); we report the same curve.
    threshold = 0.02
    fraction = cdf_fraction_below(xt.wait_cdf, threshold) or 0.0
    emit(
        "fig8c_wait_cdf",
        format_series(
            xt.wait_cdf, name="XingTian wait-before-training CDF",
            x_label="seconds", y_label="fraction",
        )
        + f"\nfraction of waits <= {threshold*1e3:.0f}ms: {fraction:.2%}",
    )
    assert xt.wait_cdf
    assert fraction > 0.5
