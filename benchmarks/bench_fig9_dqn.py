"""Fig. 9: DQN throughput and sampling/transmission analysis.

The paper attributes XingTian's DQN advantage (+58.44% throughput) to the
replay buffer living inside the learner's trainer thread: sampling is a
local buffer read (~8ms at testbed scale), while RLLib's replay *actor*
makes every insert and sample a cross-process RPC (~62ms).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.baselines.raylike import ReplayActor
from repro.baselines.rpc import RpcChannel
from repro.bench.harness import run_training_raylike, run_training_xingtian
from repro.bench.reporting import format_table, improvement_pct
from repro.replay import ReplayBuffer

from .conftest import emit

KWARGS = dict(
    environment="BeamRider",
    env_config={"obs_shape": (42, 42), "step_compute_s": 0.0002},
    explorers=1,
    fragment_steps=32,
    algorithm_config={
        "buffer_size": 20_000, "learn_start": 200, "train_every": 4,
        "batch_size": 32, "broadcast_every": 5,
    },
    copy_bandwidth=100e6,
    max_seconds=10.0,
    seed=0,
)


@pytest.mark.benchmark(group="fig9")
def test_fig9a_throughput(once):
    def experiment():
        xt = run_training_xingtian("dqn", **KWARGS)
        rl = run_training_raylike("dqn", **KWARGS)
        return xt, rl

    xt, rl = once(experiment)
    emit(
        "fig9a_dqn_throughput",
        format_table(
            ["framework", "steps/s", "train sessions",
             "sample+trans ms", "train ms"],
            [
                ["XingTian (local replay)", xt.throughput_steps_per_s,
                 xt.train_sessions, xt.mean_wait_s * 1e3, xt.mean_train_s * 1e3],
                ["RLLib-like (replay actor)", rl.throughput_steps_per_s,
                 rl.train_sessions, rl.mean_transfer_s * 1e3,
                 rl.mean_train_s * 1e3],
            ],
            title=(
                "Fig 9(a) (scaled) DQN throughput — XingTian "
                f"{improvement_pct(xt.throughput_steps_per_s, rl.throughput_steps_per_s):+.1f}%"
            ),
        ),
    )
    assert xt.throughput_steps_per_s > rl.throughput_steps_per_s


@pytest.mark.benchmark(group="fig9")
def test_fig9b_replay_placement_microbenchmark(once):
    """Sample latency: learner-local buffer vs RPC replay actor."""

    def experiment():
        rng = np.random.default_rng(0)
        rollout = {
            "obs": rng.integers(0, 256, size=(512, 42, 42), dtype=np.uint8),
            "action": rng.integers(4, size=512),
            "reward": rng.normal(size=512),
            "next_obs": rng.integers(0, 256, size=(512, 42, 42), dtype=np.uint8),
            "done": np.zeros(512, dtype=bool),
        }
        local = ReplayBuffer(10_000, seed=0)
        local.add_rollout(rollout)
        started = time.monotonic()
        for _ in range(20):
            local.sample(32)
        local_ms = (time.monotonic() - started) / 20 * 1e3

        actor = ReplayActor(10_000, seed=0)
        channel = RpcChannel(call_latency=0.0005, copy_bandwidth=100e6)
        channel.call(actor.insert, rollout)
        started = time.monotonic()
        for _ in range(20):
            channel.call(actor.sample, 32)
        actor_ms = (time.monotonic() - started) / 20 * 1e3
        return local_ms, actor_ms

    local_ms, actor_ms = once(experiment)
    emit(
        "fig9b_replay_placement",
        format_table(
            ["replay placement", "sample latency ms"],
            [
                ["learner-local (XingTian)", local_ms],
                ["remote actor via RPC (RLLib-like)", actor_ms],
            ],
            title="Fig 9(b) (scaled): replay sampling latency",
        ),
    )
    assert actor_ms > local_ms * 2
