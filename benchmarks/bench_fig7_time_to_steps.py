"""Fig. 7: wall-clock time to consume a fixed rollout-step budget (Atari).

The paper: XingTian-based IMPALA/DQN/PPO complete 10M Atari steps in
41.5%/39.5%/22.9% less time than RLLib-based ones.  Scaled: synthetic-Atari
frames, tens of thousands of steps, same cost constants on both sides.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import run_training_raylike, run_training_xingtian
from repro.bench.reporting import format_table

from .conftest import emit

ENV_CONFIG = {"obs_shape": (42, 42), "step_compute_s": 0.0002}
COMMON = dict(
    environment="BeamRider",
    env_config=ENV_CONFIG,
    copy_bandwidth=100e6,
    max_seconds=30.0,
    seed=0,
)

CONFIGS = {
    "impala": dict(
        explorers=4, fragment_steps=200, max_trained_steps=12_000,
        algorithm_config={"lr": 3e-4},
    ),
    "dqn": dict(
        explorers=1, fragment_steps=32, max_trained_steps=8_000,
        algorithm_config={
            "buffer_size": 20_000, "learn_start": 200, "train_every": 4,
            "batch_size": 32, "broadcast_every": 5,
        },
    ),
    "ppo": dict(
        explorers=4, fragment_steps=200, max_trained_steps=12_000,
        algorithm_config={"lr": 3e-4, "epochs": 1, "minibatch_size": 200},
    ),
}


@pytest.mark.benchmark(group="fig7")
@pytest.mark.parametrize("algorithm", ["impala", "dqn", "ppo"])
def test_fig7_time_to_complete_steps(once, algorithm):
    def experiment():
        kwargs = dict(COMMON)
        kwargs.update(CONFIGS[algorithm])
        xt = run_training_xingtian(algorithm, **kwargs)
        rl = run_training_raylike(algorithm, **kwargs)
        return xt, rl

    xt, rl = once(experiment)
    saved_pct = (1 - xt.elapsed_s / rl.elapsed_s) * 100 if rl.elapsed_s else 0.0
    emit(
        f"fig7_{algorithm}",
        format_table(
            ["framework", "time to budget (s)", "trained steps", "steps/s"],
            [
                ["XingTian", xt.elapsed_s, xt.trained_steps,
                 xt.throughput_steps_per_s],
                ["RLLib-like", rl.elapsed_s, rl.trained_steps,
                 rl.throughput_steps_per_s],
            ],
            title=(
                f"Fig 7 (scaled) {algorithm.upper()} time-to-steps — "
                f"XingTian saves {saved_pct:.1f}%"
            ),
        ),
    )
    # Both must have finished the step budget (not timed out).
    budget = CONFIGS[algorithm]["max_trained_steps"]
    assert xt.trained_steps >= budget
    # XingTian completes the budget at least as fast (10% tolerance).
    assert xt.elapsed_s <= rl.elapsed_s * 1.1
